//! A minimal mio-style readiness poller with no external dependencies.
//!
//! Two interchangeable backends behind one [`Poller`] type:
//!
//! * **epoll** (Linux) — the kernel keeps the interest set; each
//!   registered fd carries its [`Token`] in the event payload, so a
//!   wait returns ready tokens directly. Level-triggered.
//! * **poll(2)** (portable Unix fallback) — the poller keeps the
//!   interest set in user space and rebuilds the `pollfd` array per
//!   wait. Semantically identical (level-triggered), O(n) per wait.
//!
//! Everything is raw `extern "C"` FFI against the C runtime the
//! process already links (same approach as `clue-net`'s signal
//! handling): no libc crate, no registry access. The [`Waker`] is a
//! nonblocking pipe whose read end is registered like any other
//! source, so other threads can interrupt a blocked wait.
//!
//! Readiness is a *hint*: callers must be prepared for spurious wakeups
//! (a subsequent read/write may still return `WouldBlock`). All
//! registration is level-triggered — an fd that stays readable keeps
//! reporting readable until drained or deregistered.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::time::Duration;

#[cfg(unix)]
mod sys;
#[cfg(unix)]
mod waker;

#[cfg(unix)]
pub use waker::Waker;

/// Caller-chosen identifier attached to a registered fd; waits report
/// readiness as `(Token, readable/writable)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness classes a registration asks for.
///
/// `Interest::NONE` keeps the fd registered but reports nothing — the
/// idiom for "paused" sources (a reactor suppressing reads for
/// backpressure keeps the slot and flips interest back later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Report nothing (registration placeholder).
    pub const NONE: Interest = Interest(0);
    /// Report read readiness.
    pub const READABLE: Interest = Interest(1);
    /// Report write readiness.
    pub const WRITABLE: Interest = Interest(2);
    /// Report both.
    pub const BOTH: Interest = Interest(3);

    /// Does this interest include reads?
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Does this interest include writes?
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// This interest plus `other`.
    #[must_use]
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// This interest minus `other`.
    #[must_use]
    pub fn without(self, other: Interest) -> Interest {
        Interest(self.0 & !other.0)
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// Read readiness (includes incoming connections and EOF).
    pub readable: bool,
    /// Write readiness.
    pub writable: bool,
    /// The fd is in an error state (`EPOLLERR`/`POLLERR`); a read or
    /// write will surface the concrete `io::Error`.
    pub error: bool,
    /// Peer hung up (`EPOLLHUP`/`POLLHUP`); treat as readable-to-EOF.
    pub hup: bool,
}

impl Event {
    /// True when the source should be read (data, EOF, or error to
    /// collect).
    #[must_use]
    pub fn wants_read(&self) -> bool {
        self.readable || self.error || self.hup
    }
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick the best available: epoll on Linux, poll(2) elsewhere.
    #[default]
    Auto,
    /// Linux epoll (fails at construction off Linux).
    Epoll,
    /// Portable poll(2).
    Poll,
}

impl Backend {
    /// Parses `epoll` / `poll` / `auto` (the `CLUE_AIO_BACKEND`
    /// override values).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Backend> {
        match s {
            "auto" => Some(Backend::Auto),
            "epoll" => Some(Backend::Epoll),
            "poll" => Some(Backend::Poll),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Epoll => "epoll",
            Backend::Poll => "poll",
        })
    }
}

/// A raw file descriptor (kept as a plain `i32` so the crate works on
/// anything Unix-shaped without `std::os` type gymnastics).
pub type RawFd = i32;

#[cfg(unix)]
enum Imp {
    Epoll(sys::EpollPoller),
    Poll(sys::PollPoller),
}

/// The readiness poller: an interest set plus a wait call.
///
/// Registration functions take `&self` is not offered — the poller is
/// designed to be owned by a single event-loop thread; cross-thread
/// interruption goes through [`Waker`], never through the poller.
pub struct Poller {
    #[cfg(unix)]
    imp: Imp,
}

impl fmt::Debug for Poller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

#[cfg(unix)]
impl Poller {
    /// Opens a poller on the given backend.
    ///
    /// # Errors
    ///
    /// Fails if the backend is unavailable (epoll off Linux) or the
    /// kernel refuses the handle (fd exhaustion).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Auto => {
                if cfg!(target_os = "linux") {
                    match sys::EpollPoller::new() {
                        Ok(e) => Imp::Epoll(e),
                        Err(_) => Imp::Poll(sys::PollPoller::new()),
                    }
                } else {
                    Imp::Poll(sys::PollPoller::new())
                }
            }
            Backend::Epoll => Imp::Epoll(sys::EpollPoller::new()?),
            Backend::Poll => Imp::Poll(sys::PollPoller::new()),
        };
        Ok(Poller { imp })
    }

    /// Opens a poller on the best available backend.
    ///
    /// # Errors
    ///
    /// Fails only on kernel handle exhaustion.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Backend::Auto)
    }

    /// The backend actually in use (`Auto` resolves at construction).
    #[must_use]
    pub fn backend(&self) -> Backend {
        match self.imp {
            Imp::Epoll(_) => Backend::Epoll,
            Imp::Poll(_) => Backend::Poll,
        }
    }

    /// Adds `fd` to the interest set under `token`.
    ///
    /// # Errors
    ///
    /// Fails if the fd is invalid or already registered (epoll
    /// `EEXIST`).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll(p) => p.register(fd, token, interest),
            Imp::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Replaces the interest/token of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Fails if the fd was never registered.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll(p) => p.reregister(fd, token, interest),
            Imp::Poll(p) => p.reregister(fd, token, interest),
        }
    }

    /// Removes `fd` from the interest set. Safe to call for fds that
    /// are about to be closed (must happen *before* the close for the
    /// poll backend, which would otherwise keep polling a dead slot).
    ///
    /// # Errors
    ///
    /// Fails if the fd was never registered.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll(p) => p.deregister(fd),
            Imp::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one source is ready or `timeout` elapses
    /// (`None` = forever), appending reports to `events` (cleared
    /// first). Returns the number of events delivered; `Ok(0)` means
    /// timeout or a benign `EINTR`.
    ///
    /// # Errors
    ///
    /// Fails on kernel-level wait errors other than `EINTR`.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        match &mut self.imp {
            Imp::Epoll(p) => p.wait(events, timeout),
            Imp::Poll(p) => p.wait(events, timeout),
        }
    }
}

#[cfg(not(unix))]
impl Poller {
    /// Unsupported off Unix.
    pub fn with_backend(_backend: Backend) -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling requires a Unix platform",
        ))
    }

    /// Unsupported off Unix.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Backend::Auto)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn timeout_returns_zero_events() {
        for b in backends() {
            let mut p = Poller::with_backend(b).unwrap();
            let mut events = Vec::new();
            let n = p
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "backend {b}");
            assert!(events.is_empty());
        }
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for b in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();

            let mut p = Poller::with_backend(b).unwrap();
            p.register(listener.as_raw_fd(), Token(7), Interest::READABLE)
                .unwrap();

            let mut events = Vec::new();
            let n = p
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert_eq!(n, 0, "quiet listener must not report, backend {b}");

            let _client = TcpStream::connect(addr).unwrap();
            let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(n >= 1, "backend {b}");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].wants_read());
        }
    }

    #[test]
    fn stream_data_and_interest_changes() {
        for b in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();

            let mut p = Poller::with_backend(b).unwrap();
            let fd = server_side.as_raw_fd();
            p.register(fd, Token(1), Interest::READABLE).unwrap();

            client.write_all(b"ping").unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(
                events.iter().any(|e| e.token == Token(1) && e.readable),
                "backend {b}: {events:?}"
            );

            // NONE interest silences the still-readable fd.
            p.reregister(fd, Token(1), Interest::NONE).unwrap();
            let n = p
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0, "backend {b}: paused fd reported {events:?}");

            // Write interest on an idle socket reports immediately
            // (send buffer empty = writable), and the data is still
            // there when read interest comes back.
            p.reregister(fd, Token(1), Interest::BOTH).unwrap();
            p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            let ev = events.iter().find(|e| e.token == Token(1)).unwrap();
            assert!(ev.readable && ev.writable, "backend {b}: {ev:?}");

            p.deregister(fd).unwrap();
            let n = p
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0, "backend {b}: deregistered fd reported");
        }
    }

    #[test]
    fn hup_is_reported_or_readable() {
        for b in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();

            let mut p = Poller::with_backend(b).unwrap();
            p.register(server_side.as_raw_fd(), Token(3), Interest::READABLE)
                .unwrap();
            drop(client);

            let mut events = Vec::new();
            p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            let ev = events.iter().find(|e| e.token == Token(3)).unwrap();
            assert!(ev.wants_read(), "backend {b}: {ev:?}");
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for b in backends() {
            let mut p = Poller::with_backend(b).unwrap();
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            waker.register(&mut p, Token(0)).unwrap();

            let w = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                w.wake().unwrap();
            });

            let mut events = Vec::new();
            let n = p.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert!(n >= 1, "backend {b}");
            assert_eq!(events[0].token, Token(0));
            waker.drain();

            // Drained waker goes quiet again.
            let n = p
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "backend {b}");

            // Coalesced wakes still deliver one readiness report.
            waker.wake().unwrap();
            waker.wake().unwrap();
            waker.wake().unwrap();
            let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(n >= 1, "backend {b}");
            waker.drain();
            t.join().unwrap();
        }
    }
}
