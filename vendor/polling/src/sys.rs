//! Raw syscall FFI and the two poller backends.
//!
//! Constants are the Linux generic ABI values (and the common BSD
//! values for the poll(2) fallback constants, which happen to agree on
//! every Unix this workspace targets: `POLLIN`/`POLLOUT`/`POLLERR`/
//! `POLLHUP` are universal).

use std::io;
use std::time::Duration;

use core::ffi::{c_int, c_short, c_void};

use crate::{Event, Interest, RawFd, Token};

// --- shared FFI ---------------------------------------------------------

extern "C" {
    pub(crate) fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub(crate) fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    pub(crate) fn close(fd: c_int) -> c_int;
    pub(crate) fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn pipe(pipefd: *mut c_int) -> c_int;
}

pub(crate) const F_GETFL: c_int = 3;
pub(crate) const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
pub(crate) const O_NONBLOCK: c_int = 0o4000;
#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) const O_NONBLOCK: c_int = 0x0004;

/// Creates a nonblocking pipe, returning `(read_fd, write_fd)`.
pub(crate) fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    for fd in fds {
        let flags = unsafe { fcntl(fd, F_GETFL, 0) };
        if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            let e = io::Error::last_os_error();
            unsafe {
                close(fds[0]);
                close(fds[1]);
            }
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Rounds a timeout up to whole milliseconds for the kernel (rounding
/// down would turn a 0.4 ms deadline into a busy spin).
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_micros().div_ceil(1000).min(c_int::MAX as u128);
            ms as c_int
        }
    }
}

// --- epoll backend (Linux) ----------------------------------------------

#[cfg(target_os = "linux")]
mod epoll_ffi {
    use core::ffi::c_int;

    // x86-64 is the one ABI where the kernel packs epoll_event.
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub(crate) fn epoll_create1(flags: c_int) -> c_int;
        pub(crate) fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent)
            -> c_int;
        pub(crate) fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub(crate) const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub(crate) const EPOLL_CTL_ADD: c_int = 1;
    pub(crate) const EPOLL_CTL_DEL: c_int = 2;
    pub(crate) const EPOLL_CTL_MOD: c_int = 3;
    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
}

/// The epoll-backed interest set.
#[cfg(target_os = "linux")]
pub(crate) struct EpollPoller {
    epfd: RawFd,
    /// Reused kernel-event buffer; grows if a wait fills it.
    buf: Vec<epoll_ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub(crate) fn new() -> io::Result<EpollPoller> {
        let epfd = unsafe { epoll_ffi::epoll_create1(epoll_ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![epoll_ffi::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.is_readable() {
            m |= epoll_ffi::EPOLLIN;
        }
        if interest.is_writable() {
            m |= epoll_ffi::EPOLLOUT;
        }
        m
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = epoll_ffi::EpollEvent {
            events: Self::mask(interest),
            data: token.0 as u64,
        };
        let ptr = if op == epoll_ffi::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        if unsafe { epoll_ffi::epoll_ctl(self.epfd, op, fd, ptr) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn register(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(epoll_ffi::EPOLL_CTL_DEL, fd, Token(0), Interest::NONE)
    }

    pub(crate) fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let n = unsafe {
            epoll_ffi::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            };
        }
        let n = n as usize;
        for raw in &self.buf[..n] {
            let bits = raw.events;
            events.push(Event {
                token: Token(raw.data as usize),
                readable: bits & epoll_ffi::EPOLLIN != 0,
                writable: bits & epoll_ffi::EPOLLOUT != 0,
                error: bits & epoll_ffi::EPOLLERR != 0,
                hup: bits & epoll_ffi::EPOLLHUP != 0,
            });
        }
        if n == self.buf.len() {
            // A full buffer may have starved later fds; give the next
            // wait more room.
            self.buf.resize(
                self.buf.len() * 2,
                epoll_ffi::EpollEvent { events: 0, data: 0 },
            );
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// Off Linux the epoll backend is an always-failing stub so `Backend::
/// Epoll` gives a clean construction error instead of a link failure.
#[cfg(not(target_os = "linux"))]
pub(crate) struct EpollPoller;

#[cfg(not(target_os = "linux"))]
impl EpollPoller {
    pub(crate) fn new() -> io::Result<EpollPoller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use Backend::Poll",
        ))
    }

    pub(crate) fn register(&mut self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
        unreachable!("stub EpollPoller cannot be constructed")
    }

    pub(crate) fn reregister(&mut self, _: RawFd, _: Token, _: Interest) -> io::Result<()> {
        unreachable!("stub EpollPoller cannot be constructed")
    }

    pub(crate) fn deregister(&mut self, _: RawFd) -> io::Result<()> {
        unreachable!("stub EpollPoller cannot be constructed")
    }

    pub(crate) fn wait(&mut self, _: &mut Vec<Event>, _: Option<Duration>) -> io::Result<usize> {
        unreachable!("stub EpollPoller cannot be constructed")
    }
}

// --- poll(2) backend (portable) -----------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

#[cfg(target_os = "linux")]
type NFds = core::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = core::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

/// The user-space interest set for the poll(2) backend.
pub(crate) struct PollPoller {
    /// `(fd, token, interest)` in registration order; linear scans are
    /// fine — poll(2) itself is O(n) per wait anyway.
    registry: Vec<(RawFd, Token, Interest)>,
    /// Reused pollfd array, rebuilt per wait.
    fds: Vec<PollFd>,
}

impl PollPoller {
    pub(crate) fn new() -> PollPoller {
        PollPoller {
            registry: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn already(&self, fd: RawFd) -> bool {
        self.registry.iter().any(|(f, _, _)| *f == fd)
    }

    pub(crate) fn register(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if self.already(fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} already registered"),
            ));
        }
        self.registry.push((fd, token, interest));
        Ok(())
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        for slot in &mut self.registry {
            if slot.0 == fd {
                *slot = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("fd {fd} not registered"),
        ))
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.registry.len();
        self.registry.retain(|(f, _, _)| *f != fd);
        if self.registry.len() == before {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} not registered"),
            ));
        }
        Ok(())
    }

    pub(crate) fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        self.fds.clear();
        for (fd, _, interest) in &self.registry {
            let mut ev: c_short = 0;
            if interest.is_readable() {
                ev |= POLLIN;
            }
            if interest.is_writable() {
                ev |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd: *fd,
                events: ev,
                revents: 0,
            });
        }
        let n = unsafe {
            poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as NFds,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            };
        }
        for (slot, (_, token, _)) in self.fds.iter().zip(&self.registry) {
            let r = slot.revents;
            if r == 0 {
                continue;
            }
            events.push(Event {
                token: *token,
                readable: r & POLLIN != 0,
                writable: r & POLLOUT != 0,
                error: r & (POLLERR | POLLNVAL) != 0,
                hup: r & POLLHUP != 0,
            });
        }
        Ok(events.len())
    }
}
