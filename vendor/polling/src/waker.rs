//! Cross-thread wakeups for a blocked [`Poller::wait`](crate::Poller::wait).

use std::io;

use core::ffi::c_void;

use crate::sys;
use crate::{Interest, Poller, RawFd, Token};

/// A nonblocking pipe whose read end sits in the poller's interest set:
/// any thread holding the waker can interrupt the event loop's wait by
/// writing a byte. Wakes coalesce — a full pipe means a wake is already
/// pending, which is success, not an error.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// Raw fds are freely shareable; all operations are single syscalls.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the pipe (both ends nonblocking).
    ///
    /// # Errors
    ///
    /// Fails on fd exhaustion.
    pub fn new() -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok(Waker { read_fd, write_fd })
    }

    /// Registers the read end under `token` (conventionally the loop's
    /// reserved token 0).
    ///
    /// # Errors
    ///
    /// Fails if registration fails at the kernel.
    pub fn register(&self, poller: &mut Poller, token: Token) -> io::Result<()> {
        poller.register(self.read_fd, token, Interest::READABLE)
    }

    /// Interrupts the next (or current) wait.
    ///
    /// # Errors
    ///
    /// Fails only on real I/O errors — a full pipe (wake already
    /// pending) is success.
    pub fn wake(&self) -> io::Result<()> {
        let byte = [1u8];
        let n = unsafe { sys::write(self.write_fd, byte.as_ptr().cast::<c_void>(), 1) };
        if n == 1 {
            return Ok(());
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(()),
            _ => Err(e),
        }
    }

    /// Consumes pending wake bytes so the readiness report clears;
    /// the event loop calls this whenever the waker token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n =
                unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}
