//! Offline stand-in for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the micro
//! benchmarks link against this minimal harness instead: same macro and
//! builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched_ref`),
//! but measurement is a single warmup-plus-timed loop printing mean
//! ns/iter — no statistics engine, plots, or HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (recorded for display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    /// Target time for each measurement loop.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measure_for, None, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure_for = t.min(Duration::from_secs(1));
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.measure_for, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup, then time a burst.
        for _ in 0..8 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut n = 0u64;
        while n < 1_000_000 {
            black_box(routine());
            n += 1;
            if n.is_multiple_of(64) && start.elapsed() >= Duration::from_millis(100) {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` over inputs produced by `setup`, timing only
    /// the routine.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        let budget = Duration::from_millis(100);
        while total < budget && n < 10_000 {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
            n += 1;
        }
        self.iters = n;
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    _measure_for: Duration,
    tp: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher::default();
    f(&mut b);
    let iters = b.iters.max(1);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    match tp {
        Some(Throughput::Elements(e)) => {
            let per_sec = e as f64 * iters as f64 / b.elapsed.as_secs_f64().max(1e-12);
            println!("{label}: {ns:.1} ns/iter ({per_sec:.0} elem/s, {iters} iters)");
        }
        Some(Throughput::Bytes(by)) => {
            let per_sec = by as f64 * iters as f64 / b.elapsed.as_secs_f64().max(1e-12);
            println!("{label}: {ns:.1} ns/iter ({per_sec:.0} B/s, {iters} iters)");
        }
        None => println!("{label}: {ns:.1} ns/iter ({iters} iters)"),
    }
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::default();
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters > 0);
        assert_eq!(count, b.iters + 8); // warmup + timed
    }

    #[test]
    fn iter_batched_ref_runs_setup_per_iteration() {
        let mut b = Bencher::default();
        b.iter_batched_ref(|| vec![1u8; 8], |v| v.push(2), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
