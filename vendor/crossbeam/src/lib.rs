//! Offline stand-in for the subset of the `crossbeam` API this
//! workspace uses: MPMC `channel`s (bounded and unbounded) and a
//! polling `select!` macro.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a dependency-free implementation over `std::sync` primitives
//! (`Mutex` + `Condvar`). Semantics match upstream where the workspace
//! relies on them: cloneable multi-producer multi-consumer endpoints,
//! blocking `send`/`recv` with backpressure on bounded channels, and
//! disconnect errors once the other side is fully dropped. `select!` is
//! implemented by polling with a short park instead of a waker graph —
//! identical observable behaviour, slightly higher idle latency.

#![warn(missing_docs)]

pub mod channel;

/// Waits until one of several `recv` operations is ready.
///
/// Supports the `recv($rx) -> $pattern => $body` arm form used in this
/// workspace. A disconnected channel counts as ready with `Err`.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {{
        loop {
            $(
                match $rx.try_recv() {
                    ::core::result::Result::Ok(value) => {
                        let $res: ::core::result::Result<_, $crate::channel::RecvError> =
                            ::core::result::Result::Ok(value);
                        break $body;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        let $res = $crate::channel::disconnected(&$rx);
                        break $body;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            ::std::thread::sleep(::std::time::Duration::from_micros(20));
        }
    }};
}
