//! Cloneable MPMC channels over `std::sync::{Mutex, Condvar}`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub use crate::select;

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error for [`Sender::send`]: every receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> SendError<T> {
    /// Recovers the unsent message.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error for [`Sender::try_send`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }

    /// True if the failure was a full channel.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error for [`Receiver::recv`]: the channel is empty and every sender
/// is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with nothing queued.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Builds the `Err(RecvError)` a disconnected `select!` arm yields,
/// with the value type pinned to the receiver's (inference helper for
/// the macro expansion).
pub fn disconnected<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Creates a bounded channel with space for `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity == 0` (rendezvous channels are not supported by
/// this stand-in; nothing in the workspace uses them).
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "zero-capacity channels are not supported");
    with_capacity(Some(capacity))
}

/// Creates an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] if at capacity, [`TrySendError::Disconnected`]
    /// if every receiver has been dropped. Both return the message.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.capacity.is_some_and(|cap| state.queue.len() >= cap) {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking for at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] once empty with every sender
    /// gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake blocked senders so they observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_applies_backpressure_and_delivers_in_order() {
        let (tx, rx) = bounded::<u32>(2);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        let err = tx.try_send(2).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn mpmc_conserves_messages() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        let n = 10_000u64;
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_prefers_ready_arm_and_sees_disconnect() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (tx_b, rx_b) = unbounded::<u8>();
        tx_b.send(7).unwrap();
        let got = crate::select! {
            recv(rx_a) -> msg => msg.map(|v| (0u8, v)),
            recv(rx_b) -> msg => msg.map(|v| (1u8, v)),
        };
        assert_eq!(got, Ok((1, 7)));
        drop(tx_a);
        let got = crate::select! {
            recv(rx_a) -> msg => msg.is_err(),
            recv(rx_b) -> _msg => false,
        };
        assert!(got);
        drop(tx_b);
    }
}
