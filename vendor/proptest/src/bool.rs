//! Boolean strategies (`prop::bool::weighted`).

use crate::{Strategy, TestRng};

/// Strategy returning `true` with a fixed probability.
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    probability: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_f64() < self.probability
    }
}

/// Generates `true` with probability `probability`.
///
/// # Panics
///
/// Panics unless `probability ∈ [0, 1]`.
#[must_use]
pub fn weighted(probability: f64) -> Weighted {
    assert!(
        (0.0..=1.0).contains(&probability),
        "probability {probability} out of [0, 1]"
    );
    Weighted { probability }
}
