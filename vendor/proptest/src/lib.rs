//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface the
//! test suites were written against: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, [`any`], integer
//! range strategies, tuple strategies, [`collection::vec`],
//! [`bool::weighted`], and [`Strategy::prop_map`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and
//!   assertion message; the run is deterministic (seeded from the test's
//!   module path), so a failure reproduces exactly under `cargo test`.
//! * **No persistence files.** Determinism makes them unnecessary.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;

pub mod bool;
pub mod collection;

/// Deterministic test-case generator (xoshiro256++, seeded from the
/// test name so different tests explore different sequences).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator seeded from `name` (usually the test path).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        u128::from(self.next_u64()) % bound
    }
}

/// Runner configuration (only the knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — retried, not a failure.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for a failure.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Convenience constructor for a rejection.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as u128) - (s as u128) + 1;
                (s as u128 + rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (the `any::<T>()` entry point).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the real crate's `prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects (skips and regenerates) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests.
///
/// Mirrors the real macro's surface: an optional
/// `#![proptest_config(...)]` header followed by `fn` items whose
/// parameters are `pattern in strategy` pairs. Each test body runs in a
/// closure returning `Result<(), TestCaseError>`, so `prop_assert!` and
/// `?` work as upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                assert!(
                    rejected <= config.cases.saturating_mul(64).max(4096),
                    "proptest: too many rejected cases ({rejected}) — assumptions too strict?",
                );
                $crate::__proptest_bind!(rng; $($params)*);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{passed} failed: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: binds one `proptest!` parameter list entry after another.
/// Supports both `pattern in strategy` and the `name: Type` shorthand
/// (the latter draws from `any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:pat_param in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:pat_param in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident: $ty:ty) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $arg:ident: $ty:ty, $($rest:tt)*) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_compose(
            a in 1u8..=8,
            (b, c) in (0u32..100, any::<bool>()),
            v in prop::collection::vec(0usize..10, 1..20),
        ) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!(b < 100);
            let _ = c;
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_transforms(x in (0u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 100);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn weighted_bool_hits_rate() {
        let mut rng = TestRng::deterministic("weighted");
        let s = crate::bool::weighted(0.8);
        let hits = (0..10_000).filter(|_| s.generate(&mut rng)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((0.77..0.83).contains(&frac), "frac = {frac}");
    }
}
