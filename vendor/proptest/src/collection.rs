//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
