//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the handful of
//! items the crates actually call: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 the real `StdRng` uses, so *absolute* sequences differ from
//! upstream `rand`, but every property the workspace relies on holds:
//! deterministic per seed, distinct across seeds, and statistically
//! uniform for simulation purposes.

#![warn(missing_docs)]

pub mod rngs;

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the stand-in for `rand`'s `StandardUniform` distribution).
pub trait Random: Sized {
    /// Samples one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers the range sampler understands, via a two's-complement
/// round-trip through `u128` (so signed spans wrap correctly).
pub trait UniformInt: Copy + PartialOrd {
    /// Sign-extending widen.
    fn to_u128(self) -> u128;
    /// Truncating narrow (inverse of [`UniformInt::to_u128`] modulo
    /// the type's width).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $via:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as $via as u128
            }
            fn from_u128(v: u128) -> $t {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u128().wrapping_sub(self.start.to_u128());
        T::from_u128(
            self.start
                .to_u128()
                .wrapping_add(u128::from(rng.next_u64()) % span),
        )
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "cannot sample empty range");
        let span = e.to_u128().wrapping_sub(s.to_u128()).wrapping_add(1);
        let offset = if span == 0 {
            // Full-width range: every 64-bit draw is already uniform.
            u128::from(rng.next_u64())
        } else {
            u128::from(rng.next_u64()) % span
        };
        T::from_u128(s.to_u128().wrapping_add(offset))
    }
}

/// High-level sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value uniformly over its whole domain (`f64` in
    /// `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u16 = rng.random_range(3..17u16);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5usize);
            assert!(y <= 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frac = {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn range_covers_both_endpoints_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
