//! Offline stand-in for the subset of the `parking_lot` API this
//! workspace uses: [`Mutex`] and [`RwLock`] with panic-free, non-poisoning
//! `lock`/`read`/`write`.
//!
//! Wraps `std::sync` locks and recovers from poisoning (the real
//! `parking_lot` has no poisoning at all, so recovery matches its
//! semantics). Guards are the `std` guard types re-exported under the
//! `parking_lot` names.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return an error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
