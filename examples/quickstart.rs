//! Quickstart: compress a routing table, run parallel lookup, apply a
//! routing update — the three letters of CLUE in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clue::compress::{compress_with_stats, CompressedFib};
use clue::core::engine::{Engine, EngineConfig};
use clue::fib::gen::FibGen;
use clue::fib::{NextHop, Update};
use clue::traffic::PacketGen;

fn main() {
    // --- C is for Compression -------------------------------------------
    // A synthetic 50 K-route RIB (stands in for a RIPE RIS table).
    let fib = FibGen::new(2012).routes(50_000).generate();
    let (compressed, stats) = compress_with_stats(&fib);
    println!(
        "compression: {} routes -> {} entries ({:.1}% of original, {:.1} ms)",
        stats.original,
        stats.compressed,
        stats.ratio() * 100.0,
        stats.millis
    );
    assert!(compressed.is_non_overlapping());

    // --- L is for Lookup -------------------------------------------------
    // Four TCAM chips, even partitions, 1024-entry DReds.
    let cfg = EngineConfig::default();
    let mut engine = Engine::clue(&compressed, 1024, cfg);
    let trace = PacketGen::new(7).generate(&compressed, 200_000);
    let (report, _) = engine.run(&trace);
    println!(
        "lookup: {} packets, speedup {:.2}x over one chip, DRed hit rate {:.1}%",
        report.completions,
        report.speedup(cfg.service_clocks),
        report.scheme.hit_rate() * 100.0
    );
    println!(
        "        per-chip load shares: {:?}",
        report
            .chip_shares()
            .iter()
            .map(|s| format!("{:.1}%", s * 100.0))
            .collect::<Vec<_>>()
    );

    // --- UE is for UpdatE -------------------------------------------------
    // Incremental maintenance of the compressed table.
    let mut live = CompressedFib::new(&fib);
    let prefix = "203.0.113.0/24".parse().expect("valid prefix literal");
    let diff = live.apply(Update::Announce {
        prefix,
        next_hop: NextHop(3),
    });
    println!(
        "update: announcing {prefix} changed {} TCAM entries \
         (computed in {:?}; each entry is one 24 ns write on CLUE's unordered TCAM)",
        diff.op_count(),
        live.last_update_time(),
    );
    let diff = live.apply(Update::Withdraw { prefix });
    println!(
        "update: withdrawing it changed {} entries back",
        diff.op_count()
    );
}
