//! Full router simulation: a backbone linecard's day in miniature.
//!
//! Builds the complete CLUE forwarding plane — compressed FIB, four
//! TCAM chips with even partitions and DReds, TCAM layout with shift
//! accounting — then interleaves packet forwarding with a live BGP
//! update feed, reporting throughput, update cost, and correctness
//! against a reference trie.
//!
//! ```sh
//! cargo run --release --example router_sim
//! ```

use clue::core::engine::{Engine, EngineConfig};
use clue::core::update_pipeline::{mean_ttf, CluePipeline};
use clue::fib::gen::FibGen;
use clue::fib::RouteTable;
use clue::traffic::{PacketGen, UpdateGen};

fn main() {
    println!("== CLUE router simulation ==");

    // Control plane: RIB and compression.
    let rib = FibGen::new(100).routes(100_000).generate();
    println!("RIB: {} routes", rib.len());
    let mut pipeline = CluePipeline::new(&rib, 4, 1024, 65_536);
    println!(
        "FIB after ONRTC: {} TCAM entries ({:.1}% of RIB)",
        pipeline.tcam_entries(),
        pipeline.tcam_entries() as f64 / rib.len() as f64 * 100.0
    );

    // Data plane: 4-chip engine over the compressed table.
    let compressed: RouteTable = pipeline.fib().compressed_table();
    let cfg = EngineConfig::default();
    let mut engine = Engine::clue(&compressed, 1024, cfg);

    // Interleave: alternate bursts of packets with bursts of updates,
    // like a real linecard under a flapping peer.
    let packets = PacketGen::new(101).generate(&compressed, 400_000);
    let updates = UpdateGen::new(102).generate(&rib, 4_000);
    let epochs = 8;
    let pkts_per_epoch = packets.len() / epochs;
    let upds_per_epoch = updates.len() / epochs;

    let reference = compressed.to_trie();
    let mut all_ttf = Vec::new();
    for epoch in 0..epochs {
        // Forwarding burst.
        let chunk = &packets[epoch * pkts_per_epoch..(epoch + 1) * pkts_per_epoch];
        let (report, outcomes) = engine.run(chunk);
        // Spot-verify a sample of outcomes against the engine's tables.
        for (i, (&addr, outcome)) in chunk.iter().zip(&outcomes).enumerate() {
            if i % 997 == 0 {
                if let clue::core::Outcome::Forwarded(nh) = *outcome {
                    assert_eq!(nh, reference.lookup(addr).map(|(_, &v)| v));
                }
            }
        }

        // Update burst through the full pipeline (trie → TCAM → DRed).
        let chunk = &updates[epoch * upds_per_epoch..(epoch + 1) * upds_per_epoch];
        let samples: Vec<_> = chunk.iter().map(|&u| pipeline.apply(u)).collect();
        let mean = mean_ttf(&samples);
        all_ttf.extend(samples);

        println!(
            "epoch {epoch}: {:>7} pkts, speedup {:.2}x, hit {:5.1}%, drops {:>4} | \
             {:>3} updates, TTF {:.3} us (trie {:.3} + tcam {:.3} + dred {:.3})",
            report.completions,
            report.speedup(cfg.service_clocks),
            report.scheme.hit_rate() * 100.0,
            report.drops,
            chunk.len(),
            mean.total_ns() / 1e3,
            mean.ttf1_ns / 1e3,
            mean.ttf2_ns / 1e3,
            mean.ttf3_ns / 1e3,
        );
    }

    assert!(pipeline.tcam_synced(), "TCAM diverged from the FIB");
    let overall = mean_ttf(&all_ttf);
    println!(
        "\nday summary: mean TTF {:.3} us over {} updates; TCAM still in sync \
         with {} entries",
        overall.total_ns() / 1e3,
        all_ttf.len(),
        pipeline.tcam_entries()
    );
}
