//! Update storm: CLUE vs CLPL under heavy BGP churn.
//!
//! Replays the same update trace through both complete pipelines and
//! prints the TTF breakdown — the live version of Figures 10–14. The
//! paper's peak observation (35 K updates/s) sets the bar: a pipeline
//! is update-limited once its per-update TTF exceeds ~28.6 µs.
//!
//! ```sh
//! cargo run --release --example update_storm
//! ```

use clue::core::update_pipeline::{mean_ttf, ClplPipeline, CluePipeline, TtfSample};
use clue::fib::gen::FibGen;
use clue::traffic::{windows, PacketGen, UpdateGen};

fn main() {
    println!("== BGP update storm: CLUE vs CLPL ==\n");
    let rib = FibGen::new(55).routes(100_000).generate();
    let updates = UpdateGen::new(56).generate(&rib, 20_000);
    let warm = PacketGen::new(57).generate(&rib, 50_000);

    let mut clue = CluePipeline::new(&rib, 4, 1024, 65_536);
    let mut clpl = ClplPipeline::new(&rib, 4, 1024, 65_536);
    clue.warm(&warm);
    clpl.warm(&warm);

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "window",
        "CLUE ttf1",
        "CLUE ttf2+3",
        "CLPL ttf1",
        "CLPL ttf2+3",
        "CLUE total",
        "CLPL total"
    );

    let mut clue_all: Vec<TtfSample> = Vec::new();
    let mut clpl_all: Vec<TtfSample> = Vec::new();
    for (i, w) in windows(&updates, 2_000).iter().enumerate() {
        let a: Vec<TtfSample> = w.iter().map(|&u| clue.apply(u)).collect();
        let b: Vec<TtfSample> = w.iter().map(|&u| clpl.apply(u)).collect();
        let (ma, mb) = (mean_ttf(&a), mean_ttf(&b));
        println!(
            "{:<8} {:>10.3}us {:>10.3}us {:>10.3}us {:>10.3}us | {:>10.3}us {:>10.3}us",
            i,
            ma.ttf1_ns / 1e3,
            (ma.ttf2_ns + ma.ttf3_ns) / 1e3,
            mb.ttf1_ns / 1e3,
            (mb.ttf2_ns + mb.ttf3_ns) / 1e3,
            ma.total_ns() / 1e3,
            mb.total_ns() / 1e3,
        );
        clue_all.extend(a);
        clpl_all.extend(b);
    }

    let (ma, mb) = (mean_ttf(&clue_all), mean_ttf(&clpl_all));
    println!("\n-- storm summary over {} updates --", clue_all.len());
    println!(
        "CLUE: mean TTF {:.3} us  (trie {:.3}, tcam {:.3}, dred {:.3})",
        ma.total_ns() / 1e3,
        ma.ttf1_ns / 1e3,
        ma.ttf2_ns / 1e3,
        ma.ttf3_ns / 1e3
    );
    println!(
        "CLPL: mean TTF {:.3} us  (trie {:.3}, tcam {:.3}, dred {:.3})",
        mb.total_ns() / 1e3,
        mb.ttf1_ns / 1e3,
        mb.ttf2_ns / 1e3,
        mb.ttf3_ns / 1e3
    );
    println!(
        "data-plane-interrupting cost (ttf2+ttf3): CLUE is {:.1}% of CLPL",
        (ma.ttf2_ns + ma.ttf3_ns) / (mb.ttf2_ns + mb.ttf3_ns) * 100.0
    );
    let budget_ns = 1e9 / 35_000.0;
    println!(
        "at the paper's 35 K updates/s peak ({:.2} us budget): CLUE uses {:.1}%, CLPL {:.1}%",
        budget_ns / 1e3,
        ma.total_ns() / budget_ns * 100.0,
        mb.total_ns() / budget_ns * 100.0
    );
    assert!(clue.tcam_synced() && clpl.tcam_synced());
}
