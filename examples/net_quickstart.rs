//! Networked quickstart: a loopback `clue-net` server, a reconnecting
//! client, and the multi-threaded load generator — the same machinery
//! behind `clue serve --listen`, `clue loadgen`, and `clue stats`.
//!
//! The server bridges TCP connections into the `clue-router` runtime;
//! backpressure propagates to the wire because router calls happen on
//! each connection's reader thread (a full ingress closes the TCP
//! window). This example starts a server on an ephemeral port, checks a
//! few lookups against the reference trie, offers a paced mixed
//! workload through `run_load`, then drains gracefully and prints the
//! final stats.
//!
//! ```sh
//! cargo run --release --example net_quickstart
//! ```

use clue::fib::gen::FibGen;
use clue::net::{run_load, ClientConfig, Connection, LoadConfig, Server, ServerConfig};
use clue::router::RouterConfig;
use clue::traffic::{PacketGen, UpdateGen};

fn main() -> std::io::Result<()> {
    println!("== CLUE networked quickstart ==");

    let rib = FibGen::new(500).routes(20_000).generate();
    let reference = rib.to_trie();

    // 1. Serve the table on an ephemeral loopback port.
    let scfg = ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        router: RouterConfig {
            workers: 4,
            ..RouterConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(&rib, &scfg)?;
    let addr = server.local_addr().to_string();
    println!("serving {} routes on {addr}", rib.len());

    // 2. A single client: framed, CRC-checked lookups over TCP.
    let mut conn = Connection::connect(ClientConfig::to_addr(addr.clone()))?;
    let probe = PacketGen::new(501).generate(&rib, 256);
    let answers = conn.lookup(&probe)?;
    for (&a, &got) in probe.iter().zip(&answers) {
        assert_eq!(got, reference.lookup(a).map(|(_, &nh)| nh));
    }
    println!("checked {} lookups against the reference trie", probe.len());
    let _ = conn.close()?;

    // 3. A paced mixed workload: 2 lookup connections racing a
    //    sequenced, acknowledged update stream.
    let packets = PacketGen::new(502).generate(&rib, 100_000);
    let updates = UpdateGen::new(503).generate(&rib, 5_000);
    let report = run_load(
        &packets,
        &updates,
        &LoadConfig {
            client: ClientConfig::to_addr(addr),
            lookup_threads: 2,
            lookup_rate: 500_000.0,
            update_rate: 50_000.0,
            ..LoadConfig::default()
        },
    )?;
    println!(
        "loadgen: {}/{} lookups answered, {}/{} updates accepted ({} dropped), \
         {:.0} pps achieved",
        report.lookups_answered,
        report.lookups_sent,
        report.updates_accepted,
        report.updates_sent,
        report.updates_dropped,
        report.achieved_lookup_rate,
    );
    assert_eq!(report.lookups_answered, report.lookups_sent);
    assert_eq!(report.updates_accepted, report.updates_sent);

    // 4. Graceful drain: refuse new work, flush update batches, publish
    //    the final epoch, and hand back the authoritative report.
    let final_report = server.drain().expect("server drains cleanly");
    let s = &final_report.snapshot;
    println!(
        "drained: {} lookups, {} updates received over {} epochs | final table {} routes",
        s.completions,
        s.updates_received,
        s.epochs,
        final_report.final_table.len(),
    );
    assert_eq!(s.updates_received, updates.len() as u64);
    println!("{}", s.to_json());
    Ok(())
}
