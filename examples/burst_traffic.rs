//! Bursty traffic and the worst-case mapping: Dynamic Redundancy at work.
//!
//! Recreates the paper's adversarial experiment (Table II → Figure 15):
//! profile a Zipf trace over 32 even partitions, map the eight hottest
//! onto chip 1, and watch DRed rebalance the load. Also sweeps the DRed
//! size to show the hit-rate / speedup relationship (Figures 16–17) and
//! cross-validates the clock model against the real-thread engine.
//!
//! ```sh
//! cargo run --release --example burst_traffic
//! ```

use clue::compress::onrtc;
use clue::core::engine::{Engine, EngineConfig};
use clue::core::theory::worst_case_speedup;
use clue::core::threads::{run_threaded, ThreadedConfig};
use clue::core::DredConfig;
use clue::fib::gen::FibGen;
use clue::partition::{EvenRangePartition, Indexer};
use clue::traffic::workload::{adversarial_mapping, chip_shares, profile};
use clue::traffic::PacketGen;

fn main() {
    println!("== bursty traffic under the adversarial mapping ==\n");
    let fib = onrtc(&FibGen::new(77).routes(100_000).generate());
    let trace = PacketGen::new(78)
        .zipf_exponent(1.1)
        .generate(&fib, 500_000);

    // 32 even partitions; profile the trace; stack the hottest on chip 0.
    let parts = EvenRangePartition::split(&fib, 32);
    let (buckets, index) = parts.into_parts();
    let counts = profile(&trace, 32, |a| index.bucket_of(a));
    let mapping = adversarial_mapping(&counts, 4);
    let original = chip_shares(&counts, &mapping, 4);
    println!(
        "offered per-chip load (adversarial): {:?}",
        original
            .iter()
            .map(|s| format!("{:.2}%", s * 100.0))
            .collect::<Vec<_>>()
    );

    // Run the engine: DRed must flatten the service distribution.
    let cfg = EngineConfig::default();
    let idx = index.clone();
    let mut engine = Engine::from_buckets(
        &buckets,
        move |a| idx.bucket_of(a),
        mapping.clone(),
        DredConfig::Clue {
            capacity: 1024,
            exclude_home: true,
        },
        cfg,
    );
    let (report, _) = engine.run(&trace);
    println!(
        "serviced per-chip after DRed balancing: {:?}",
        report
            .chip_shares()
            .iter()
            .map(|s| format!("{:.2}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    println!(
        "speedup {:.2}x at hit rate {:.1}% (theory floor: {:.2}x)\n",
        report.speedup(cfg.service_clocks),
        report.scheme.hit_rate() * 100.0,
        worst_case_speedup(cfg.chips, report.scheme.hit_rate())
    );

    // Sweep DRed size: hit rate and speedup (Figures 16–17 in one table).
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "DRed size", "hit rate", "speedup", "(N-1)h+1"
    );
    for dred in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let idx = index.clone();
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| idx.bucket_of(a),
            mapping.clone(),
            DredConfig::Clue {
                capacity: dred,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&trace);
        let h = r.scheme.hit_rate();
        println!(
            "{:>10} {:>9.1}% {:>9.2}x {:>11.2}x",
            dred,
            h * 100.0,
            r.speedup(cfg.service_clocks),
            worst_case_speedup(cfg.chips, h)
        );
    }

    // Cross-validate with real threads.
    let (treport, _) = run_threaded(&fib, &trace[..200_000], ThreadedConfig::default());
    println!(
        "\nthreaded engine: {} packets in {:?} ({:.1} Mpps software throughput)",
        treport.completions,
        treport.elapsed,
        treport.pps() / 1e6
    );
}
