//! Live concurrent router: real threads, batched coalesced updates,
//! epoch handoff, and a JSON stats snapshot.
//!
//! Where `router_sim` drives the *clock-accurate* engine, this example
//! runs the `clue-router` runtime — one OS thread per chip racing a
//! single update-plane thread — on a seeded workload, then verifies the
//! final FIB against offline sequential replay and prints the
//! aggregated statistics the `clue serve` subcommand exposes.
//!
//! ```sh
//! cargo run --release --example live_router
//! ```

use clue::core::BackendKind;
use clue::fib::gen::FibGen;
use clue::router::{run, OverflowPolicy, RouterConfig};
use clue::traffic::{PacketGen, UpdateGen};

fn main() {
    println!("== CLUE live router ==");

    let rib = FibGen::new(300).routes(50_000).generate();
    let packets = PacketGen::new(301).generate(&rib, 300_000);
    let updates = UpdateGen::new(302).generate(&rib, 12_000);
    println!(
        "workload: {} routes, {} packets, {} updates",
        rib.len(),
        packets.len(),
        updates.len()
    );

    let cfg = RouterConfig {
        workers: 4,
        fifo_capacity: 256,
        dred_capacity: 2048,
        batch_size: 64,
        update_queue: 1024,
        overflow: OverflowPolicy::Block,
        snapshot_every: None,
        faults: None,
        backend: BackendKind::default(),
    };
    let report = run(&rib, &packets, &updates, &cfg);

    let s = &report.snapshot;
    println!(
        "\ncompleted {}/{} lookups in {:.1} ms ({:.0} pps)",
        s.completions,
        s.arrivals,
        report.elapsed.as_secs_f64() * 1e3,
        s.completions as f64 / report.elapsed.as_secs_f64().max(1e-9),
    );
    println!(
        "lookup latency ns: p50 {} | p90 {} | p99 {} | max {}",
        s.lookup_ns.quantile(0.5),
        s.lookup_ns.quantile(0.9),
        s.lookup_ns.quantile(0.99),
        s.lookup_ns.max(),
    );
    println!(
        "update plane: {} received -> {} applied over {} batches / {} epochs ({:.1}% coalesced away, {} dropped)",
        s.updates_received,
        s.updates_applied,
        s.batches,
        s.epochs,
        s.coalesce_ratio * 100.0,
        s.update_drops,
    );
    println!(
        "diversions {} (DRed hits {} / misses {}) | dynamic redundancy {} entries",
        s.diversions, s.dred_hits, s.dred_misses, report.dynamic_redundancy,
    );

    // The runtime's contract: the concurrent run lands on exactly the
    // sequential final FIB.
    let mut expect = rib.clone();
    for &u in &updates {
        expect.apply(u);
    }
    let got: Vec<_> = report.final_table.iter().collect();
    let want: Vec<_> = expect.iter().collect();
    assert_eq!(
        got, want,
        "concurrent final FIB diverged from sequential replay"
    );
    println!(
        "final FIB verified against sequential replay: {} routes -> {} compressed",
        report.final_table.len(),
        report.final_compressed.len()
    );

    println!("\nstats snapshot:\n{}", s.to_json());
}
