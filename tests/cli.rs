//! End-to-end tests of the `clue` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn clue() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clue"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("clue-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn clue binary");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn full_workflow_through_the_cli() {
    let fib = tmp("wf_fib.txt");
    let comp = tmp("wf_comp.txt");
    let trace = tmp("wf_trace.txt");
    let updates = tmp("wf_updates.txt");

    let out = run_ok(clue().args([
        "gen-fib",
        "--out",
        fib.to_str().unwrap(),
        "--routes",
        "5000",
        "--seed",
        "77",
    ]));
    assert!(out.contains("wrote"), "{out}");

    let out = run_ok(clue().args([
        "compress",
        "--fib",
        fib.to_str().unwrap(),
        "--out",
        comp.to_str().unwrap(),
    ]));
    assert!(out.contains("onrtc:"), "{out}");

    // The exported compressed table must parse and be non-overlapping.
    let table = clue::fib::RouteTable::from_text(&std::fs::read_to_string(&comp).unwrap()).unwrap();
    assert!(table.is_non_overlapping());
    assert!(!table.is_empty());

    run_ok(clue().args([
        "gen-packets",
        "--fib",
        fib.to_str().unwrap(),
        "--out",
        trace.to_str().unwrap(),
        "--count",
        "20000",
    ]));
    run_ok(clue().args([
        "gen-updates",
        "--fib",
        fib.to_str().unwrap(),
        "--out",
        updates.to_str().unwrap(),
        "--count",
        "500",
    ]));

    let out = run_ok(clue().args([
        "simulate",
        "--fib",
        fib.to_str().unwrap(),
        "--packets",
        trace.to_str().unwrap(),
        "--chips",
        "4",
    ]));
    assert!(out.contains("speedup"), "{out}");
    assert!(out.contains("control-plane interactions: 0"), "{out}");

    let out = run_ok(clue().args([
        "replay",
        "--fib",
        fib.to_str().unwrap(),
        "--updates",
        updates.to_str().unwrap(),
        "--window",
        "250",
    ]));
    assert!(out.contains("mean TTF"), "{out}");

    let out = run_ok(clue().args([
        "partition",
        "--fib",
        fib.to_str().unwrap(),
        "--scheme",
        "clue",
        "--n",
        "8",
    ]));
    assert!(out.contains("redundancy 0"), "{out}");
}

#[test]
fn serve_runs_a_live_workload_and_prints_json_stats() {
    let fib = tmp("serve_fib.txt");
    let trace = tmp("serve_trace.txt");
    let updates = tmp("serve_updates.txt");

    run_ok(clue().args([
        "gen-fib",
        "--out",
        fib.to_str().unwrap(),
        "--routes",
        "3000",
        "--seed",
        "88",
    ]));
    run_ok(clue().args([
        "gen-packets",
        "--fib",
        fib.to_str().unwrap(),
        "--out",
        trace.to_str().unwrap(),
        "--count",
        "20000",
        "--seed",
        "89",
    ]));
    run_ok(clue().args([
        "gen-updates",
        "--fib",
        fib.to_str().unwrap(),
        "--out",
        updates.to_str().unwrap(),
        "--count",
        "1500",
        "--seed",
        "90",
    ]));

    let out = run_ok(clue().args([
        "serve",
        "--fib",
        fib.to_str().unwrap(),
        "--packets",
        trace.to_str().unwrap(),
        "--updates",
        updates.to_str().unwrap(),
        "--workers",
        "4",
        "--batch",
        "32",
    ]));
    assert!(out.contains("completed 20000/20000 lookups"), "{out}");
    assert!(out.contains("1500 received"), "{out}");
    // The JSON snapshot line carries quantiles and the drop account.
    for key in [
        "\"p99\":",
        "\"ttf_batch_ns\":",
        "\"coalesce_ratio\":",
        "\"dropped\":0",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }

    let out = clue()
        .args([
            "serve",
            "--fib",
            fib.to_str().unwrap(),
            "--packets",
            trace.to_str().unwrap(),
            "--updates",
            updates.to_str().unwrap(),
            "--overflow",
            "sideways",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown overflow"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = clue().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_flag_is_reported() {
    let out = clue().arg("gen-fib").output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = clue()
        .args(["gen-fib", "--out", "/dev/null", "--bogus", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let out = run_ok(clue().arg("--help"));
    assert!(out.contains("usage: clue"), "{out}");
    for cmd in [
        "gen-fib",
        "compress",
        "partition",
        "simulate",
        "replay",
        "serve",
    ] {
        assert!(out.contains(cmd), "usage missing {cmd}");
    }
}

#[test]
fn bad_input_file_is_a_clean_error() {
    let bad = tmp("bad_fib.txt");
    std::fs::write(&bad, "this is not a fib\n").unwrap();
    let out = clue()
        .args(["compress", "--fib", bad.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
}
