//! End-to-end integration: the full CLUE stack against ground truth.
//!
//! Every packet that the 4-chip engine forwards must receive exactly the
//! next hop the *original, uncompressed* routing table assigns — across
//! compression, partitioning, load balancing, DRed caching, and
//! bouncing.

use clue::compress::{onrtc, CompressedFib};
use clue::core::engine::{Engine, EngineConfig};
use clue::core::threads::{run_threaded, ThreadedConfig};
use clue::core::update_pipeline::CluePipeline;
use clue::core::{DredConfig, Outcome};
use clue::fib::gen::FibGen;
use clue::fib::RouteTable;
use clue::partition::{EvenRangePartition, Indexer};
use clue::traffic::{PacketGen, UpdateGen};

fn build() -> (RouteTable, RouteTable, Vec<u32>) {
    let rib = FibGen::new(1001).routes(20_000).generate();
    let compressed = onrtc(&rib);
    let trace = PacketGen::new(1002).generate(&rib, 100_000);
    (rib, compressed, trace)
}

#[test]
fn engine_forwards_like_the_uncompressed_table() {
    let (rib, compressed, trace) = build();
    let reference = rib.to_trie();
    let mut engine = Engine::clue(&compressed, 1024, EngineConfig::default());
    let (report, outcomes) = engine.run(&trace);
    assert_eq!(report.arrivals, trace.len() as u64);
    let mut forwarded = 0u64;
    for (&addr, outcome) in trace.iter().zip(&outcomes) {
        if let Outcome::Forwarded(nh) = *outcome {
            forwarded += 1;
            assert_eq!(
                nh,
                reference.lookup(addr).map(|(_, &v)| v),
                "compressed+parallel lookup diverged at {addr:#x}"
            );
        }
    }
    assert!(forwarded > 0);
    assert_eq!(forwarded, report.completions);
}

#[test]
fn adversarial_mapping_still_forwards_correctly() {
    let (rib, compressed, trace) = build();
    let reference = rib.to_trie();
    let parts = EvenRangePartition::split(&compressed, 8);
    let (buckets, index) = parts.into_parts();
    // All eight buckets on chip 0: maximal diversion + bouncing.
    let mut engine = Engine::from_buckets(
        &buckets,
        move |a| index.bucket_of(a),
        vec![0; 8],
        DredConfig::Clue {
            capacity: 512,
            exclude_home: true,
        },
        EngineConfig::default(),
    );
    let (report, outcomes) = engine.run(&trace);
    assert!(report.diversions > 0);
    assert!(report.scheme.hits > 0, "DRed must serve traffic here");
    for (&addr, outcome) in trace.iter().zip(&outcomes) {
        if let Outcome::Forwarded(nh) = *outcome {
            assert_eq!(nh, reference.lookup(addr).map(|(_, &v)| v));
        }
    }
}

#[test]
fn clpl_scheme_forwards_correctly_too() {
    let (rib, compressed, trace) = build();
    let reference = rib.to_trie();
    let parts = EvenRangePartition::split(&compressed, 4);
    let (buckets, index) = parts.into_parts();
    let mut engine = Engine::from_buckets(
        &buckets,
        move |a| index.bucket_of(a),
        vec![0, 0, 0, 0],
        DredConfig::Clpl {
            capacity: 512,
            sram_trie: compressed.to_trie(),
        },
        EngineConfig::default(),
    );
    let (report, outcomes) = engine.run(&trace[..50_000]);
    assert!(report.scheme.control_plane_interactions > 0);
    for (&addr, outcome) in trace.iter().zip(&outcomes) {
        if let Outcome::Forwarded(nh) = *outcome {
            assert_eq!(nh, reference.lookup(addr).map(|(_, &v)| v));
        }
    }
}

#[test]
fn threaded_and_clocked_engines_agree_with_reference() {
    let (rib, compressed, trace) = build();
    let reference = rib.to_trie();
    let (treport, tresults) =
        run_threaded(&compressed, &trace[..50_000], ThreadedConfig::default());
    assert_eq!(treport.completions, 50_000);
    for (&addr, nh) in trace[..50_000].iter().zip(&tresults) {
        assert_eq!(*nh, reference.lookup(addr).map(|(_, &v)| v));
    }
}

#[test]
fn update_storm_preserves_forwarding_equivalence() {
    let (rib, _, _) = build();
    let updates = UpdateGen::new(1003).generate(&rib, 3_000);
    let probes = PacketGen::new(1004).generate(&rib, 500);

    let mut pipeline = CluePipeline::new(&rib, 4, 512, 65_536);
    let mut reference = rib.clone();
    for (i, &u) in updates.iter().enumerate() {
        pipeline.apply(u);
        reference.apply(u);
        // Periodically verify the full equivalence of compressed state.
        if i % 500 == 499 {
            let ref_trie = reference.to_trie();
            let comp_trie = pipeline.fib().compressed().clone();
            for &addr in &probes {
                assert_eq!(
                    comp_trie.lookup(addr).map(|(_, &v)| v),
                    ref_trie.lookup(addr).map(|(_, &v)| v),
                    "divergence at {addr:#x} after update {i}"
                );
            }
            assert!(pipeline.tcam_synced());
        }
    }
}

#[test]
fn compression_plus_update_equals_update_plus_compression() {
    // Commutativity at the table level: updating then compressing gives
    // the same result as the incremental engine.
    let rib = FibGen::new(1005).routes(5_000).generate();
    let updates = UpdateGen::new(1006).generate(&rib, 1_000);
    let mut incremental = CompressedFib::new(&rib);
    let mut replayed = rib.clone();
    for &u in &updates {
        incremental.apply(u);
        replayed.apply(u);
    }
    assert_eq!(incremental.compressed_table(), onrtc(&replayed));
}
