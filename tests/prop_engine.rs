//! Property tests over the whole engine: for random tables, traces, and
//! configurations, the parallel lookup system must conserve packets and
//! forward exactly like the naive flat-scan oracle.

use clue::compress::onrtc;
use clue::core::engine::{Engine, EngineConfig};
use clue::core::{DredConfig, Outcome};
use clue::fib::{NextHop, Prefix, RouteTable};
use clue::oracle::Oracle;
use clue::partition::{EvenRangePartition, Indexer};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = RouteTable> {
    prop::collection::vec((any::<u32>(), 2u8..=12, 0u16..4), 8..60).prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect()
    })
}

fn arb_cfg() -> impl Strategy<Value = EngineConfig> {
    (1usize..=6, 1usize..=32, 1u32..=6, 1u32..=3).prop_map(|(chips, fifo, service, period)| {
        EngineConfig {
            chips,
            fifo_capacity: fifo,
            service_clocks: service,
            arrival_period: period,
            update_stall: None,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_conserves_and_forwards_correctly(
        table in arb_table(),
        cfg in arb_cfg(),
        dred_capacity in 1usize..64,
        exclude_home: bool,
        addrs in prop::collection::vec(any::<u32>(), 50..400),
    ) {
        let compressed = onrtc(&table);
        prop_assume!(!compressed.is_empty());
        let reference = Oracle::new(&table);

        let mut engine = Engine::clue(&compressed, dred_capacity, cfg);
        // Swap in the requested exclusion flag via a second engine when
        // needed (Engine::clue always excludes; build explicitly).
        if !exclude_home {
            let parts = EvenRangePartition::split(&compressed, cfg.chips);
            let (buckets, index) = parts.into_parts();
            engine = Engine::from_buckets(
                &buckets,
                move |a| index.bucket_of(a),
                (0..cfg.chips).collect(),
                DredConfig::Clue { capacity: dred_capacity, exclude_home: false },
                cfg,
            );
        }

        let (report, outcomes) = engine.run(&addrs);

        // Conservation: every packet is accounted for exactly once.
        prop_assert_eq!(report.arrivals, addrs.len() as u64);
        prop_assert_eq!(report.completions + report.drops, report.arrivals);
        prop_assert_eq!(outcomes.len(), addrs.len());
        let completed = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Forwarded(_)))
            .count() as u64;
        prop_assert_eq!(completed, report.completions);

        // Correctness: every forwarded packet got the reference next hop.
        for (&addr, outcome) in addrs.iter().zip(&outcomes) {
            if let Outcome::Forwarded(nh) = *outcome {
                prop_assert_eq!(nh, reference.lookup(addr));
            }
        }

        // Counters are internally consistent.
        let serviced: u64 = report.serviced_per_chip.iter().sum();
        prop_assert!(serviced >= report.completions);
        prop_assert!(report.scheme.hits <= report.scheme.hits + report.scheme.misses);
        prop_assert!(report.out_of_order <= report.completions);
    }

    /// The engine must never livelock: with any configuration the run
    /// terminates and all queues drain.
    #[test]
    fn engine_always_drains(
        table in arb_table(),
        cfg in arb_cfg(),
        addrs in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        let compressed = onrtc(&table);
        prop_assume!(!compressed.is_empty());
        let mut engine = Engine::clue(&compressed, 8, cfg);
        let (report, _) = engine.run(&addrs);
        prop_assert_eq!(report.completions + report.drops, report.arrivals);
        // Clock count stays within the drain-safety bound.
        prop_assert!(report.clocks >= addrs.len() as u64);
    }
}
