//! Stress and corner-case integration tests.

use clue::compress::{onrtc, CompressedFib};
use clue::core::engine::{Engine, EngineConfig};
use clue::core::threads::{run_threaded, ThreadedConfig};
use clue::core::update_pipeline::CluePipeline;
use clue::fib::gen::FibGen;
use clue::fib::{RouteTable, Update};
use clue::traffic::{PacketGen, UpdateGen, UpdateMix};

/// The threaded engine stays correct when the hot set drifts mid-trace
/// (DRed contents go stale and must turn over).
#[test]
fn threaded_engine_correct_under_hot_drift() {
    let fib = onrtc(&FibGen::new(7001).routes(5_000).generate());
    let trace = PacketGen::new(7002)
        .zipf_exponent(1.3)
        .hot_drift(10_000, 0.5)
        .generate(&fib, 60_000);
    let reference = fib.to_trie();
    let cfg = ThreadedConfig {
        chips: 4,
        fifo_capacity: 8, // tiny FIFOs force constant diversion + bouncing
        dred_capacity: 256,
    };
    let (report, results) = run_threaded(&fib, &trace, cfg);
    assert_eq!(report.completions, trace.len() as u64);
    assert!(report.diversions > 0);
    for (&addr, nh) in trace.iter().zip(&results) {
        assert_eq!(*nh, reference.lookup(addr).map(|(_, &v)| v));
    }
}

/// The clock engine's latency histogram is consistent with its queue
/// statistics: completions counted, p99 ≥ p50, and latencies bounded by
/// the run length.
#[test]
fn latency_statistics_are_consistent() {
    let fib = onrtc(&FibGen::new(7003).routes(4_000).generate());
    let trace = PacketGen::new(7004).generate(&fib, 30_000);
    let cfg = EngineConfig::default();
    let mut engine = Engine::clue(&fib, 512, cfg);
    let (report, _) = engine.run(&trace);
    assert_eq!(report.latency.count(), report.completions);
    assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.5));
    assert!(report.latency.max() <= report.clocks);
    // Mean queueing is reflected in mean latency: a packet's latency is
    // at least its service time.
    assert!(report.latency.mean() + 0.5 >= f64::from(cfg.service_clocks) / 2.0);
}

/// Withdraw-everything storm: the pipeline drains to an empty table and
/// the TCAM follows exactly.
#[test]
fn withdraw_storm_drains_to_empty() {
    let fib = FibGen::new(7005).routes(2_000).generate();
    let mut pipeline = CluePipeline::new(&fib, 4, 128, fib.len() * 4);
    let routes: Vec<_> = fib.iter().collect();
    for r in &routes {
        pipeline.apply(Update::Withdraw { prefix: r.prefix });
    }
    assert_eq!(pipeline.tcam_entries(), 0);
    assert!(pipeline.tcam_synced());
    assert_eq!(pipeline.fib().original_len(), 0);
    assert_eq!(pipeline.fib().compressed_len(), 0);
}

/// Rebuild-from-empty: announce a full table one route at a time; the
/// incremental compressed table must equal the one-shot compression.
#[test]
fn announce_storm_builds_the_compressed_table() {
    let fib = FibGen::new(7006).routes(2_000).generate();
    let mut cf = CompressedFib::new(&RouteTable::new());
    for r in fib.iter() {
        cf.apply(Update::Announce {
            prefix: r.prefix,
            next_hop: r.next_hop,
        });
    }
    assert_eq!(cf.compressed_table(), onrtc(&fib));
}

/// A churn trace that interleaves all three update kinds heavily keeps
/// every invariant across thousands of steps (slow-path regression net
/// for the incremental engine).
#[test]
fn mixed_churn_marathon() {
    let fib = FibGen::new(7007).routes(5_000).generate();
    let updates = UpdateGen::new(7008)
        .mix(UpdateMix {
            reannounce: 1.0,
            announce_new: 1.0,
            withdraw: 1.0,
        })
        .churn_skew(1.2)
        .generate(&fib, 10_000);
    let mut cf = CompressedFib::new(&fib);
    let mut reference = fib.clone();
    for (i, &u) in updates.iter().enumerate() {
        cf.apply(u);
        reference.apply(u);
        if i % 2_500 == 2_499 {
            assert_eq!(cf.compressed_table(), onrtc(&reference), "step {i}");
            assert!(cf.compressed_table().is_non_overlapping());
        }
    }
    assert_eq!(cf.original_len(), reference.len());
}

/// Engine with many buckets per chip and the neutral mapping behaves
/// like the one-bucket-per-chip engine on the same traffic.
#[test]
fn bucket_granularity_does_not_change_results() {
    let fib = onrtc(&FibGen::new(7009).routes(4_000).generate());
    let trace = PacketGen::new(7010).generate(&fib, 20_000);
    let reference = fib.to_trie();
    let cfg = EngineConfig::default();
    for engine in [
        &mut Engine::clue(&fib, 512, cfg),
        &mut Engine::clue_with_buckets(&fib, 32, 512, cfg),
    ] {
        let (report, outcomes) = engine.run(&trace);
        assert_eq!(report.arrivals, trace.len() as u64);
        for (&addr, outcome) in trace.iter().zip(&outcomes) {
            if let clue::core::Outcome::Forwarded(nh) = *outcome {
                assert_eq!(nh, reference.lookup(addr).map(|(_, &v)| v));
            }
        }
    }
}
