//! Stress and corner-case integration tests.
//!
//! Every test draws its workload from one of the named seed constants
//! below, and every assertion message names the seed involved, so a
//! failure report alone is enough to reproduce the exact workload
//! (`FibGen::new(seed)` / `PacketGen::new(seed)` / `UpdateGen::new(seed)`
//! are fully deterministic).

use clue::compress::{onrtc, CompressedFib};
use clue::core::engine::{Engine, EngineConfig};
use clue::core::threads::{run_threaded, ThreadedConfig};
use clue::core::update_pipeline::CluePipeline;
use clue::fib::gen::FibGen;
use clue::fib::{RouteTable, Update};
use clue::traffic::{PacketGen, UpdateGen, UpdateMix};

/// FIB seed for the hot-drift threaded-engine stress.
const SEED_DRIFT_FIB: u64 = 7001;
/// Packet seed for the hot-drift threaded-engine stress.
const SEED_DRIFT_TRACE: u64 = 7002;
/// FIB seed for the latency-statistics consistency check.
const SEED_LATENCY_FIB: u64 = 7003;
/// Packet seed for the latency-statistics consistency check.
const SEED_LATENCY_TRACE: u64 = 7004;
/// FIB seed for the withdraw-everything storm.
const SEED_WITHDRAW_FIB: u64 = 7005;
/// FIB seed for the announce-from-empty storm.
const SEED_ANNOUNCE_FIB: u64 = 7006;
/// FIB seed for the mixed-churn marathon.
const SEED_CHURN_FIB: u64 = 7007;
/// Update seed for the mixed-churn marathon.
const SEED_CHURN_UPDATES: u64 = 7008;
/// FIB seed for the bucket-granularity comparison.
const SEED_BUCKETS_FIB: u64 = 7009;
/// Packet seed for the bucket-granularity comparison.
const SEED_BUCKETS_TRACE: u64 = 7010;

/// The threaded engine stays correct when the hot set drifts mid-trace
/// (DRed contents go stale and must turn over).
#[test]
fn threaded_engine_correct_under_hot_drift() {
    let fib = onrtc(&FibGen::new(SEED_DRIFT_FIB).routes(5_000).generate());
    let trace = PacketGen::new(SEED_DRIFT_TRACE)
        .zipf_exponent(1.3)
        .hot_drift(10_000, 0.5)
        .generate(&fib, 60_000);
    let reference = fib.to_trie();
    let cfg = ThreadedConfig {
        chips: 4,
        fifo_capacity: 8, // tiny FIFOs force constant diversion + bouncing
        dred_capacity: 256,
    };
    let (report, results) = run_threaded(&fib, &trace, cfg);
    assert_eq!(
        report.completions,
        trace.len() as u64,
        "seeds fib={SEED_DRIFT_FIB} trace={SEED_DRIFT_TRACE}"
    );
    assert!(
        report.diversions > 0,
        "seeds fib={SEED_DRIFT_FIB} trace={SEED_DRIFT_TRACE}"
    );
    for (&addr, nh) in trace.iter().zip(&results) {
        assert_eq!(
            *nh,
            reference.lookup(addr).map(|(_, &v)| v),
            "addr {addr:#010x}, seeds fib={SEED_DRIFT_FIB} trace={SEED_DRIFT_TRACE}"
        );
    }
}

/// The clock engine's latency histogram is consistent with its queue
/// statistics: completions counted, p99 ≥ p50, and latencies bounded by
/// the run length.
#[test]
fn latency_statistics_are_consistent() {
    let fib = onrtc(&FibGen::new(SEED_LATENCY_FIB).routes(4_000).generate());
    let trace = PacketGen::new(SEED_LATENCY_TRACE).generate(&fib, 30_000);
    let cfg = EngineConfig::default();
    let mut engine = Engine::clue(&fib, 512, cfg);
    let (report, _) = engine.run(&trace);
    let ctx = format!("seeds fib={SEED_LATENCY_FIB} trace={SEED_LATENCY_TRACE}");
    assert_eq!(report.latency.count(), report.completions, "{ctx}");
    assert!(
        report.latency.quantile(0.99) >= report.latency.quantile(0.5),
        "{ctx}"
    );
    assert!(report.latency.max() <= report.clocks, "{ctx}");
    // Mean queueing is reflected in mean latency: a packet's latency is
    // at least its service time.
    assert!(
        report.latency.mean() + 0.5 >= f64::from(cfg.service_clocks) / 2.0,
        "{ctx}"
    );
}

/// Withdraw-everything storm: the pipeline drains to an empty table and
/// the TCAM follows exactly.
#[test]
fn withdraw_storm_drains_to_empty() {
    let fib = FibGen::new(SEED_WITHDRAW_FIB).routes(2_000).generate();
    let mut pipeline = CluePipeline::new(&fib, 4, 128, fib.len() * 4);
    let routes: Vec<_> = fib.iter().collect();
    for r in &routes {
        pipeline.apply(Update::Withdraw { prefix: r.prefix });
    }
    assert_eq!(pipeline.tcam_entries(), 0, "seed fib={SEED_WITHDRAW_FIB}");
    assert!(pipeline.tcam_synced(), "seed fib={SEED_WITHDRAW_FIB}");
    assert_eq!(
        pipeline.fib().original_len(),
        0,
        "seed fib={SEED_WITHDRAW_FIB}"
    );
    assert_eq!(
        pipeline.fib().compressed_len(),
        0,
        "seed fib={SEED_WITHDRAW_FIB}"
    );
}

/// Rebuild-from-empty: announce a full table one route at a time; the
/// incremental compressed table must equal the one-shot compression.
#[test]
fn announce_storm_builds_the_compressed_table() {
    let fib = FibGen::new(SEED_ANNOUNCE_FIB).routes(2_000).generate();
    let mut cf = CompressedFib::new(&RouteTable::new());
    for r in fib.iter() {
        cf.apply(Update::Announce {
            prefix: r.prefix,
            next_hop: r.next_hop,
        });
    }
    assert_eq!(
        cf.compressed_table(),
        onrtc(&fib),
        "seed fib={SEED_ANNOUNCE_FIB}"
    );
}

/// A churn trace that interleaves all three update kinds heavily keeps
/// every invariant across thousands of steps (slow-path regression net
/// for the incremental engine).
#[test]
fn mixed_churn_marathon() {
    let fib = FibGen::new(SEED_CHURN_FIB).routes(5_000).generate();
    let updates = UpdateGen::new(SEED_CHURN_UPDATES)
        .mix(UpdateMix {
            reannounce: 1.0,
            announce_new: 1.0,
            withdraw: 1.0,
        })
        .churn_skew(1.2)
        .generate(&fib, 10_000);
    let mut cf = CompressedFib::new(&fib);
    let mut reference = fib.clone();
    for (i, &u) in updates.iter().enumerate() {
        cf.apply(u);
        reference.apply(u);
        if i % 2_500 == 2_499 {
            assert_eq!(
                cf.compressed_table(),
                onrtc(&reference),
                "step {i}, seeds fib={SEED_CHURN_FIB} updates={SEED_CHURN_UPDATES}"
            );
            assert!(
                cf.compressed_table().is_non_overlapping(),
                "step {i}, seeds fib={SEED_CHURN_FIB} updates={SEED_CHURN_UPDATES}"
            );
        }
    }
    assert_eq!(
        cf.original_len(),
        reference.len(),
        "seeds fib={SEED_CHURN_FIB} updates={SEED_CHURN_UPDATES}"
    );
}

/// Engine with many buckets per chip and the neutral mapping behaves
/// like the one-bucket-per-chip engine on the same traffic.
#[test]
fn bucket_granularity_does_not_change_results() {
    let fib = onrtc(&FibGen::new(SEED_BUCKETS_FIB).routes(4_000).generate());
    let trace = PacketGen::new(SEED_BUCKETS_TRACE).generate(&fib, 20_000);
    let reference = fib.to_trie();
    let cfg = EngineConfig::default();
    for engine in [
        &mut Engine::clue(&fib, 512, cfg),
        &mut Engine::clue_with_buckets(&fib, 32, 512, cfg),
    ] {
        let (report, outcomes) = engine.run(&trace);
        assert_eq!(
            report.arrivals,
            trace.len() as u64,
            "seeds fib={SEED_BUCKETS_FIB} trace={SEED_BUCKETS_TRACE}"
        );
        for (&addr, outcome) in trace.iter().zip(&outcomes) {
            if let clue::core::Outcome::Forwarded(nh) = *outcome {
                assert_eq!(
                    nh,
                    reference.lookup(addr).map(|(_, &v)| v),
                    "addr {addr:#010x}, seeds fib={SEED_BUCKETS_FIB} trace={SEED_BUCKETS_TRACE}"
                );
            }
        }
    }
}
