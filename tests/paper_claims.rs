//! The paper's headline claims, asserted at test scale.
//!
//! Each test pins one quantitative claim from the abstract/evaluation;
//! the full-scale numbers live in the bench harnesses and
//! EXPERIMENTS.md.

use clue::compress::{compress_with_stats, onrtc};
use clue::core::engine::{Engine, EngineConfig};
use clue::core::theory::{required_hit_rate, worst_case_speedup};
use clue::core::update_pipeline::{ClplPipeline, CluePipeline};
use clue::core::DredConfig;
use clue::fib::gen::FibGen;
use clue::partition::{
    EvenRangePartition, IdBitPartition, Indexer, PartitionStats, SubTreePartition,
};
use clue::traffic::{PacketGen, UpdateGen};

/// "CLUE only needs about 71% TCAM entries" — the ONRTC compression
/// ratio on RIB-shaped tables.
#[test]
fn claim_compression_to_about_71_percent() {
    let rib = FibGen::new(2101).routes(60_000).generate();
    let (_, stats) = compress_with_stats(&rib);
    assert!(
        (0.60..=0.80).contains(&stats.ratio()),
        "ratio {:.3} outside the paper's neighbourhood",
        stats.ratio()
    );
}

/// "TCAM partitions can be split exactly evenly without redundancy"
/// vs both baselines needing redundancy.
#[test]
fn claim_even_split_without_redundancy() {
    let rib = FibGen::new(2102).routes(30_000).generate();
    let compressed = onrtc(&rib);

    let clue = EvenRangePartition::split(&compressed, 8);
    let s = PartitionStats::measure(clue.buckets(), compressed.len());
    assert_eq!(s.redundancy, 0);
    assert!(s.max - s.min <= 1);

    // Covering-prefix replication shows up once subtrees are carved
    // below the legacy coverers (the paper's Figure 9 shows redundancy
    // growing with the partition count).
    let clpl = SubTreePartition::split(&rib, rib.len().div_ceil(64));
    assert!(
        clpl.total_redundancy() > 0,
        "sub-tree partition must replicate"
    );

    let slpl = IdBitPartition::split(&rib, 3, 16);
    let s2 = PartitionStats::measure(slpl.buckets(), rib.len());
    assert!(
        s2.max > s.max || s2.redundancy > 0,
        "ID-bit partition should be uneven or redundant"
    );
}

/// "CLUE needs … 4.29% update time" — TTF2+TTF3 of CLUE far below CLPL.
#[test]
fn claim_update_time_fraction() {
    let rib = FibGen::new(2103).routes(20_000).generate();
    let updates = UpdateGen::new(2104).generate(&rib, 2_000);
    let warm = PacketGen::new(2105).generate(&rib, 20_000);
    let mut clue = CluePipeline::new(&rib, 4, 1024, 65_536);
    let mut clpl = ClplPipeline::new(&rib, 4, 1024, 65_536);
    clue.warm(&warm);
    clpl.warm(&warm);
    let (mut a, mut b) = (0.0f64, 0.0f64);
    for &u in &updates {
        let sa = clue.apply(u);
        let sb = clpl.apply(u);
        a += sa.ttf2_ns + sa.ttf3_ns;
        b += sb.ttf2_ns + sb.ttf3_ns;
    }
    let fraction = a / b;
    assert!(
        fraction < 0.5,
        "CLUE's lookup-interrupting update cost is {:.1}% of CLPL's — expected well below 50%",
        fraction * 100.0
    );
}

/// "3/4 dynamic redundant prefixes for the same throughput when using
/// four TCAMs" — the exclude-home rule writes N−1 copies per fill.
#[test]
fn claim_three_quarters_redundancy() {
    let rib = onrtc(&FibGen::new(2106).routes(10_000).generate());
    let trace = PacketGen::new(2107).generate(&rib, 100_000);
    let parts = EvenRangePartition::split(&rib, 4);
    let (buckets, index) = parts.into_parts();

    let run = |exclude_home: bool| {
        let idx = index.clone();
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| idx.bucket_of(a),
            vec![0, 0, 0, 0],
            DredConfig::Clue {
                capacity: 100_000, // unbounded: count raw fill volume
                exclude_home,
            },
            EngineConfig::default(),
        );
        let (report, _) = engine.run(&trace);
        report
    };
    let with_rule = run(true);
    let without_rule = run(false);
    let ratio = with_rule.scheme.fills as f64 / without_rule.scheme.fills.max(1) as f64;
    assert!(
        (0.70..=0.80).contains(&ratio),
        "fill-volume ratio {ratio:.3}, expected ~3/4"
    );
    // …and the hit rate does not suffer for it.
    assert!(with_rule.scheme.hit_rate() >= without_rule.scheme.hit_rate() - 0.02);
}

/// "The frequent interactions between control plane and data plane
/// caused by redundant prefixes update can be avoided."
#[test]
fn claim_zero_control_plane_interactions() {
    let rib = onrtc(&FibGen::new(2108).routes(10_000).generate());
    let trace = PacketGen::new(2109).generate(&rib, 50_000);
    let parts = EvenRangePartition::split(&rib, 4);
    let (buckets, index) = parts.into_parts();

    let idx = index.clone();
    let mut clue = Engine::from_buckets(
        &buckets,
        move |a| idx.bucket_of(a),
        vec![0, 0, 0, 0],
        DredConfig::Clue {
            capacity: 512,
            exclude_home: true,
        },
        EngineConfig::default(),
    );
    let (ra, _) = clue.run(&trace);
    assert!(ra.scheme.fills > 0, "DRed fills must have happened");
    assert_eq!(ra.scheme.control_plane_interactions, 0);
    assert_eq!(ra.scheme.sram_accesses, 0);

    let idx = index.clone();
    let mut clpl = Engine::from_buckets(
        &buckets,
        move |a| idx.bucket_of(a),
        vec![0, 0, 0, 0],
        DredConfig::Clpl {
            capacity: 512,
            sram_trie: rib.to_trie(),
        },
        EngineConfig::default(),
    );
    let (rb, _) = clpl.run(&trace);
    assert!(rb.scheme.control_plane_interactions > 0);
    assert!(rb.scheme.sram_accesses > 0);
}

/// "t ≥ (N−1)h + 1 always holds true" (Section III-D / Figure 16).
#[test]
fn claim_speedup_bound_holds_at_several_dred_sizes() {
    let rib = onrtc(&FibGen::new(2110).routes(10_000).generate());
    let trace = PacketGen::new(2111).generate(&rib, 120_000);
    let parts = EvenRangePartition::split(&rib, 4);
    let (buckets, index) = parts.into_parts();
    let cfg = EngineConfig::default();
    for capacity in [64usize, 512, 4096] {
        let idx = index.clone();
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| idx.bucket_of(a),
            vec![0, 0, 0, 0],
            DredConfig::Clue {
                capacity,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&trace);
        let (t, h) = (r.speedup(cfg.service_clocks), r.scheme.hit_rate());
        // Small finite-horizon tolerance: the bound's premise is that
        // every chip is saturated, which the cold start briefly violates.
        assert!(
            t >= 0.96 * worst_case_speedup(4, h),
            "capacity {capacity}: t = {t:.3} under the bound {:.3}",
            worst_case_speedup(4, h)
        );
    }
    // Sanity on the bound itself.
    assert!((required_hit_rate(4) - 2.0 / 3.0).abs() < 1e-12);
}

/// Figure 17's direction: at equal DRed size CLUE's hit rate is at
/// least CLPL's.
#[test]
fn claim_hit_rate_at_equal_size() {
    let rib_raw = FibGen::new(2112).routes(10_000).generate();
    let rib = onrtc(&rib_raw);
    let trace = PacketGen::new(2113).generate(&rib, 150_000);
    let parts = EvenRangePartition::split(&rib, 4);
    let (buckets, index) = parts.into_parts();
    let cfg = EngineConfig::default();

    let idx = index.clone();
    let mut clue = Engine::from_buckets(
        &buckets,
        move |a| idx.bucket_of(a),
        vec![0, 0, 0, 0],
        DredConfig::Clue {
            capacity: 256,
            exclude_home: true,
        },
        cfg,
    );
    let (ra, _) = clue.run(&trace);

    let idx = index.clone();
    let mut clpl = Engine::from_buckets(
        &buckets,
        move |a| idx.bucket_of(a),
        vec![0, 0, 0, 0],
        DredConfig::Clpl {
            capacity: 256,
            sram_trie: rib_raw.to_trie(),
        },
        cfg,
    );
    let (rb, _) = clpl.run(&trace);
    assert!(
        ra.scheme.hit_rate() + 0.02 >= rb.scheme.hit_rate(),
        "CLUE hit {:.3} vs CLPL {:.3}",
        ra.scheme.hit_rate(),
        rb.scheme.hit_rate()
    );
}
