//! Property-based tests for the compression algorithms.
//!
//! The generators favour short prefixes over a small next-hop alphabet so
//! that overlap, merging, and carving all occur frequently.

use clue_compress::{leaf_push, onrtc, ortc, CompressedFib};
use clue_fib::{NextHop, Prefix, RouteTable, Update};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = RouteTable> {
    prop::collection::vec((any::<u32>(), 0u8..=10, 0u16..3), 0..40).prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect()
    })
}

fn lookup(t: &RouteTable, addr: u32) -> Option<NextHop> {
    t.to_trie().lookup(addr).map(|(_, &nh)| nh)
}

/// Probe addresses that cover every boundary a /10-grained table can
/// have, plus the extremes.
fn probes() -> impl Iterator<Item = u32> {
    (0u32..1024)
        .map(|i| i << 22)
        .chain([u32::MAX, 1, 0x8000_0001])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn onrtc_preserves_semantics(t in arb_table()) {
        let c = onrtc(&t);
        for addr in probes() {
            prop_assert_eq!(lookup(&c, addr), lookup(&t, addr), "addr {:#x}", addr);
        }
    }

    #[test]
    fn onrtc_output_is_non_overlapping(t in arb_table()) {
        prop_assert!(onrtc(&t).is_non_overlapping());
    }

    #[test]
    fn onrtc_is_idempotent(t in arb_table()) {
        let once = onrtc(&t);
        prop_assert_eq!(onrtc(&once), once);
    }

    #[test]
    fn leaf_push_preserves_semantics_and_disjointness(t in arb_table()) {
        let p = leaf_push(&t);
        prop_assert!(p.is_non_overlapping());
        for addr in probes() {
            prop_assert_eq!(lookup(&p, addr), lookup(&t, addr), "addr {:#x}", addr);
        }
    }

    #[test]
    fn onrtc_never_beaten_by_any_nonoverlap_rival(t in arb_table()) {
        // Minimality vs the only other full-overlap eliminator we have.
        prop_assert!(onrtc(&t).len() <= leaf_push(&t).len());
    }

    #[test]
    fn ortc_preserves_semantics(t in arb_table()) {
        let o = ortc(&t);
        for addr in probes() {
            prop_assert_eq!(o.lookup(addr), lookup(&t, addr), "addr {:#x}", addr);
        }
    }

    #[test]
    fn ortc_at_most_input_and_onrtc_size(t in arb_table()) {
        let o = ortc(&t);
        prop_assert!(o.len() <= t.len().max(1));
        prop_assert!(o.len() <= onrtc(&t).len().max(1));
    }
}

fn arb_updates() -> impl Strategy<Value = Vec<Update>> {
    prop::collection::vec(
        (any::<u32>(), 0u8..=10, 0u16..3, prop::bool::weighted(0.7)),
        1..60,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh, announce)| {
                let prefix = Prefix::new(bits, len);
                if announce {
                    Update::Announce {
                        prefix,
                        next_hop: NextHop(nh),
                    }
                } else {
                    Update::Withdraw { prefix }
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental engine must stay byte-identical to a from-scratch
    /// recompression after *every* update, and the diffs it emits must
    /// replay onto the previous table to produce the next one.
    #[test]
    fn incremental_matches_scratch(initial in arb_table(), updates in arb_updates()) {
        let mut cf = CompressedFib::new(&initial);
        let mut replay = cf.compressed_table();
        for u in updates {
            let diff = cf.apply(u);
            for d in &diff.deletes {
                prop_assert!(replay.remove(*d).is_some(), "diff deleted absent {d}");
            }
            for m in &diff.modifies {
                prop_assert!(replay.insert(m.prefix, m.next_hop).is_some());
            }
            for i in &diff.inserts {
                prop_assert!(replay.insert(i.prefix, i.next_hop).is_none());
            }
            let scratch = onrtc(&RouteTable::from_trie(cf.original()));
            prop_assert_eq!(&cf.compressed_table(), &scratch);
            prop_assert_eq!(&replay, &scratch);
        }
    }

    /// Updates that do not change the forwarding function produce empty
    /// diffs (no spurious TCAM traffic).
    #[test]
    fn noop_updates_produce_empty_diffs(t in arb_table()) {
        let mut cf = CompressedFib::new(&t);
        let routes: Vec<_> = t.iter().collect();
        for r in routes {
            let diff = cf.apply(Update::Announce {
                prefix: r.prefix,
                next_hop: r.next_hop,
            });
            prop_assert!(diff.is_empty(), "re-announce of {} changed table", r.prefix);
        }
    }
}
