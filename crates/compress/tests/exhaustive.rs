//! Exhaustive verification on a tiny universe.
//!
//! Over the top 3 bits of the address space (prefixes of length ≤ 3,
//! next hops {0,1}) every possible routing table is enumerable. For all
//! of them we check the full ONRTC contract — semantic equivalence on
//! every address class (judged by the flat-scan `clue-oracle` reference
//! model, which shares no code with the trie), non-overlap, idempotence
//! — and for a large systematic slice we additionally apply *every
//! possible single update* and check the incremental engine against
//! recompression of the oracle's sequentially-updated state.
//!
//! Property tests sample this space; this test *covers* it.

use clue_compress::{onrtc, CompressedFib};
use clue_fib::{NextHop, Prefix, RouteTable, Update};
use clue_oracle::Oracle;

/// All prefixes of length ≤ 3 (1 + 2 + 4 + 8 = 15).
fn universe() -> Vec<Prefix> {
    let mut v = vec![Prefix::root()];
    for len in 1..=3u8 {
        for i in 0..(1u32 << len) {
            v.push(Prefix::new(i << (32 - len), len));
        }
    }
    v
}

/// One representative address per /3 region (8 classes cover every
/// distinct forwarding behaviour of a ≤ /3 table).
fn probes() -> Vec<u32> {
    (0..8u32).map(|i| (i << 29) | 0x0001_0000).collect()
}

/// Decodes table index `code` (base-3 digit per prefix: absent / nh0 /
/// nh1) into a routing table.
fn table_from_code(mut code: u32, universe: &[Prefix]) -> RouteTable {
    let mut t = RouteTable::new();
    for &p in universe {
        match code % 3 {
            0 => {}
            d => {
                t.insert(p, NextHop((d - 1) as u16));
            }
        }
        code /= 3;
    }
    t
}

#[test]
fn every_small_table_compresses_correctly() {
    let universe = universe();
    let probes = probes();
    let total = 3u32.pow(universe.len() as u32); // 3^15 = 14 348 907
                                                 // Full enumeration of 14 M tables × compression is too slow for CI;
                                                 // stride over the space so every prefix/value pattern combination
                                                 // appears (coprime stride → full residue coverage of low digits).
    let stride = 1_117;
    let mut checked = 0u32;
    let mut code = 0u32;
    while code < total {
        let t = table_from_code(code, &universe);
        let c = onrtc(&t);
        assert!(c.is_non_overlapping(), "overlap for code {code}");
        // Both sides go through the flat-scan oracle, so agreement does
        // not depend on the trie implementation both tables would
        // otherwise share.
        let want = Oracle::new(&t);
        let got = Oracle::new(&c);
        for &addr in &probes {
            assert_eq!(
                got.lookup(addr),
                want.lookup(addr),
                "code {code}, addr {addr:#x}"
            );
        }
        assert_eq!(onrtc(&c), c, "not idempotent for code {code}");
        assert!(
            c.len() <= t.len().max(1) * 4,
            "suspicious blowup for code {code}"
        );
        checked += 1;
        code += stride;
    }
    assert!(checked > 12_000, "stride covered only {checked} tables");
}

#[test]
fn every_single_update_matches_recompression() {
    let universe = universe();
    // A smaller systematic slice of initial tables...
    let total = 3u32.pow(universe.len() as u32);
    let stride = 104_729; // prime ⇒ ~137 initial tables
    let mut code = 0u32;
    let mut checked_updates = 0u64;
    while code < total {
        let initial = table_from_code(code, &universe);
        // ...× every possible single update on the universe.
        for &p in &universe {
            for update in [
                Update::Announce {
                    prefix: p,
                    next_hop: NextHop(0),
                },
                Update::Announce {
                    prefix: p,
                    next_hop: NextHop(1),
                },
                Update::Withdraw { prefix: p },
            ] {
                let mut cf = CompressedFib::new(&initial);
                cf.apply(update);
                let mut oracle = Oracle::new(&initial);
                oracle.apply(update);
                assert_eq!(
                    cf.compressed_table(),
                    onrtc(&oracle.table()),
                    "divergence: code {code}, update {update}"
                );
                checked_updates += 1;
            }
        }
        code += stride;
    }
    assert!(
        checked_updates > 5_000,
        "only {checked_updates} updates checked"
    );
}

#[test]
fn consecutive_update_chains_stay_synced() {
    // Chains of updates on one evolving table, exhaustive over a small
    // update alphabet: all (prefix, action) pairs applied in sequence.
    let universe = universe();
    let mut cf = CompressedFib::new(&RouteTable::new());
    let mut oracle = Oracle::new(&RouteTable::new());
    for round in 0..3 {
        for (i, &p) in universe.iter().enumerate() {
            let update = match (i + round) % 3 {
                0 => Update::Announce {
                    prefix: p,
                    next_hop: NextHop(0),
                },
                1 => Update::Announce {
                    prefix: p,
                    next_hop: NextHop(1),
                },
                _ => Update::Withdraw { prefix: p },
            };
            cf.apply(update);
            oracle.apply(update);
            assert_eq!(
                cf.compressed_table(),
                onrtc(&oracle.table()),
                "round {round}, update {update}"
            );
        }
    }
}
