//! Incremental maintenance of an ONRTC-compressed table.
//!
//! [`CompressedFib`] keeps the original FIB trie and its compressed
//! (non-overlapping) form in sync. Applying a BGP update touches only the
//! affected region of the compressed trie and returns the exact
//! [`TableDiff`] the TCAM must apply — the quantity behind TTF1 (trie
//! computation time) and TTF2 (TCAM writes) in the paper.
//!
//! # How a single update is localized
//!
//! A change to route `p` only alters the forwarding function inside
//! `region(p)`. In the compressed table that region is covered either by
//! entries at-or-below `p`, or by a single entry at an *ancestor* of `p`
//! (when the surroundings of `p` were uniform). The rebuild root is
//! therefore `p`, widened to that ancestor entry if one exists. After
//! recomputing the minimal cover of the rebuild region, the region may
//! have *become* uniform and mergeable with its sibling — in which case
//! the rebuild root floats upward while the sibling region is a single
//! entry with the same next hop. The final diff is the set difference
//! between the old and new covers of the rebuild region.

use std::time::{Duration, Instant};

use clue_fib::{NextHop, Prefix, Route, RouteTable, Trie, Update};

use crate::cover::{locate, onrtc_trie, region_cover, Cover};

/// The set of entry-level changes one update induces on the compressed
/// table.
///
/// `modifies` are next-hop rewrites of an existing entry: on a TCAM they
/// are a single in-place action write with no entry movement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDiff {
    /// Entries to add.
    pub inserts: Vec<Route>,
    /// Prefixes of entries to remove.
    pub deletes: Vec<Prefix>,
    /// Entries whose action changes in place.
    pub modifies: Vec<Route>,
}

impl TableDiff {
    /// Whether the diff changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.modifies.is_empty()
    }

    /// Total number of entry-level operations.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.modifies.len()
    }
}

/// A FIB maintained simultaneously in original and ONRTC-compressed form.
///
/// # Examples
///
/// ```
/// use clue_compress::CompressedFib;
/// use clue_fib::{NextHop, RouteTable, Update};
///
/// let mut fib = RouteTable::new();
/// fib.insert("10.0.0.0/9".parse()?, NextHop(1));
/// let mut cf = CompressedFib::new(&fib);
///
/// // Announcing the sibling /9 with the same hop merges both into a /8.
/// let diff = cf.apply(Update::Announce {
///     prefix: "10.128.0.0/9".parse()?,
///     next_hop: NextHop(1),
/// });
/// assert_eq!(diff.inserts.len(), 1);
/// assert_eq!(diff.inserts[0].prefix.to_string(), "10.0.0.0/8");
/// assert_eq!(diff.deletes.len(), 1);
/// assert_eq!(cf.compressed_len(), 1);
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompressedFib {
    original: Trie<NextHop>,
    compressed: Trie<NextHop>,
    last_update_time: Duration,
}

impl CompressedFib {
    /// Builds both forms from an initial table.
    #[must_use]
    pub fn new(table: &RouteTable) -> Self {
        let original = table.to_trie();
        let compressed = onrtc_trie(&original).to_trie();
        CompressedFib {
            original,
            compressed,
            last_update_time: Duration::ZERO,
        }
    }

    /// The uncompressed FIB trie.
    #[must_use]
    pub fn original(&self) -> &Trie<NextHop> {
        &self.original
    }

    /// The compressed (non-overlapping) trie.
    #[must_use]
    pub fn compressed(&self) -> &Trie<NextHop> {
        &self.compressed
    }

    /// Number of routes in the original FIB.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original.len()
    }

    /// Number of entries in the compressed table.
    #[must_use]
    pub fn compressed_len(&self) -> usize {
        self.compressed.len()
    }

    /// The compressed table as a [`RouteTable`].
    #[must_use]
    pub fn compressed_table(&self) -> RouteTable {
        RouteTable::from_trie(&self.compressed)
    }

    /// Wall-clock time spent inside the most recent [`apply`] call —
    /// the paper's TTF1 for CLUE.
    ///
    /// [`apply`]: CompressedFib::apply
    #[must_use]
    pub fn last_update_time(&self) -> Duration {
        self.last_update_time
    }

    /// Applies one update and returns the compressed-table diff.
    ///
    /// No-op updates (announcing an identical route, withdrawing an
    /// absent one) return an empty diff.
    pub fn apply(&mut self, update: Update) -> TableDiff {
        let start = Instant::now();
        let diff = self.apply_inner(update);
        self.last_update_time = start.elapsed();
        diff
    }

    fn apply_inner(&mut self, update: Update) -> TableDiff {
        let p = update.prefix();
        // 1. Update the original trie; bail out on no-ops.
        match update {
            Update::Announce { prefix, next_hop } => {
                if self.original.insert(prefix, next_hop) == Some(next_hop) {
                    return TableDiff::default();
                }
            }
            Update::Withdraw { prefix } => {
                if self.original.remove(prefix).is_none() {
                    return TableDiff::default();
                }
            }
        }

        // 2. Rebuild root: widen to an ancestor entry covering `p`.
        let mut root = self.compressed_ancestor_entry(p).unwrap_or(p);

        // 3. Minimal cover of the rebuild region from the updated original.
        let (node, inherited) = locate(&self.original, root);
        let mut cover = region_cover(node, root, inherited);

        // 4. Float upward while the region became uniform and its sibling
        //    is a single same-hop entry (non-overlap guarantees the
        //    sibling entry is alone in its region).
        while let Cover::Uniform(Some(nh)) = cover {
            let Some(sib) = root.sibling() else { break };
            if self.compressed.get(sib) != Some(&nh) {
                break;
            }
            root = root.parent().expect("prefix with a sibling has a parent");
            cover = Cover::Uniform(Some(nh));
        }

        // 5. Diff old vs new cover of the rebuild region.
        let old: Vec<Route> = self
            .compressed
            .iter_subtree(root)
            .map(|(prefix, &nh)| Route::new(prefix, nh))
            .collect();
        let new = cover.into_routes(root);
        let diff = diff_covers(&old, &new);

        // 6. Apply the diff to the compressed trie.
        for &d in &diff.deletes {
            let removed = self.compressed.remove(d);
            debug_assert!(removed.is_some(), "delete of absent entry {d}");
        }
        for &m in &diff.modifies {
            self.compressed.insert(m.prefix, m.next_hop);
        }
        for &i in &diff.inserts {
            let prev = self.compressed.insert(i.prefix, i.next_hop);
            debug_assert!(prev.is_none(), "insert clobbered entry {}", i.prefix);
        }
        diff
    }

    /// Finds a compressed entry at a *strict* ancestor of `p`, if any.
    fn compressed_ancestor_entry(&self, p: Prefix) -> Option<Prefix> {
        // Non-overlap means at most one entry lies on the root→p path;
        // the trie LPM walk finds it.
        let node = self.compressed.lpm_node(p.bits())?;
        let found = node.prefix();
        (found.len() < p.len() && found.contains(p)).then_some(found)
    }
}

/// Computes insert/delete/modify sets between two sorted route lists.
fn diff_covers(old: &[Route], new: &[Route]) -> TableDiff {
    let mut diff = TableDiff::default();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        let (o, n) = (old[i], new[j]);
        match o.prefix.cmp(&n.prefix) {
            std::cmp::Ordering::Less => {
                diff.deletes.push(o.prefix);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff.inserts.push(n);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if o.next_hop != n.next_hop {
                    diff.modifies.push(n);
                }
                i += 1;
                j += 1;
            }
        }
    }
    diff.deletes.extend(old[i..].iter().map(|r| r.prefix));
    diff.inserts.extend_from_slice(&new[j..]);
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onrtc;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes.iter().map(|&(s, nh)| (p(s), NextHop(nh))).collect()
    }

    fn announce(s: &str, nh: u16) -> Update {
        Update::Announce {
            prefix: p(s),
            next_hop: NextHop(nh),
        }
    }

    fn withdraw(s: &str) -> Update {
        Update::Withdraw { prefix: p(s) }
    }

    /// The master invariant: after any sequence of updates the
    /// incremental compressed table equals a from-scratch recompression.
    fn assert_synced(cf: &CompressedFib) {
        let scratch = onrtc(&RouteTable::from_trie(cf.original()));
        assert_eq!(cf.compressed_table(), scratch);
    }

    #[test]
    fn announce_into_empty() {
        let mut cf = CompressedFib::new(&RouteTable::new());
        let diff = cf.apply(announce("10.0.0.0/8", 1));
        assert_eq!(diff.inserts, vec![Route::new(p("10.0.0.0/8"), NextHop(1))]);
        assert!(diff.deletes.is_empty());
        assert_synced(&cf);
    }

    #[test]
    fn duplicate_announce_is_noop() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(announce("10.0.0.0/8", 1));
        assert!(diff.is_empty());
        assert_synced(&cf);
    }

    #[test]
    fn withdraw_absent_is_noop() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(withdraw("11.0.0.0/8"));
        assert!(diff.is_empty());
        assert_synced(&cf);
    }

    #[test]
    fn next_hop_change_is_modify() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(announce("10.0.0.0/8", 2));
        assert!(diff.inserts.is_empty() && diff.deletes.is_empty());
        assert_eq!(diff.modifies, vec![Route::new(p("10.0.0.0/8"), NextHop(2))]);
        assert_synced(&cf);
    }

    #[test]
    fn sibling_merge_floats_upward() {
        // Three of four /10s present; announcing the fourth merges all
        // the way to the /8.
        let mut cf = CompressedFib::new(&table(&[
            ("10.0.0.0/10", 3),
            ("10.64.0.0/10", 3),
            ("10.128.0.0/10", 3),
        ]));
        assert_eq!(cf.compressed_len(), 2); // /9 + /10 after initial merge
        let diff = cf.apply(announce("10.192.0.0/10", 3));
        assert_eq!(diff.inserts, vec![Route::new(p("10.0.0.0/8"), NextHop(3))]);
        assert_eq!(diff.deletes.len(), 2);
        assert_eq!(cf.compressed_len(), 1);
        assert_synced(&cf);
    }

    #[test]
    fn announce_specific_under_entry_splits_it() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(announce("10.0.0.0/10", 2));
        assert!(!diff.is_empty());
        assert_synced(&cf);
        let trie = cf.compressed();
        assert_eq!(
            trie.lookup(0x0A00_0001).map(|(_, &nh)| nh),
            Some(NextHop(2))
        );
        assert_eq!(
            trie.lookup(0x0A80_0001).map(|(_, &nh)| nh),
            Some(NextHop(1))
        );
    }

    #[test]
    fn withdraw_specific_heals_covering_entry() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1), ("10.0.0.0/10", 2)]));
        let before = cf.compressed_len();
        assert!(before > 1);
        cf.apply(withdraw("10.0.0.0/10"));
        assert_eq!(cf.compressed_len(), 1);
        assert_eq!(cf.compressed_table(), table(&[("10.0.0.0/8", 1)]));
        assert_synced(&cf);
    }

    #[test]
    fn withdraw_last_route_empties_table() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(withdraw("10.0.0.0/8"));
        assert_eq!(diff.deletes, vec![p("10.0.0.0/8")]);
        assert_eq!(cf.compressed_len(), 0);
        assert_synced(&cf);
    }

    #[test]
    fn redundant_more_specific_announce_produces_empty_diff() {
        // Announcing a more-specific with the same hop as its cover does
        // not change the forwarding function.
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(announce("10.32.0.0/11", 1));
        assert!(diff.is_empty());
        assert_synced(&cf);
    }

    #[test]
    fn update_at_root_prefix() {
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1)]));
        let diff = cf.apply(announce("0.0.0.0/0", 2));
        assert!(!diff.is_empty());
        assert_synced(&cf);
        assert_eq!(
            cf.compressed().lookup(0xFFFF_FFFF).map(|(_, &nh)| nh),
            Some(NextHop(2))
        );
    }

    #[test]
    fn withdraw_under_ancestor_entry_rebuilds_ancestor_region() {
        // The /8 entry covers the withdrawn /10's region in the
        // compressed table; the rebuild must widen to the /8.
        let mut cf = CompressedFib::new(&table(&[("10.0.0.0/8", 1), ("10.0.0.0/10", 2)]));
        cf.apply(announce("10.0.0.0/10", 1)); // now uniform → single /8 entry
        assert_eq!(cf.compressed_len(), 1);
        assert_synced(&cf);
        // Change it again under the covering entry.
        cf.apply(announce("10.0.0.0/10", 9));
        assert_synced(&cf);
    }

    #[test]
    fn diff_covers_computes_set_difference() {
        let old = vec![
            Route::new(p("10.0.0.0/9"), NextHop(1)),
            Route::new(p("10.128.0.0/9"), NextHop(2)),
        ];
        let new = vec![
            Route::new(p("10.0.0.0/9"), NextHop(3)),
            Route::new(p("10.192.0.0/10"), NextHop(2)),
        ];
        let d = diff_covers(&old, &new);
        assert_eq!(d.deletes, vec![p("10.128.0.0/9")]);
        assert_eq!(d.inserts, vec![Route::new(p("10.192.0.0/10"), NextHop(2))]);
        assert_eq!(d.modifies, vec![Route::new(p("10.0.0.0/9"), NextHop(3))]);
    }

    #[test]
    fn update_time_is_recorded() {
        let mut cf = CompressedFib::new(&RouteTable::new());
        cf.apply(announce("10.0.0.0/8", 1));
        assert!(cf.last_update_time() > Duration::ZERO);
    }

    #[test]
    fn long_random_storm_stays_synced() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut cf = CompressedFib::new(&RouteTable::new());
        for _ in 0..500 {
            let len = rng.random_range(4..=16);
            let bits = rng.random_range(0..16u32) << 28;
            let prefix = Prefix::new(bits | rng.random_range(0..=0x0FFF_FFFF), len);
            let upd = if rng.random_bool(0.7) {
                Update::Announce {
                    prefix,
                    next_hop: NextHop(rng.random_range(0..4)),
                }
            } else {
                Update::Withdraw { prefix }
            };
            cf.apply(upd);
        }
        assert_synced(&cf);
    }
}
