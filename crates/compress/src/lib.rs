//! Routing-table compression for the CLUE reproduction.
//!
//! Three algorithms, one trade-off space:
//!
//! * [`onrtc`] — **O**ptimal **N**on-overlap **R**outing **T**able
//!   **C**onstruction (the compression stage of CLUE). Output is the
//!   smallest non-overlapping table with identical LPM semantics; it is
//!   what makes priority-encoder-free TCAMs, O(1) TCAM update, and
//!   zero-redundancy partitioning possible downstream.
//! * [`ortc`] — Draves et al.'s optimal *general* compression; smaller
//!   output, but overlapping, so all the TCAM pain returns. Ablation
//!   baseline.
//! * [`leaf_push`] — full prefix expansion; eliminates overlap like ONRTC
//!   but with no merging, so the table *grows*. The prior-art baseline
//!   the paper cites.
//!
//! [`CompressedFib`] maintains an ONRTC table incrementally under BGP
//! updates and reports the exact TCAM entry diff per update.
//!
//! # Examples
//!
//! ```
//! use clue_compress::{leaf_push, onrtc, ortc};
//! use clue_fib::gen::FibGen;
//!
//! let fib = FibGen::new(1).routes(2_000).generate();
//! let non_overlap = onrtc(&fib);
//! assert!(non_overlap.is_non_overlapping());
//! // ORTC ≤ ONRTC ≤ leaf-push, always.
//! assert!(ortc(&fib).len() <= non_overlap.len());
//! assert!(non_overlap.len() <= leaf_push(&fib).len());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cover;
mod incremental;
mod leaf_push;
mod ortc;

pub use cover::{locate, onrtc, onrtc_trie, range_cover, region_cover, region_cover_in, Cover};
pub use incremental::{CompressedFib, TableDiff};
pub use leaf_push::leaf_push;
pub use ortc::{ortc, Action, OrtcTable};

use clue_fib::RouteTable;

/// Summary of one compression run, as reported in Figure 8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Routes in the input table.
    pub original: usize,
    /// Entries in the compressed table.
    pub compressed: usize,
    /// Compression time in milliseconds.
    pub millis: f64,
}

impl CompressionStats {
    /// `compressed / original` (the paper reports ≈ 0.71 on real RIBs).
    ///
    /// Returns 1.0 for an empty input.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.original == 0 {
            1.0
        } else {
            self.compressed as f64 / self.original as f64
        }
    }
}

/// Runs [`onrtc`] and reports size/time statistics.
#[must_use]
pub fn compress_with_stats(table: &RouteTable) -> (RouteTable, CompressionStats) {
    let start = std::time::Instant::now();
    let out = onrtc(table);
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let stats = CompressionStats {
        original: table.len(),
        compressed: out.len(),
        millis,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::gen::FibGen;

    #[test]
    fn stats_ratio() {
        let s = CompressionStats {
            original: 100,
            compressed: 71,
            millis: 1.0,
        };
        assert!((s.ratio() - 0.71).abs() < 1e-9);
        let empty = CompressionStats {
            original: 0,
            compressed: 0,
            millis: 0.0,
        };
        assert_eq!(empty.ratio(), 1.0);
    }

    #[test]
    fn generator_calibration_hits_paper_ballpark() {
        // The paper reports ONRTC compressing real 2011 RIBs to ~71 % of
        // their original size; the synthetic generator is calibrated to
        // land in that neighbourhood.
        let fib = FibGen::new(42).routes(50_000).generate();
        let (_, stats) = compress_with_stats(&fib);
        assert!(
            (0.55..=0.85).contains(&stats.ratio()),
            "compression ratio {:.3} outside the calibrated band",
            stats.ratio()
        );
    }

    #[test]
    fn compressed_output_is_equivalent_on_samples() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let fib = FibGen::new(7).routes(5_000).generate();
        let out = onrtc(&fib);
        let orig = fib.to_trie();
        let comp = out.to_trie();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let addr: u32 = rng.random();
            assert_eq!(
                orig.lookup(addr).map(|(_, &nh)| nh),
                comp.lookup(addr).map(|(_, &nh)| nh),
                "divergence at {addr:#x}"
            );
        }
    }
}
