//! ORTC: Optimal Routing Table Construction (Draves et al., INFOCOM 1999).
//!
//! ORTC produces the smallest *general* (overlapping allowed) table with
//! the same forwarding behaviour. It compresses harder than ONRTC but its
//! output needs everything CLUE wants to avoid: length-ordered TCAM
//! layout, a priority encoder, and domino-effect updates. It is kept here
//! as the ablation baseline for that trade-off.
//!
//! Actions are `Option<NextHop>` where `None` is an explicit "miss"
//! entry. For inputs whose original table covers the whole address space
//! (e.g. a default route exists) no miss entries appear and this is the
//! textbook algorithm; otherwise miss entries are real null routes a
//! priority-encoder TCAM would need in order to preserve holes under a
//! covering route, and they are counted in [`OrtcTable::len`].

use clue_fib::{Bit, NextHop, NodeRef, Prefix, RouteTable, Trie};

/// A forwarding action in an ORTC table: forward, or explicit miss.
pub type Action = Option<NextHop>;

/// The output of [`ortc`]: a possibly overlapping table of
/// `(prefix, action)` entries resolved by longest-prefix match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrtcTable {
    entries: Vec<(Prefix, Action)>,
}

impl OrtcTable {
    /// All entries, including explicit-miss entries.
    #[must_use]
    pub fn entries(&self) -> &[(Prefix, Action)] {
        &self.entries
    }

    /// Total entry count (forwarding + miss entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of explicit-miss (null-route) entries.
    #[must_use]
    pub fn miss_entries(&self) -> usize {
        self.entries.iter().filter(|(_, a)| a.is_none()).count()
    }

    /// Longest-prefix-match lookup honouring explicit-miss entries.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<NextHop> {
        // Reference implementation (linear in table size) — benchmarks use
        // the TCAM model instead.
        let mut best: Option<(Prefix, Action)> = None;
        for &(p, a) in &self.entries {
            if p.contains_addr(addr) && best.is_none_or(|(bp, _)| p.len() > bp.len()) {
                best = Some((p, a));
            }
        }
        best.and_then(|(_, a)| a)
    }

    /// Converts to a trie of actions (used by tests and the TCAM loader).
    #[must_use]
    pub fn to_trie(&self) -> Trie<Action> {
        self.entries.iter().copied().collect()
    }
}

/// Meld operator from the paper: intersection if non-empty, else union.
/// Operands and result are sorted, deduplicated action sets.
fn meld(a: &[Action], b: &[Action]) -> Vec<Action> {
    let mut inter: Vec<Action> = a.iter().filter(|x| b.contains(x)).copied().collect();
    if !inter.is_empty() {
        return inter;
    }
    inter = a.to_vec();
    inter.extend_from_slice(b);
    inter.sort_unstable();
    inter.dedup();
    inter
}

/// The normalized meld tree built by passes 1–2.
struct MeldTree {
    set: Vec<Action>,
    kids: Option<Box<[MeldTree; 2]>>,
}

/// Passes 1–2: normalize (push inherited actions to leaves) and compute
/// candidate action sets bottom-up.
fn build(node: Option<NodeRef<'_, NextHop>>, inherited: Action) -> MeldTree {
    let Some(n) = node else {
        return MeldTree {
            set: vec![inherited],
            kids: None,
        };
    };
    let effective = n.value().copied().or(inherited);
    if n.is_leaf() {
        return MeldTree {
            set: vec![effective],
            kids: None,
        };
    }
    let l = build(n.child(Bit::Zero), effective);
    let r = build(n.child(Bit::One), effective);
    MeldTree {
        set: meld(&l.set, &r.set),
        kids: Some(Box::new([l, r])),
    }
}

/// Pass 3: walk top-down choosing actions; emit an entry wherever the
/// inherited choice is not in the node's candidate set.
fn assign(t: &MeldTree, prefix: Prefix, choice: Option<Action>, out: &mut Vec<(Prefix, Action)>) {
    let effective = match choice {
        Some(c) if t.set.contains(&c) => c,
        _ => {
            let pick = t.set[0];
            out.push((prefix, pick));
            pick
        }
    };
    if let Some(kids) = &t.kids {
        let lp = prefix.child(Bit::Zero).expect("meld tree respects depth");
        let rp = prefix.child(Bit::One).expect("meld tree respects depth");
        assign(&kids[0], lp, Some(effective), out);
        assign(&kids[1], rp, Some(effective), out);
    }
}

/// Compresses `table` into the optimal general (overlapping) table.
///
/// # Examples
///
/// ```
/// use clue_compress::ortc;
/// use clue_fib::{NextHop, RouteTable};
///
/// let mut fib = RouteTable::new();
/// fib.insert("0.0.0.0/0".parse()?, NextHop(1));
/// fib.insert("0.0.0.0/1".parse()?, NextHop(1));
/// fib.insert("128.0.0.0/1".parse()?, NextHop(2));
/// let t = ortc(&fib);
/// assert_eq!(t.len(), 2); // {0/0→1, 128/1→2}
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[must_use]
pub fn ortc(table: &RouteTable) -> OrtcTable {
    let trie = table.to_trie();
    if trie.is_empty() {
        return OrtcTable {
            entries: Vec::new(),
        };
    }
    let meld_tree = build(Some(trie.root()), None);
    let mut entries = Vec::new();
    assign(&meld_tree, Prefix::root(), None, &mut entries);
    // A root-level explicit miss is meaningless (absence of entries
    // already means miss) — drop it.
    entries.retain(|&(p, a)| !(p.is_root() && a.is_none()));
    OrtcTable { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onrtc;

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes
            .iter()
            .map(|&(p, nh)| (p.parse().unwrap(), NextHop(nh)))
            .collect()
    }

    fn ref_lookup(t: &RouteTable, addr: u32) -> Option<NextHop> {
        t.to_trie().lookup(addr).map(|(_, &nh)| nh)
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(ortc(&RouteTable::new()).is_empty());
    }

    #[test]
    fn paper_style_merge() {
        // Classic ORTC win: two siblings, one matching the default — the
        // sibling that agrees with the parent choice vanishes.
        let t = table(&[("0.0.0.0/0", 1), ("0.0.0.0/1", 1), ("128.0.0.0/1", 2)]);
        let o = ortc(&t);
        assert_eq!(o.len(), 2);
        assert_eq!(o.lookup(0x0000_0001), Some(NextHop(1)));
        assert_eq!(o.lookup(0x8000_0001), Some(NextHop(2)));
    }

    #[test]
    fn ortc_never_larger_than_input_or_onrtc() {
        let t = table(&[
            ("10.0.0.0/8", 1),
            ("10.0.0.0/9", 2),
            ("10.128.0.0/9", 2),
            ("11.0.0.0/8", 2),
            ("12.0.0.0/8", 1),
        ]);
        let o = ortc(&t);
        assert!(o.len() <= t.len());
        assert!(o.len() <= onrtc(&t).len());
    }

    #[test]
    fn miss_entries_preserve_holes() {
        // 10/8→1 with an *uncovered* hole cannot be expressed by dropping
        // entries: ORTC must either avoid covering the hole or emit an
        // explicit miss. Either way lookups agree with the original.
        let t = table(&[("10.0.0.0/8", 1), ("10.0.0.0/16", 1)]);
        let o = ortc(&t);
        assert_eq!(o.lookup(0x0A00_0001), Some(NextHop(1)));
        assert_eq!(o.lookup(0x0B00_0001), None);
    }

    #[test]
    fn meld_prefers_intersection() {
        let a = vec![Some(NextHop(1)), Some(NextHop(2))];
        let b = vec![Some(NextHop(2)), Some(NextHop(3))];
        assert_eq!(meld(&a, &b), vec![Some(NextHop(2))]);
        let c = vec![Some(NextHop(4))];
        let mut u = meld(&b, &c);
        u.sort_unstable();
        assert_eq!(
            u,
            vec![Some(NextHop(2)), Some(NextHop(3)), Some(NextHop(4))]
        );
    }

    #[test]
    fn equivalence_on_dense_small_universe() {
        // Exhaustively check the top 8 bits of the address space against
        // the reference trie for a table of short prefixes.
        let t = table(&[
            ("0.0.0.0/0", 7),
            ("0.0.0.0/2", 1),
            ("64.0.0.0/3", 2),
            ("64.0.0.0/5", 1),
            ("128.0.0.0/1", 3),
            ("192.0.0.0/4", 7),
        ]);
        let o = ortc(&t);
        for hi in 0u32..=255 {
            let addr = hi << 24;
            assert_eq!(o.lookup(addr), ref_lookup(&t, addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn full_coverage_input_has_no_miss_entries() {
        let t = table(&[("0.0.0.0/0", 1), ("10.0.0.0/8", 2), ("10.64.0.0/10", 3)]);
        let o = ortc(&t);
        assert_eq!(o.miss_entries(), 0);
    }
}
