//! ONRTC: Optimal Non-overlap Routing Table Construction.
//!
//! ONRTC (Yang et al., ICC 2012 — the compression stage of CLUE) rewrites
//! a FIB into the smallest **non-overlapping** table with identical
//! longest-prefix-match semantics, including misses: address space not
//! covered by the original table stays uncovered.
//!
//! The construction is a single recursion over the route trie. For each
//! region it computes a [`Cover`]: either the region resolves uniformly
//! (to one next hop, or to "miss"), in which case the decision of whether
//! to emit a prefix is deferred to the parent so sibling regions can
//! merge; or the region is mixed, in which case each uniform sub-region
//! is materialized as one output prefix. Emitted prefixes are therefore
//! exactly the *maximal uniform regions* of the forwarding function —
//! no equivalent non-overlapping table can use fewer entries, because a
//! prefix can never span two sibling regions that resolve differently.

use clue_fib::{Bit, NextHop, NodeRef, Prefix, Route, RouteTable, Trie};

/// How a region of address space resolves under a forwarding function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cover {
    /// Every address in the region resolves to the same action
    /// (`None` = miss).
    Uniform(Option<NextHop>),
    /// The region is mixed; the routes are its minimal non-overlapping
    /// cover, in ascending address order.
    Mixed(Vec<Route>),
}

impl Cover {
    /// Materializes the cover of `region` as explicit routes.
    #[must_use]
    pub fn into_routes(self, region: Prefix) -> Vec<Route> {
        match self {
            Cover::Uniform(None) => Vec::new(),
            Cover::Uniform(Some(nh)) => vec![Route::new(region, nh)],
            Cover::Mixed(v) => v,
        }
    }

    /// Number of routes this cover materializes to.
    #[must_use]
    pub fn route_count(&self) -> usize {
        match self {
            Cover::Uniform(None) => 0,
            Cover::Uniform(Some(_)) => 1,
            Cover::Mixed(v) => v.len(),
        }
    }
}

/// Computes the minimal non-overlapping cover of the region `prefix`,
/// where `node` is the trie node for `prefix` (or `None` if the trie has
/// no routes inside the region) and `inherited` is the longest-prefix
/// match that ancestors of `prefix` contribute.
#[must_use]
pub fn region_cover(
    node: Option<NodeRef<'_, NextHop>>,
    prefix: Prefix,
    inherited: Option<NextHop>,
) -> Cover {
    let Some(n) = node else {
        return Cover::Uniform(inherited);
    };
    debug_assert_eq!(n.prefix(), prefix);
    let effective = n.value().copied().or(inherited);
    if n.is_leaf() {
        return Cover::Uniform(effective);
    }
    let lp = prefix.child(Bit::Zero).expect("non-leaf node is not a /32");
    let rp = prefix.child(Bit::One).expect("non-leaf node is not a /32");
    let l = region_cover(n.child(Bit::Zero), lp, effective);
    let r = region_cover(n.child(Bit::One), rp, effective);
    match (l, r) {
        (Cover::Uniform(a), Cover::Uniform(b)) if a == b => Cover::Uniform(a),
        (l, r) => {
            let mut v = l.into_routes(lp);
            v.extend(r.into_routes(rp));
            Cover::Mixed(v)
        }
    }
}

/// Computes the cover of an arbitrary region of a trie, walking down from
/// the root to find the region's node and the inherited match on the way.
#[must_use]
pub fn region_cover_in(trie: &Trie<NextHop>, region: Prefix) -> Cover {
    let (node, inherited) = locate(trie, region);
    region_cover(node, region, inherited)
}

/// Finds the node for `region` (if any) and the longest-prefix match
/// contributed by strict ancestors of `region`.
#[must_use]
pub fn locate(
    trie: &Trie<NextHop>,
    region: Prefix,
) -> (Option<NodeRef<'_, NextHop>>, Option<NextHop>) {
    let mut cur = trie.root();
    let mut inherited = None;
    for depth in 0..region.len() {
        if let Some(v) = cur.value() {
            inherited = Some(*v);
        }
        let bit = Prefix::addr_bit(region.bits(), depth);
        match cur.child(bit) {
            Some(next) => cur = next,
            None => return (None, inherited),
        }
    }
    (Some(cur), inherited)
}

/// Flattens the LPM function of `trie` over the inclusive address range
/// `[lo, hi]` into intervals: `(start, label)` pairs, in ascending
/// order, where the label (the matched route, or `None` for a miss)
/// holds from `start` until the next interval's start (or `hi`). The
/// first interval starts exactly at `lo`, and adjacent intervals with
/// equal labels are merged, so this is the per-subtree recompression
/// primitive: a tile maintainer can rebuild just its own range after an
/// update without touching the rest of the table.
///
/// Cost is proportional to the trie nodes overlapping the range (plus
/// the walk down to it), not to the whole table.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn range_cover(trie: &Trie<NextHop>, lo: u32, hi: u32) -> Vec<(u32, Option<Route>)> {
    assert!(lo <= hi, "range_cover: lo {lo:#x} > hi {hi:#x}");
    let mut out = Vec::new();
    emit_range(Some(trie.root()), Prefix::root(), None, lo, hi, &mut out);
    out
}

fn emit_range(
    node: Option<NodeRef<'_, NextHop>>,
    region: Prefix,
    inherited: Option<Route>,
    lo: u32,
    hi: u32,
    out: &mut Vec<(u32, Option<Route>)>,
) {
    if region.low() > hi || region.high() < lo {
        return;
    }
    let Some(n) = node else {
        push_interval(out, region.low().max(lo), inherited);
        return;
    };
    debug_assert_eq!(n.prefix(), region);
    let effective = n.value().map(|&nh| Route::new(region, nh)).or(inherited);
    if n.is_leaf() {
        push_interval(out, region.low().max(lo), effective);
        return;
    }
    let lp = region.child(Bit::Zero).expect("non-leaf node is not a /32");
    let rp = region.child(Bit::One).expect("non-leaf node is not a /32");
    emit_range(n.child(Bit::Zero), lp, effective, lo, hi, out);
    emit_range(n.child(Bit::One), rp, effective, lo, hi, out);
}

fn push_interval(out: &mut Vec<(u32, Option<Route>)>, start: u32, label: Option<Route>) {
    if out.last().map(|(_, l)| l) == Some(&label) {
        return;
    }
    out.push((start, label));
}

/// Compresses `table` into the optimal non-overlapping equivalent.
///
/// This is the first stage of CLUE: the output has identical LPM
/// semantics (including misses) but no route contains another, which is
/// what enables priority-encoder-free TCAMs, O(1) TCAM updates, and
/// zero-redundancy even partitioning downstream.
///
/// # Examples
///
/// ```
/// use clue_compress::onrtc;
/// use clue_fib::{NextHop, RouteTable};
///
/// let mut fib = RouteTable::new();
/// fib.insert("10.0.0.0/7".parse()?, NextHop(1));
/// fib.insert("10.0.0.0/8".parse()?, NextHop(1)); // redundant more-specific
/// let compressed = onrtc(&fib);
/// assert_eq!(compressed.len(), 1);
/// assert!(compressed.is_non_overlapping());
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[must_use]
pub fn onrtc(table: &RouteTable) -> RouteTable {
    let trie = table.to_trie();
    onrtc_trie(&trie)
}

/// [`onrtc`] operating directly on a trie.
#[must_use]
pub fn onrtc_trie(trie: &Trie<NextHop>) -> RouteTable {
    let cover = region_cover(Some(trie.root()), Prefix::root(), None);
    cover.into_routes(Prefix::root()).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes
            .iter()
            .map(|&(p, nh)| (p.parse().unwrap(), NextHop(nh)))
            .collect()
    }

    fn lookup(t: &RouteTable, addr: u32) -> Option<NextHop> {
        t.to_trie().lookup(addr).map(|(_, &nh)| nh)
    }

    #[test]
    fn empty_table_compresses_to_empty() {
        assert!(onrtc(&RouteTable::new()).is_empty());
    }

    #[test]
    fn single_route_is_unchanged() {
        let t = table(&[("10.0.0.0/8", 1)]);
        assert_eq!(onrtc(&t), t);
    }

    #[test]
    fn redundant_more_specific_is_removed() {
        let t = table(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 1)]);
        let c = onrtc(&t);
        assert_eq!(c, table(&[("10.0.0.0/8", 1)]));
    }

    #[test]
    fn sibling_leaves_merge() {
        let t = table(&[("10.0.0.0/9", 5), ("10.128.0.0/9", 5)]);
        let c = onrtc(&t);
        assert_eq!(c, table(&[("10.0.0.0/8", 5)]));
    }

    #[test]
    fn merge_cascades_upward() {
        // Four /10s with the same next hop collapse to one /8.
        let t = table(&[
            ("10.0.0.0/10", 3),
            ("10.64.0.0/10", 3),
            ("10.128.0.0/10", 3),
            ("10.192.0.0/10", 3),
        ]);
        assert_eq!(onrtc(&t), table(&[("10.0.0.0/8", 3)]));
    }

    #[test]
    fn overlap_with_different_next_hop_splits() {
        // 1*→p with child 100*→q (paper's Figure 2 shape, scaled to /8s):
        // the covering route must be carved around the more-specific.
        let t = table(&[("128.0.0.0/1", 1), ("128.0.0.0/3", 2)]);
        let c = onrtc(&t);
        assert!(c.is_non_overlapping());
        // Semantics preserved everywhere.
        for addr in [
            0x8000_0000u32,
            0xA000_0000,
            0xC000_0000,
            0xFF00_0000,
            0x7000_0000,
        ] {
            assert_eq!(lookup(&c, addr), lookup(&t, addr), "addr {addr:#x}");
        }
        // The carved cover: 128.0.0.0/3→2, 160.0.0.0/3→1, 192.0.0.0/2→1.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn miss_regions_stay_uncovered() {
        let t = table(&[("10.0.0.0/8", 1)]);
        let c = onrtc(&t);
        assert_eq!(lookup(&c, 0x0B00_0000), None);
        assert_eq!(lookup(&c, 0x0A00_0001), Some(NextHop(1)));
    }

    #[test]
    fn nested_same_hop_under_different_hop() {
        // a/8→1, b=a.0/16→2, c=a.0.0/24→1: c differs from its covering
        // route b, so c must survive as its own region.
        let t = table(&[("10.0.0.0/8", 1), ("10.0.0.0/16", 2), ("10.0.0.0/24", 1)]);
        let c = onrtc(&t);
        assert!(c.is_non_overlapping());
        assert_eq!(lookup(&c, 0x0A00_0001), Some(NextHop(1)));
        assert_eq!(lookup(&c, 0x0A00_0101), Some(NextHop(2)));
        assert_eq!(lookup(&c, 0x0A01_0000), Some(NextHop(1)));
    }

    #[test]
    fn default_route_covers_all() {
        let t = table(&[("0.0.0.0/0", 9)]);
        let c = onrtc(&t);
        assert_eq!(c, t);
        assert_eq!(lookup(&c, 0xDEAD_BEEF), Some(NextHop(9)));
    }

    #[test]
    fn cover_route_count_matches_materialization() {
        let u = Cover::Uniform(Some(NextHop(1)));
        assert_eq!(u.route_count(), 1);
        assert_eq!(u.into_routes("10.0.0.0/8".parse().unwrap()).len(), 1);
        let n = Cover::Uniform(None);
        assert_eq!(n.route_count(), 0);
    }

    #[test]
    fn region_cover_in_matches_full_rebuild() {
        let t = table(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("11.0.0.0/8", 1)]);
        let trie = t.to_trie();
        let region: Prefix = "10.0.0.0/8".parse().unwrap();
        let local = region_cover_in(&trie, region).into_routes(region);
        let full = onrtc(&t);
        let expected: Vec<Route> = full.iter().filter(|r| region.contains(r.prefix)).collect();
        assert_eq!(local, expected);
    }

    #[test]
    fn range_cover_matches_pointwise_lookup() {
        let t = table(&[
            ("0.0.0.0/0", 9),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.3/32", 3),
            ("11.0.0.0/8", 1),
        ]);
        let trie = t.to_trie();
        for (lo, hi) in [
            (0u32, u32::MAX),
            (0x0A00_0000, 0x0BFF_FFFF),
            (0x0A01_0203, 0x0A01_0203),
            (0x0A01_0000, 0x0A01_0400),
            (0x0900_0000, 0x0A00_00FF),
        ] {
            let intervals = range_cover(&trie, lo, hi);
            assert_eq!(intervals[0].0, lo, "first interval starts at lo");
            // Labels change exactly at interval starts (no equal-adjacent).
            for w in intervals.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert_ne!(w[0].1, w[1].1);
            }
            let label_at = |addr: u32| {
                let i = intervals.partition_point(|&(s, _)| s <= addr) - 1;
                intervals[i].1
            };
            let mut probes = vec![lo, hi];
            for &(s, _) in &intervals {
                probes.extend([s, s.saturating_sub(1).max(lo), s.saturating_add(1).min(hi)]);
            }
            for addr in probes {
                let want = trie.lookup(addr).map(|(p, &nh)| Route::new(p, nh));
                assert_eq!(
                    label_at(addr),
                    want,
                    "addr {addr:#010x} in [{lo:#x},{hi:#x}]"
                );
            }
        }
    }

    #[test]
    fn range_cover_on_empty_trie_is_one_miss_interval() {
        let trie = RouteTable::new().to_trie();
        assert_eq!(range_cover(&trie, 5, 100), vec![(5u32, None)]);
    }

    #[test]
    fn locate_reports_inherited_match() {
        let t = table(&[("10.0.0.0/8", 7)]);
        let trie = t.to_trie();
        let (node, inherited) = locate(&trie, "10.1.0.0/16".parse().unwrap());
        assert!(node.is_none());
        assert_eq!(inherited, Some(NextHop(7)));
        let (node, inherited) = locate(&trie, "11.0.0.0/16".parse().unwrap());
        assert!(node.is_none());
        assert_eq!(inherited, None);
    }

    #[test]
    fn output_is_sorted_by_address() {
        let t = table(&[("192.0.0.0/8", 1), ("10.0.0.0/8", 2), ("128.0.0.0/8", 3)]);
        let c = onrtc(&t);
        let prefixes: Vec<Prefix> = c.iter().map(|r| r.prefix).collect();
        let mut sorted = prefixes.clone();
        sorted.sort();
        assert_eq!(prefixes, sorted);
    }
}
