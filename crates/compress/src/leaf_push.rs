//! Controlled leaf-pushing (prefix expansion).
//!
//! Leaf-pushing (Srinivasan & Varghese, TOCS 1999) is the prior technique
//! the paper cites as the only one that fully eliminates prefix overlap —
//! at the cost of *expanding* the table: every covering route is pushed
//! down to the disjoint leaf regions it actually owns, with no merging on
//! the way back up. ONRTC dominates it (same non-overlap property,
//! provably minimal size); this module exists as that baseline.

use clue_fib::{Bit, NextHop, NodeRef, Prefix, Route, RouteTable};

/// Fully expands `table` into disjoint leaf prefixes.
///
/// The output has identical LPM semantics and is non-overlapping, but is
/// at least as large as [`crate::onrtc`]'s output and usually much larger
/// than the input.
///
/// # Examples
///
/// ```
/// use clue_compress::{leaf_push, onrtc};
/// use clue_fib::{NextHop, RouteTable};
///
/// let mut fib = RouteTable::new();
/// fib.insert("0.0.0.0/1".parse()?, NextHop(1));
/// fib.insert("0.0.0.0/3".parse()?, NextHop(2));
/// let pushed = leaf_push(&fib);
/// assert!(pushed.is_non_overlapping());
/// assert!(pushed.len() >= onrtc(&fib).len());
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[must_use]
pub fn leaf_push(table: &RouteTable) -> RouteTable {
    let trie = table.to_trie();
    let mut out = Vec::new();
    push(Some(trie.root()), Prefix::root(), None, &mut out);
    out.into_iter().collect()
}

fn push(
    node: Option<NodeRef<'_, NextHop>>,
    prefix: Prefix,
    inherited: Option<NextHop>,
    out: &mut Vec<Route>,
) {
    let Some(n) = node else {
        if let Some(nh) = inherited {
            out.push(Route::new(prefix, nh));
        }
        return;
    };
    let effective = n.value().copied().or(inherited);
    if n.is_leaf() {
        if let Some(nh) = effective {
            out.push(Route::new(prefix, nh));
        }
        return;
    }
    let lp = prefix.child(Bit::Zero).expect("non-leaf node is not a /32");
    let rp = prefix.child(Bit::One).expect("non-leaf node is not a /32");
    push(n.child(Bit::Zero), lp, effective, out);
    push(n.child(Bit::One), rp, effective, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onrtc;

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes
            .iter()
            .map(|&(p, nh)| (p.parse().unwrap(), NextHop(nh)))
            .collect()
    }

    fn lookup(t: &RouteTable, addr: u32) -> Option<NextHop> {
        t.to_trie().lookup(addr).map(|(_, &nh)| nh)
    }

    #[test]
    fn disjoint_table_passes_through() {
        let t = table(&[("10.0.0.0/8", 1), ("11.0.0.0/8", 2)]);
        assert_eq!(leaf_push(&t), t);
    }

    #[test]
    fn covering_route_is_pushed_around_specifics() {
        let t = table(&[("128.0.0.0/1", 1), ("128.0.0.0/3", 2)]);
        let p = leaf_push(&t);
        assert!(p.is_non_overlapping());
        assert_eq!(lookup(&p, 0x8100_0000), Some(NextHop(2)));
        assert_eq!(lookup(&p, 0xA100_0000), Some(NextHop(1)));
        assert_eq!(lookup(&p, 0x0100_0000), None);
    }

    #[test]
    fn expansion_exceeds_onrtc() {
        // Sibling /9s with the same hop: leaf-push keeps both (no
        // merging), ONRTC collapses them.
        let t = table(&[("10.0.0.0/9", 5), ("10.128.0.0/9", 5)]);
        assert_eq!(leaf_push(&t).len(), 2);
        assert_eq!(onrtc(&t).len(), 1);
    }

    #[test]
    fn empty_table() {
        assert!(leaf_push(&RouteTable::new()).is_empty());
    }

    #[test]
    fn semantics_preserved_on_nested_chain() {
        let t = table(&[
            ("0.0.0.0/0", 1),
            ("128.0.0.0/1", 2),
            ("192.0.0.0/2", 3),
            ("224.0.0.0/3", 4),
        ]);
        let p = leaf_push(&t);
        assert!(p.is_non_overlapping());
        for addr in [
            0x0000_0001u32,
            0x8000_0000,
            0xC000_0000,
            0xE000_0000,
            0xFFFF_FFFF,
        ] {
            assert_eq!(lookup(&p, addr), lookup(&t, addr), "addr {addr:#x}");
        }
    }
}
