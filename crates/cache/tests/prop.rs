//! Property tests: LRU laws and RRC-ME correctness/minimality.

use clue_cache::{rrc_me, LruPrefixCache};
use clue_fib::{NextHop, Prefix, Route, Trie};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The prefix cache never exceeds capacity and a hit always returns
    /// the LPM over its current contents.
    #[test]
    fn prefix_cache_respects_capacity_and_lpm(
        capacity in 1usize..8,
        ops in prop::collection::vec((any::<u32>(), 0u8..=8, 0u16..4), 1..60),
        probes in prop::collection::vec(any::<u32>(), 8),
    ) {
        let mut cache = LruPrefixCache::new(capacity);
        for &(bits, len, nh) in &ops {
            cache.insert(Route::new(Prefix::new(bits, len), NextHop(nh)));
            prop_assert!(cache.len() <= capacity);
        }
        for &addr in &probes {
            let contents: Vec<Route> = cache.iter().collect();
            let want = contents
                .iter()
                .filter(|r| r.prefix.contains_addr(addr))
                .max_by_key(|r| r.prefix.len())
                .map(|r| r.next_hop);
            prop_assert_eq!(cache.lookup(addr), want);
        }
    }

    /// Hits + misses always equals the number of lookups; insertions −
    /// evictions − removals equals the population.
    #[test]
    fn cache_stats_balance(
        ops in prop::collection::vec((any::<u32>(), 0u8..=8, any::<bool>()), 1..80),
    ) {
        let mut cache = LruPrefixCache::new(4);
        let mut lookups = 0u64;
        for &(bits, len, is_lookup) in &ops {
            if is_lookup {
                cache.lookup(bits);
                lookups += 1;
            } else {
                cache.insert(Route::new(Prefix::new(bits, len), NextHop(0)));
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        // Population can never exceed insertions minus evictions
        // (refreshing insertions add no population).
        prop_assert!(cache.len() as u64 <= s.insertions - s.evictions);
        prop_assert!(cache.len() <= 4);
        prop_assert_eq!(cache.iter().count(), cache.len());
    }

    /// RRC-ME output covers the address, stays inside the match, resolves
    /// uniformly across its region, and is minimal.
    #[test]
    fn rrc_me_invariants(
        routes in prop::collection::vec((any::<u32>(), 0u8..=10, 0u16..3), 1..30),
        addr in any::<u32>(),
    ) {
        let trie: Trie<NextHop> = routes
            .iter()
            .map(|&(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect();
        let lpm = trie.lookup(addr).map(|(p, &nh)| (p, nh));
        let me = rrc_me(&trie, addr);
        prop_assert_eq!(me.is_some(), lpm.is_some());
        let (Some(me), Some((lpm_prefix, lpm_nh))) = (me, lpm) else { return Ok(()); };

        // Covers the address, carries the LPM's next hop, sits within it.
        prop_assert!(me.route.prefix.contains_addr(addr));
        prop_assert_eq!(me.route.next_hop, lpm_nh);
        prop_assert!(lpm_prefix.contains(me.route.prefix));

        // Uniform: no stored route sits strictly inside the region.
        for &(bits, len, _) in &routes {
            let p = Prefix::new(bits, len);
            if trie.contains_prefix(p) && me.route.prefix.contains(p) {
                prop_assert_eq!(p, lpm_prefix, "route {} inside ME region", p);
            }
        }

        // Minimal: one level up, the region either escapes the LPM or
        // contains a conflicting route.
        if me.route.prefix != lpm_prefix {
            let parent = me.route.prefix.parent().unwrap();
            let parent_clean = routes.iter().all(|&(bits, len, _)| {
                let p = Prefix::new(bits, len);
                !(trie.contains_prefix(p) && parent.contains(p) && p != parent)
            });
            prop_assert!(
                !parent_clean || !lpm_prefix.contains(parent) || parent == lpm_prefix,
                "parent region {} was also cacheable",
                parent
            );
        }
    }
}
