//! Edge-case coverage for the cache crate: LRU eviction order,
//! degenerate capacities, policy behavior at capacity 1, and RRC-ME
//! consistency across route withdrawals (the case where a cached
//! minimal expansion would silently go stale if the owner did not
//! invalidate).

use clue_cache::{rrc_me, Eviction, Lru, LruPrefixCache, PolicyPrefixCache};
use clue_fib::{NextHop, Prefix, Route, Trie, Update};

fn route(s: &str, nh: u16) -> Route {
    Route::new(s.parse().unwrap(), NextHop(nh))
}

// ---------------------------------------------------------------- Lru

#[test]
fn lru_eviction_follows_access_order_exactly() {
    let mut lru: Lru<u32, u32> = Lru::new(3);
    for k in [1, 2, 3] {
        assert!(lru.insert(k, k * 10).is_none());
    }
    // Recency now (front→back): 3, 2, 1. Touch 1, then 2.
    assert_eq!(lru.get(&1), Some(&10));
    assert_eq!(lru.get(&2), Some(&20));
    // Victim order must now be 3, then 1, then 2.
    assert_eq!(lru.lru_key(), Some(&3));
    assert_eq!(lru.insert(4, 40), Some((3, 30)));
    assert_eq!(lru.insert(5, 50), Some((1, 10)));
    assert_eq!(lru.insert(6, 60), Some((2, 20)));
    assert_eq!(lru.len(), 3);
}

#[test]
fn lru_peek_does_not_refresh_recency() {
    let mut lru: Lru<u32, u32> = Lru::new(2);
    lru.insert(1, 10);
    lru.insert(2, 20);
    assert_eq!(lru.peek(&1), Some(&10));
    // 1 is still the LRU victim despite the peek.
    assert_eq!(lru.insert(3, 30), Some((1, 10)));
}

#[test]
fn lru_remove_then_reinsert_reuses_capacity() {
    let mut lru: Lru<u32, u32> = Lru::new(2);
    lru.insert(1, 10);
    lru.insert(2, 20);
    assert_eq!(lru.remove(&1), Some(10));
    assert_eq!(lru.len(), 1);
    assert!(lru.insert(3, 30).is_none(), "freed slot must absorb 3");
    assert_eq!(lru.insert(4, 40), Some((2, 20)));
}

#[test]
fn lru_capacity_one_cycles_every_insert() {
    let mut lru: Lru<u32, u32> = Lru::new(1);
    assert!(lru.insert(1, 10).is_none());
    for k in 2..10u32 {
        assert_eq!(
            lru.insert(k, k),
            Some((k - 1, if k == 2 { 10 } else { k - 1 }))
        );
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.lru_key(), Some(&k));
    }
}

// ------------------------------------------------- degenerate capacity

#[test]
#[should_panic(expected = "positive")]
fn lru_rejects_capacity_zero() {
    let _ = Lru::<u32, u32>::new(0);
}

#[test]
#[should_panic(expected = "positive")]
fn lru_prefix_cache_rejects_capacity_zero() {
    let _ = LruPrefixCache::new(0);
}

#[test]
#[should_panic(expected = "positive")]
fn policy_cache_rejects_capacity_zero() {
    let _ = PolicyPrefixCache::new(0, Eviction::Fifo);
}

#[test]
fn prefix_cache_capacity_one_keeps_lpm_correct_while_cycling() {
    let mut c = LruPrefixCache::new(1);
    assert!(c.insert(route("10.0.0.0/8", 1)).is_none());
    assert_eq!(c.lookup(0x0A00_0001), Some(NextHop(1)));
    // Inserting a second route evicts the first; the old prefix must
    // stop matching (its length-histogram slot is released).
    let evicted = c.insert(route("11.0.0.0/8", 2)).expect("full cache evicts");
    assert_eq!(evicted, route("10.0.0.0/8", 1));
    assert_eq!(c.lookup(0x0A00_0001), None);
    assert_eq!(c.lookup(0x0B00_0001), Some(NextHop(2)));
    assert_eq!(c.len(), 1);
    assert_eq!(c.stats().evictions, 1);
}

#[test]
fn policy_caches_at_capacity_one_agree_on_the_victim() {
    for policy in [
        Eviction::Lru,
        Eviction::Fifo,
        Eviction::Lfu,
        Eviction::Random { seed: 3 },
    ] {
        let mut c = PolicyPrefixCache::new(1, policy);
        c.insert(route("10.0.0.0/8", 1));
        // With one slot there is only one possible victim.
        let evicted = c.insert(route("11.0.0.0/8", 2)).expect("must evict");
        assert_eq!(evicted.to_string(), "10.0.0.0/8", "{policy:?}");
        assert_eq!(c.len(), 1, "{policy:?}");
        assert_eq!(c.lookup(0x0B00_0001), Some(NextHop(2)), "{policy:?}");
    }
}

// ----------------------------------------------------------- RRC-ME

/// Applies a withdraw to a trie the way a control plane would.
fn withdraw(trie: &mut Trie<NextHop>, prefix: &str) {
    let p: Prefix = prefix.parse().unwrap();
    trie.remove(p);
}

#[test]
fn rrc_me_expansion_widens_after_conflicting_withdraw() {
    // p = 128.0.0.0/1 with q = 160.0.0.0/3 inside it: the expansion for
    // 128.0.0.1 must dodge q (yielding 128.0.0.0/3).
    let mut trie: Trie<NextHop> = [
        ("128.0.0.0/1".parse::<Prefix>().unwrap(), NextHop(1)),
        ("160.0.0.0/3".parse::<Prefix>().unwrap(), NextHop(2)),
    ]
    .into_iter()
    .collect();
    let before = rrc_me(&trie, 0x8000_0001).unwrap();
    assert_eq!(before.route.prefix.to_string(), "128.0.0.0/3");

    // Withdraw q: the conflict disappears, so the minimal expansion for
    // the same address is now p itself — the stale /3 answer would
    // under-cover the region a fresh computation can claim.
    withdraw(&mut trie, "160.0.0.0/3");
    let after = rrc_me(&trie, 0x8000_0001).unwrap();
    assert_eq!(after.route.prefix.to_string(), "128.0.0.0/1");
    assert_eq!(after.route.next_hop, NextHop(1));
}

#[test]
fn rrc_me_result_goes_stale_on_withdraw_of_the_matched_route() {
    let mut trie: Trie<NextHop> = [("10.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(1))]
        .into_iter()
        .collect();
    let me = rrc_me(&trie, 0x0A00_0001).unwrap();
    assert_eq!(me.route.next_hop, NextHop(1));
    withdraw(&mut trie, "10.0.0.0/8");
    assert!(
        rrc_me(&trie, 0x0A00_0001).is_none(),
        "after the withdraw there is nothing to cache"
    );
}

#[test]
fn cache_invalidation_keeps_rrc_me_entries_consistent_after_withdraw() {
    // The CLPL discipline: cache minimal expansions, and on a table
    // change conservatively invalidate every cached prefix overlapping
    // the updated one. After that, re-filled entries must agree with
    // fresh RRC-ME computations — no stale next hops survive.
    let mut trie: Trie<NextHop> = [
        ("0.0.0.0/0".parse::<Prefix>().unwrap(), NextHop(9)),
        ("128.0.0.0/2".parse::<Prefix>().unwrap(), NextHop(1)),
        ("144.0.0.0/4".parse::<Prefix>().unwrap(), NextHop(2)),
    ]
    .into_iter()
    .collect();
    let mut cache = LruPrefixCache::new(16);
    let addrs = [0x8000_0001u32, 0x9000_0001, 0xC000_0001, 0x4000_0001];
    for &a in &addrs {
        let me = rrc_me(&trie, a).expect("default route always matches");
        cache.insert(me.route);
        assert_eq!(cache.lookup(a), Some(me.route.next_hop));
    }

    // Withdraw 144.0.0.0/4 and invalidate overlapping cache state.
    let withdrawn: Prefix = "144.0.0.0/4".parse().unwrap();
    withdraw(&mut trie, "144.0.0.0/4");
    let removed = cache.invalidate_overlapping(withdrawn);
    assert!(removed >= 1, "the expansion covering 0x90... must go");

    // Every address now resolves (via cache + refill) exactly as a
    // fresh RRC-ME against the updated trie says.
    for &a in &addrs {
        let expect = rrc_me(&trie, a).expect("still matched by the default");
        let got = match cache.lookup(a) {
            Some(nh) => nh,
            None => {
                cache.insert(expect.route);
                expect.route.next_hop
            }
        };
        assert_eq!(got, expect.route.next_hop, "addr {a:#010x}");
    }

    // And no cached entry contradicts the trie's LPM over its region.
    for r in cache.iter().collect::<Vec<_>>() {
        let lo = r.prefix.low();
        let hi = r.prefix.high();
        for probe in [lo, hi, lo + (hi - lo) / 2] {
            assert_eq!(
                trie.lookup(probe).map(|(_, &nh)| nh),
                Some(r.next_hop),
                "cached region {} disagrees at {probe:#010x}",
                r.prefix
            );
        }
    }
}

#[test]
fn invalidate_overlapping_removes_both_directions_of_overlap() {
    let mut cache = LruPrefixCache::new(8);
    cache.insert(route("10.0.0.0/8", 1)); // contains the update
    cache.insert(route("10.1.0.0/16", 2)); // contained by the update
    cache.insert(route("11.0.0.0/8", 3)); // disjoint
    let removed = cache.invalidate_overlapping("10.0.0.0/12".parse().unwrap());
    assert_eq!(removed, 2);
    assert!(!cache.contains("10.0.0.0/8".parse().unwrap()));
    assert!(!cache.contains("10.1.0.0/16".parse().unwrap()));
    assert!(cache.contains("11.0.0.0/8".parse().unwrap()));
}

#[test]
fn update_enum_withdraw_matches_trie_removal_semantics() {
    // Belt-and-braces: the Update type used across the stack and the
    // raw trie removal agree on what a withdraw means for caching.
    let p: Prefix = "10.0.0.0/8".parse().unwrap();
    let u = Update::Withdraw { prefix: p };
    assert_eq!(u.prefix(), p);
    assert!(!u.is_announce());
}
