//! Replacement-policy laboratory for prefix caches.
//!
//! The paper leans on prior work ([18–20]) that analyzed routing-cache
//! replacement algorithms; CLPL and CLUE both settle on LRU. This
//! module provides a policy-parameterized prefix cache so that choice
//! can be re-measured (see the `ablation_replacement` bench): LRU,
//! FIFO, LFU, and seeded-random eviction over the same LPM lookup
//! machinery.
//!
//! Eviction is O(capacity) here — this is measurement apparatus, not
//! the hot-path cache ([`LruPrefixCache`](crate::LruPrefixCache) is the
//! O(1) production implementation).

use std::collections::HashMap;

use clue_fib::{mask, NextHop, Prefix, Route};

use crate::prefix_cache::CacheStats;

/// Which entry to evict when the cache is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Least recently used (touched longest ago).
    Lru,
    /// First in, first out (oldest insertion).
    Fifo,
    /// Least frequently used (fewest hits; ties broken by age).
    Lfu,
    /// Uniformly random victim (seeded, deterministic).
    Random {
        /// RNG seed for the victim choice.
        seed: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    next_hop: NextHop,
    inserted: u64,
    touched: u64,
    hits: u64,
}

/// A prefix cache with a configurable replacement policy.
///
/// # Examples
///
/// ```
/// use clue_cache::{Eviction, PolicyPrefixCache};
/// use clue_fib::{NextHop, Route};
///
/// let mut c = PolicyPrefixCache::new(2, Eviction::Fifo);
/// c.insert(Route::new("10.0.0.0/8".parse()?, NextHop(1)));
/// c.insert(Route::new("11.0.0.0/8".parse()?, NextHop(2)));
/// c.insert(Route::new("12.0.0.0/8".parse()?, NextHop(3))); // evicts 10/8
/// assert_eq!(c.lookup(0x0A00_0001), None);
/// assert_eq!(c.lookup(0x0B00_0001), Some(NextHop(2)));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolicyPrefixCache {
    policy: Eviction,
    entries: HashMap<Prefix, Meta>,
    len_histogram: [u32; 33],
    capacity: usize,
    clock: u64,
    rng_state: u64,
    stats: CacheStats,
}

impl PolicyPrefixCache {
    /// Creates a cache with the given capacity and policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, policy: Eviction) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let rng_state = match policy {
            Eviction::Random { seed } => seed | 1,
            _ => 1,
        };
        PolicyPrefixCache {
            policy,
            entries: HashMap::with_capacity(capacity),
            len_histogram: [0; 33],
            capacity,
            clock: 0,
            rng_state,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64* — deterministic, no external dependency.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// LPM lookup; hits update recency/frequency per the policy.
    pub fn lookup(&mut self, addr: u32) -> Option<NextHop> {
        self.clock += 1;
        for len in (0..=32u8).rev() {
            if self.len_histogram[len as usize] == 0 {
                continue;
            }
            let p = Prefix::new(addr & mask(len), len);
            if let Some(meta) = self.entries.get_mut(&p) {
                meta.touched = self.clock;
                meta.hits += 1;
                self.stats.hits += 1;
                return Some(meta.next_hop);
            }
        }
        self.stats.misses += 1;
        None
    }

    fn pick_victim(&mut self) -> Prefix {
        debug_assert!(!self.entries.is_empty());
        match self.policy {
            Eviction::Lru => {
                *self
                    .entries
                    .iter()
                    .min_by_key(|(_, m)| m.touched)
                    .expect("non-empty")
                    .0
            }
            Eviction::Fifo => {
                *self
                    .entries
                    .iter()
                    .min_by_key(|(_, m)| m.inserted)
                    .expect("non-empty")
                    .0
            }
            Eviction::Lfu => {
                *self
                    .entries
                    .iter()
                    .min_by_key(|(_, m)| (m.hits, m.inserted))
                    .expect("non-empty")
                    .0
            }
            Eviction::Random { .. } => {
                // Sort the candidates so the seeded choice is stable
                // regardless of HashMap iteration order.
                let mut keys: Vec<Prefix> = self.entries.keys().copied().collect();
                keys.sort();
                let idx = (self.next_random() % keys.len() as u64) as usize;
                keys[idx]
            }
        }
    }

    /// Inserts (or refreshes) a prefix; returns the evicted prefix when
    /// the cache was full.
    pub fn insert(&mut self, route: Route) -> Option<Prefix> {
        self.clock += 1;
        self.stats.insertions += 1;
        if let Some(meta) = self.entries.get_mut(&route.prefix) {
            meta.next_hop = route.next_hop;
            meta.touched = self.clock;
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            let victim = self.pick_victim();
            self.entries.remove(&victim);
            self.len_histogram[victim.len() as usize] -= 1;
            self.stats.evictions += 1;
            Some(victim)
        } else {
            None
        };
        self.entries.insert(
            route.prefix,
            Meta {
                next_hop: route.next_hop,
                inserted: self.clock,
                touched: self.clock,
                hits: 0,
            },
        );
        self.len_histogram[route.prefix.len() as usize] += 1;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    fn fill_three(policy: Eviction) -> PolicyPrefixCache {
        let mut c = PolicyPrefixCache::new(3, policy);
        c.insert(route("10.0.0.0/8", 1));
        c.insert(route("11.0.0.0/8", 2));
        c.insert(route("12.0.0.0/8", 3));
        c
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = fill_three(Eviction::Lru);
        c.lookup(0x0A00_0001); // touch 10/8
        c.lookup(0x0B00_0001); // touch 11/8
        let evicted = c.insert(route("13.0.0.0/8", 4)).unwrap();
        assert_eq!(evicted.to_string(), "12.0.0.0/8");
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = fill_three(Eviction::Fifo);
        c.lookup(0x0A00_0001); // touching 10/8 must not save it
        let evicted = c.insert(route("13.0.0.0/8", 4)).unwrap();
        assert_eq!(evicted.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn lfu_keeps_the_popular() {
        let mut c = fill_three(Eviction::Lfu);
        for _ in 0..5 {
            c.lookup(0x0A00_0001); // 10/8 very hot
        }
        c.lookup(0x0B00_0001); // 11/8 lukewarm; 12/8 cold
        let evicted = c.insert(route("13.0.0.0/8", 4)).unwrap();
        assert_eq!(evicted.to_string(), "12.0.0.0/8");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = fill_three(Eviction::Random { seed });
            c.insert(route("13.0.0.0/8", 4)).unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn lpm_and_stats_work_under_any_policy() {
        for policy in [
            Eviction::Lru,
            Eviction::Fifo,
            Eviction::Lfu,
            Eviction::Random { seed: 1 },
        ] {
            let mut c = PolicyPrefixCache::new(4, policy);
            c.insert(route("10.0.0.0/8", 1));
            c.insert(route("10.1.0.0/16", 2));
            assert_eq!(c.lookup(0x0A01_0001), Some(NextHop(2)), "{policy:?}");
            assert_eq!(c.lookup(0x0A02_0001), Some(NextHop(1)), "{policy:?}");
            assert_eq!(c.lookup(0x0B00_0001), None, "{policy:?}");
            let s = c.stats();
            assert_eq!((s.hits, s.misses), (2, 1), "{policy:?}");
        }
    }

    #[test]
    fn refresh_does_not_evict() {
        let mut c = fill_three(Eviction::Lru);
        assert!(c.insert(route("10.0.0.0/8", 9)).is_none());
        assert_eq!(c.len(), 3);
        assert_eq!(c.lookup(0x0A00_0001), Some(NextHop(9)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = PolicyPrefixCache::new(0, Eviction::Lru);
    }
}
