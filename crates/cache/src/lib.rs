//! Prefix-caching substrate for CLUE's Dynamic Redundancy.
//!
//! * [`LruPrefixCache`] — LRU prefix cache with LPM lookup: the software
//!   view of one DRed partition / logical cache.
//! * [`rrc_me`] — minimal-expansion computation over an overlapping
//!   trie: the control-plane work CLPL performs on every cache fill,
//!   with its SRAM accesses counted. CLUE never calls this — ONRTC makes
//!   every TCAM match directly cacheable.
//! * [`IpCache`] — destination-address cache baseline (prefix caching
//!   beats it; kept to re-verify the cited claim).
//!
//! # Examples
//!
//! ```
//! use clue_cache::{rrc_me, LruPrefixCache};
//! use clue_fib::{NextHop, Trie};
//!
//! let mut trie = Trie::new();
//! trie.insert("128.0.0.0/1".parse()?, NextHop(1));
//! trie.insert("160.0.0.0/3".parse()?, NextHop(2));
//!
//! // CLPL's fill path: compute the cacheable region in the control plane…
//! let me = rrc_me(&trie, 0x8000_0001).unwrap();
//! assert!(me.sram_accesses > 0);
//!
//! // …then install it in the cache.
//! let mut dred = LruPrefixCache::new(1024);
//! dred.insert(me.route);
//! assert_eq!(dred.lookup(0x8000_0001), Some(NextHop(1)));
//! # Ok::<(), clue_fib::ParsePrefixError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod ip_cache;
mod lru;
mod policies;
mod prefix_cache;
mod rrc_me;

pub use ip_cache::IpCache;
pub use lru::{Lru, LruIter};
pub use policies::{Eviction, PolicyPrefixCache};
pub use prefix_cache::{CacheStats, LruPrefixCache};
pub use rrc_me::{rrc_me, MinimalExpansion};
