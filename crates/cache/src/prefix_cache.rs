//! The prefix cache backing DRed / logical caches.
//!
//! Stores (non-overlapping) prefixes with LRU replacement and answers
//! address lookups by longest-prefix match over the cached set — i.e.
//! exactly what a TCAM partition used as dynamic redundancy does, with
//! the cache-management view the control software keeps.

use clue_fib::{mask, NextHop, Prefix, Route};

use crate::lru::Lru;

/// Hit/miss counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that matched a cached prefix.
    pub hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by LRU replacement.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU prefix cache with LPM lookup.
///
/// # Examples
///
/// ```
/// use clue_cache::LruPrefixCache;
/// use clue_fib::{NextHop, Route};
///
/// let mut cache = LruPrefixCache::new(2);
/// cache.insert(Route::new("10.0.0.0/8".parse()?, NextHop(1)));
/// assert_eq!(cache.lookup(0x0A01_0203), Some(NextHop(1)));
/// assert_eq!(cache.lookup(0x0B00_0000), None);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LruPrefixCache {
    lru: Lru<Prefix, NextHop>,
    /// Cached-prefix count per length, for the LPM walk.
    len_histogram: [u32; 33],
    stats: CacheStats,
}

impl LruPrefixCache {
    /// Creates a cache holding at most `capacity` prefixes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruPrefixCache {
            lru: Lru::new(capacity),
            len_histogram: [0; 33],
            stats: CacheStats::default(),
        }
    }

    /// Number of cached prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// LPM lookup; a hit refreshes the entry's recency.
    pub fn lookup(&mut self, addr: u32) -> Option<NextHop> {
        for len in (0..=32u8).rev() {
            if self.len_histogram[len as usize] == 0 {
                continue;
            }
            let p = Prefix::new(addr & mask(len), len);
            if let Some(&nh) = self.lru.get(&p) {
                self.stats.hits += 1;
                return Some(nh);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Whether `prefix` is cached (no recency or stats effect).
    #[must_use]
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.lru.contains(&prefix)
    }

    /// Inserts (or refreshes) a prefix; returns the evicted route, if
    /// the cache was full.
    pub fn insert(&mut self, route: Route) -> Option<Route> {
        self.stats.insertions += 1;
        if !self.lru.contains(&route.prefix) {
            self.len_histogram[route.prefix.len() as usize] += 1;
        }
        let evicted = self.lru.insert(route.prefix, route.next_hop);
        if let Some((p, nh)) = evicted {
            self.stats.evictions += 1;
            self.len_histogram[p.len() as usize] -= 1;
            return Some(Route::new(p, nh));
        }
        None
    }

    /// Removes a prefix; returns its next hop.
    pub fn remove(&mut self, prefix: Prefix) -> Option<NextHop> {
        let nh = self.lru.remove(&prefix)?;
        self.len_histogram[prefix.len() as usize] -= 1;
        Some(nh)
    }

    /// Removes every cached prefix that overlaps `prefix` (used for
    /// conservative invalidation when the routing table changes).
    ///
    /// Returns the number of removed entries.
    pub fn invalidate_overlapping(&mut self, prefix: Prefix) -> usize {
        let victims: Vec<Prefix> = self
            .lru
            .iter()
            .map(|(&p, _)| p)
            .filter(|p| p.overlaps(prefix))
            .collect();
        for &v in &victims {
            self.remove(v);
        }
        victims.len()
    }

    /// Cached routes from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = Route> + '_ {
        self.lru.iter().map(|(&p, &nh)| Route::new(p, nh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    #[test]
    fn lpm_over_cached_prefixes() {
        let mut c = LruPrefixCache::new(4);
        c.insert(route("10.0.0.0/8", 1));
        c.insert(route("10.1.0.0/16", 2));
        assert_eq!(c.lookup(0x0A01_0001), Some(NextHop(2)));
        assert_eq!(c.lookup(0x0A02_0001), Some(NextHop(1)));
        assert_eq!(c.lookup(0x0B00_0001), None);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_follows_lookup_recency() {
        let mut c = LruPrefixCache::new(2);
        c.insert(route("10.0.0.0/8", 1));
        c.insert(route("11.0.0.0/8", 2));
        c.lookup(0x0A00_0001); // touch 10/8 → 11/8 is LRU
        let evicted = c.insert(route("12.0.0.0/8", 3)).unwrap();
        assert_eq!(evicted, route("11.0.0.0/8", 2));
        assert!(c.contains("10.0.0.0/8".parse().unwrap()));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn remove_updates_len_histogram() {
        let mut c = LruPrefixCache::new(2);
        c.insert(route("10.0.0.0/8", 1));
        assert_eq!(c.remove("10.0.0.0/8".parse().unwrap()), Some(NextHop(1)));
        // After removal the /8 probe must not scan a stale histogram.
        assert_eq!(c.lookup(0x0A00_0001), None);
        assert_eq!(c.remove("10.0.0.0/8".parse().unwrap()), None);
    }

    #[test]
    fn invalidate_overlapping_removes_both_directions() {
        let mut c = LruPrefixCache::new(8);
        c.insert(route("10.0.0.0/8", 1));
        c.insert(route("10.1.0.0/16", 2));
        c.insert(route("11.0.0.0/8", 3));
        // Invalidate around 10.0.0.0/12: hits the covering /8 and the
        // covered /16, leaves 11/8 alone.
        let n = c.invalidate_overlapping("10.0.0.0/12".parse().unwrap());
        assert_eq!(n, 2);
        assert_eq!(c.len(), 1);
        assert!(c.contains("11.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn refresh_does_not_double_count_histogram() {
        let mut c = LruPrefixCache::new(2);
        c.insert(route("10.0.0.0/8", 1));
        c.insert(route("10.0.0.0/8", 2)); // refresh with new hop
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(0x0A00_0001), Some(NextHop(2)));
        c.remove("10.0.0.0/8".parse().unwrap());
        assert_eq!(c.lookup(0x0A00_0001), None);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 0,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
