//! A generic O(1) LRU list used by both cache flavours.
//!
//! Implemented as a slab of doubly-linked nodes plus a key → slot map;
//! no unsafe code, no external crates. Freed slots keep their key but
//! hold `None` until reused.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map.
#[derive(Debug, Clone)]
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates an empty LRU holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "lru capacity must be positive");
        Lru {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the LRU is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Reads a value and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx].value.as_ref()
    }

    /// Reads a value without touching recency.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].value.as_ref())
    }

    /// Whether `key` is stored (does not touch recency).
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts (or refreshes) an entry; returns the evicted LRU entry if
    /// the cache was full.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = Some(value);
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
            let node = &mut self.slab[lru];
            let v = node.value.take().expect("live node holds a value");
            Some((node.key.clone(), v))
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value: Some(value),
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx].value.take()
    }

    /// The least-recently-used key, if any.
    #[must_use]
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.slab[self.tail].key)
    }

    /// Iterates `(key, value)` from most to least recently used.
    pub fn iter(&self) -> LruIter<'_, K, V> {
        LruIter {
            lru: self,
            cursor: self.head,
        }
    }
}

/// Iterator over an [`Lru`] from MRU to LRU; created by [`Lru::iter`].
pub struct LruIter<'a, K, V> {
    lru: &'a Lru<K, V>,
    cursor: usize,
}

impl<'a, K, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.lru.slab[self.cursor];
        self.cursor = node.next;
        Some((&node.key, node.value.as_ref().expect("linked node is live")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_basbasics() {
        let mut lru: Lru<u32, &str> = Lru::new(2);
        assert!(lru.is_empty());
        assert_eq!(lru.insert(1, "a"), None);
        assert_eq!(lru.insert(2, "b"), None);
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.get(&1); // 2 is now LRU
        assert_eq!(lru.insert(3, 30), Some((2, 20)));
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), None);
        assert_eq!(lru.peek(&1), Some(&11));
        // 2 is LRU now despite being inserted later.
        assert_eq!(lru.lru_key(), Some(&2));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut lru: Lru<u32, u32> = Lru::new(1);
        lru.insert(1, 10);
        assert_eq!(lru.remove(&1), Some(10));
        assert_eq!(lru.remove(&1), None);
        assert_eq!(lru.insert(2, 20), None); // no eviction needed
    }

    #[test]
    fn iter_runs_mru_to_lru() {
        let mut lru: Lru<u32, ()> = Lru::new(3);
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        lru.get(&1);
        let order: Vec<u32> = lru.iter().map(|(&k, ())| k).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut lru: Lru<u32, ()> = Lru::new(2);
        lru.insert(1, ());
        lru.insert(2, ());
        let _ = lru.peek(&1);
        assert_eq!(lru.lru_key(), Some(&1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: Lru<u32, u32> = Lru::new(0);
    }

    #[test]
    fn single_slot_cache_cycles() {
        let mut lru: Lru<u32, u32> = Lru::new(1);
        for i in 0..10 {
            let evicted = lru.insert(i, i);
            if i > 0 {
                assert_eq!(evicted, Some((i - 1, i - 1)));
            }
            assert_eq!(lru.len(), 1);
        }
    }
}
