//! RRC-ME: minimal-expansion prefix computation (Akhbarizadeh &
//! Nourani, Hot Interconnects 2004).
//!
//! With an *overlapping* table, the LPM result for an address cannot be
//! cached directly: a more-specific route with a different next hop may
//! live inside it (the paper's Figure 2 — `p = 1*` cannot be cached
//! because of child `q`). RRC-ME extends the matched prefix along the
//! address's bits to the shortest **route-free** region and caches that
//! instead. Computing it walks the trie in SRAM — the control-plane
//! cost CLPL pays on every DRed fill and that CLUE eliminates entirely
//! (after ONRTC the matched prefix itself is always cacheable).

use clue_fib::{NextHop, Prefix, Route, Trie};

/// Result of a minimal-expansion computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalExpansion {
    /// The cacheable route: shortest extension of the LPM along the
    /// looked-up address whose region resolves uniformly.
    pub route: Route,
    /// Trie nodes visited — the SRAM accesses this computation costs.
    pub sram_accesses: u32,
}

/// Computes the minimal-expansion cacheable prefix for `addr`.
///
/// Returns `None` when the table has no match for `addr` (nothing to
/// cache).
///
/// # Examples
///
/// ```
/// use clue_cache::rrc_me;
/// use clue_fib::{NextHop, Trie};
///
/// let mut t = Trie::new();
/// t.insert("128.0.0.0/1".parse()?, NextHop(1)); // p = 1*
/// t.insert("160.0.0.0/3".parse()?, NextHop(2)); // q = 101*
///
/// // 100… matches p, but p cannot be cached because q sits inside it;
/// // the minimal expansion is 100* (one bit past the divergence).
/// let me = rrc_me(&t, 0x8000_0001).unwrap();
/// assert_eq!(me.route.prefix.to_string(), "128.0.0.0/3");
/// assert_eq!(me.route.next_hop, NextHop(1));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[must_use]
pub fn rrc_me(trie: &Trie<NextHop>, addr: u32) -> Option<MinimalExpansion> {
    // Phase 1: LPM walk from the root, counting node visits.
    let mut accesses = 0u32;
    let mut cur = trie.root();
    let mut lpm: Option<(Prefix, NextHop, _)> = None;
    let mut depth = 0u8;
    loop {
        accesses += 1;
        if let Some(&nh) = cur.value() {
            lpm = Some((cur.prefix(), nh, cur));
        }
        if depth == 32 {
            break;
        }
        match cur.child(Prefix::addr_bit(addr, depth)) {
            Some(next) => {
                cur = next;
                depth += 1;
            }
            None => break,
        }
    }
    let (lpm_prefix, nh, lpm_node) = lpm?;

    // Phase 2: extend from the LPM node along the address bits to the
    // shallowest route-free region. A trie node exists only if its
    // subtree holds ≥ 1 route, so the walk stops at the first missing
    // child; if the LPM node has no descendants at all, the LPM prefix
    // itself is cacheable.
    if lpm_node.descendant_routes() == 0 {
        return Some(MinimalExpansion {
            route: Route::new(lpm_prefix, nh),
            sram_accesses: accesses,
        });
    }
    let mut node = lpm_node;
    let mut d = lpm_prefix.len();
    loop {
        debug_assert!(d < 32, "a /32 LPM has no descendants");
        let bit = Prefix::addr_bit(addr, d);
        match node.child(bit) {
            None => {
                // The child region holds no routes → uniform under `nh`.
                let region = node
                    .prefix()
                    .child(bit)
                    .expect("d < 32 so a child prefix exists");
                return Some(MinimalExpansion {
                    route: Route::new(region, nh),
                    sram_accesses: accesses,
                });
            }
            Some(next) => {
                accesses += 1;
                node = next;
                d += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(routes: &[(&str, u16)]) -> Trie<NextHop> {
        routes
            .iter()
            .map(|&(p, nh)| (p.parse::<Prefix>().unwrap(), NextHop(nh)))
            .collect()
    }

    #[test]
    fn no_match_means_nothing_to_cache() {
        let t = trie(&[("10.0.0.0/8", 1)]);
        assert!(rrc_me(&t, 0x0B00_0000).is_none());
    }

    #[test]
    fn leaf_match_is_directly_cacheable() {
        let t = trie(&[("10.0.0.0/8", 1)]);
        let me = rrc_me(&t, 0x0A12_3456).unwrap();
        assert_eq!(
            me.route,
            Route::new("10.0.0.0/8".parse().unwrap(), NextHop(1))
        );
    }

    #[test]
    fn figure_2_shape_expands_past_divergence() {
        // p = 1* (nh p), q = 100000/6-ish child with a different hop.
        let t = trie(&[("128.0.0.0/1", 1), ("132.0.0.0/6", 2)]);
        // Address 10000001… matches p; q = 100001xx… no wait: q covers
        // 132.0.0.0/6 = 100001xx. Look up 128.0.0.1 (1000 0000 …).
        let me = rrc_me(&t, 0x8000_0001).unwrap();
        assert_eq!(me.route.next_hop, NextHop(1));
        // The expansion must cover the address, sit inside p, and avoid q.
        assert!(me.route.prefix.contains_addr(0x8000_0001));
        assert!("128.0.0.0/1"
            .parse::<Prefix>()
            .unwrap()
            .contains(me.route.prefix));
        assert!(!me.route.prefix.overlaps("132.0.0.0/6".parse().unwrap()));
    }

    #[test]
    fn expansion_is_minimal() {
        let t = trie(&[("128.0.0.0/1", 1), ("160.0.0.0/3", 2)]);
        let me = rrc_me(&t, 0x8000_0001).unwrap();
        // One level above the expansion, the region would contain q.
        let parent = me.route.prefix.parent().unwrap();
        assert!(
            parent.overlaps("160.0.0.0/3".parse().unwrap())
                || parent == "128.0.0.0/1".parse().unwrap()
        );
        assert_eq!(me.route.prefix.to_string(), "128.0.0.0/3");
    }

    #[test]
    fn expanded_region_resolves_uniformly() {
        let t = trie(&[
            ("0.0.0.0/0", 9),
            ("128.0.0.0/2", 1),
            ("144.0.0.0/4", 2),
            ("144.0.0.0/7", 3),
        ]);
        for addr in [
            0x8000_0001u32,
            0x9000_0001,
            0x9100_0001,
            0xC000_0001,
            0x4000_0001,
        ] {
            let me = rrc_me(&t, addr).unwrap();
            assert!(me.route.prefix.contains_addr(addr));
            // Every address inside the ME region must LPM to the same hop.
            let lo = me.route.prefix.low();
            let hi = me.route.prefix.high();
            for probe in [lo, hi, lo + (hi - lo) / 2] {
                assert_eq!(
                    t.lookup(probe).map(|(_, &nh)| nh),
                    Some(me.route.next_hop),
                    "probe {probe:#x} in region {}",
                    me.route.prefix
                );
            }
        }
    }

    #[test]
    fn sram_accesses_grow_with_conflict_depth() {
        let shallow = trie(&[("128.0.0.0/1", 1)]);
        let deep = trie(&[("128.0.0.0/1", 1), ("128.0.1.0/24", 2)]);
        let a = rrc_me(&shallow, 0x8000_0001).unwrap().sram_accesses;
        let b = rrc_me(&deep, 0x8000_0001).unwrap().sram_accesses;
        assert!(b > a, "conflicting deep route must cost more SRAM walks");
    }

    #[test]
    fn host_route_lpm() {
        let t = trie(&[("1.2.3.4/32", 5)]);
        let me = rrc_me(&t, 0x0102_0304).unwrap();
        assert_eq!(me.route.prefix.to_string(), "1.2.3.4/32");
    }
}
