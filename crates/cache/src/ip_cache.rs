//! Destination-address cache baseline.
//!
//! The literature the paper cites ([18–20] vs [21]) compares caching
//! whole destination addresses against caching prefixes and finds
//! prefix caching strictly more effective — one cached prefix covers
//! many addresses. This module provides the IP-cache side of that
//! comparison so the claim can be re-measured (see the `micro_lookup`
//! bench and the cache integration tests).

use clue_fib::NextHop;

use crate::lru::Lru;
use crate::prefix_cache::CacheStats;

/// An LRU cache of exact destination addresses.
#[derive(Debug, Clone)]
pub struct IpCache {
    lru: Lru<u32, NextHop>,
    stats: CacheStats,
}

impl IpCache {
    /// Creates a cache holding at most `capacity` addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        IpCache {
            lru: Lru::new(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Number of cached addresses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Exact-address lookup; a hit refreshes recency.
    pub fn lookup(&mut self, addr: u32) -> Option<NextHop> {
        match self.lru.get(&addr) {
            Some(&nh) => {
                self.stats.hits += 1;
                Some(nh)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches an address.
    pub fn insert(&mut self, addr: u32, next_hop: NextHop) {
        self.stats.insertions += 1;
        if self.lru.insert(addr, next_hop).is_some() {
            self.stats.evictions += 1;
        }
    }

    /// Drops every cached address (e.g. after a routing change, when
    /// per-address invalidation is impossible to scope).
    pub fn clear(&mut self) {
        let keys: Vec<u32> = self.lru.iter().map(|(&k, _)| k).collect();
        for k in keys {
            self.lru.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_only() {
        let mut c = IpCache::new(4);
        c.insert(0x0A00_0001, NextHop(1));
        assert_eq!(c.lookup(0x0A00_0001), Some(NextHop(1)));
        // A neighbouring address inside the same /8 misses — the
        // weakness prefix caching fixes.
        assert_eq!(c.lookup(0x0A00_0002), None);
    }

    #[test]
    fn lru_eviction() {
        let mut c = IpCache::new(2);
        c.insert(1, NextHop(1));
        c.insert(2, NextHop(2));
        c.lookup(1);
        c.insert(3, NextHop(3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup(2), None);
        assert_eq!(c.lookup(1), Some(NextHop(1)));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = IpCache::new(4);
        c.insert(1, NextHop(1));
        c.insert(2, NextHop(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(1), None);
    }
}
