//! SLPL's ID-bit partition (bit-selection; Zane et al., INFOCOM 2003).
//!
//! `k` address-bit positions are chosen and each prefix is hashed into
//! one of `2^k` buckets by its values at those positions. A prefix that
//! is *shorter* than a chosen position wildcards that bit and must be
//! **replicated** into every matching bucket — redundancy. Bit positions
//! are picked greedily to minimize the largest bucket, but real tables
//! still split unevenly (paper Figure 9's criticism).

use std::collections::HashMap;

use clue_fib::{Route, RouteTable};

use crate::Indexer;

/// An ID-bit partitioning into `2^k` buckets.
#[derive(Debug, Clone)]
pub struct IdBitPartition {
    positions: Vec<u8>,
    buckets: Vec<Vec<Route>>,
    replicas: usize,
}

impl IdBitPartition {
    /// Greedily selects `k` bit positions from the first
    /// `candidate_bits` address bits and partitions `table`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `candidate_bits > 32`, or
    /// `k > candidate_bits`.
    #[must_use]
    pub fn split(table: &RouteTable, k: u32, candidate_bits: u8) -> Self {
        assert!(k > 0, "need at least one index bit");
        assert!(candidate_bits <= 32 && k <= u32::from(candidate_bits));
        let routes: Vec<Route> = table.iter().collect();

        let mut positions: Vec<u8> = Vec::new();
        for _ in 0..k {
            let best = (0..candidate_bits)
                .filter(|p| !positions.contains(p))
                .min_by_key(|&p| {
                    let mut trial = positions.clone();
                    trial.push(p);
                    let (max, _) = bucket_loads(&routes, &trial);
                    max
                })
                .expect("candidates remain");
            positions.push(best);
        }
        positions.sort_unstable();

        let mut buckets = vec![Vec::new(); 1 << k];
        let mut replicas = 0;
        for &r in &routes {
            let ids = bucket_ids(r, &positions);
            replicas += ids.len() - 1;
            for id in ids {
                buckets[id].push(r);
            }
        }
        IdBitPartition {
            positions,
            buckets,
            replicas,
        }
    }

    /// The chosen bit positions (0 = most significant), sorted.
    #[must_use]
    pub fn positions(&self) -> &[u8] {
        &self.positions
    }

    /// The `2^k` buckets.
    #[must_use]
    pub fn buckets(&self) -> &[Vec<Route>] {
        &self.buckets
    }

    /// Number of replica entries created by wildcarded short prefixes.
    #[must_use]
    pub fn total_redundancy(&self) -> usize {
        self.replicas
    }

    /// The address indexer for this partitioning.
    #[must_use]
    pub fn indexer(&self) -> BitIndex {
        BitIndex {
            positions: self.positions.clone(),
        }
    }
}

/// Buckets a prefix must live in: one per combination of its wildcarded
/// chosen bits.
fn bucket_ids(route: Route, positions: &[u8]) -> Vec<usize> {
    let p = route.prefix;
    let mut ids = vec![0usize];
    for (i, &pos) in positions.iter().enumerate() {
        if pos < p.len() {
            let bit = (p.bits() >> (31 - pos)) & 1;
            for id in &mut ids {
                *id |= (bit as usize) << i;
            }
        } else {
            // Wildcard: replicate into both halves.
            let with_one: Vec<usize> = ids.iter().map(|id| id | (1 << i)).collect();
            ids.extend(with_one);
        }
    }
    ids
}

/// `(max bucket load, total entries)` for a candidate position set,
/// computed via distinct `(value, wildcard)` keys so evaluation stays
/// fast even on large tables.
fn bucket_loads(routes: &[Route], positions: &[u8]) -> (usize, usize) {
    // key: (value bits packed, wildcard mask packed) over `positions`.
    let mut keys: HashMap<(u32, u32), usize> = HashMap::new();
    for r in routes {
        let mut value = 0u32;
        let mut wild = 0u32;
        for (i, &pos) in positions.iter().enumerate() {
            if pos < r.prefix.len() {
                value |= ((r.prefix.bits() >> (31 - pos)) & 1) << i;
            } else {
                wild |= 1 << i;
            }
        }
        *keys.entry((value, wild)).or_insert(0) += 1;
    }
    let n = 1usize << positions.len();
    let mut loads = vec![0usize; n];
    for (&(value, wild), &count) in &keys {
        // Enumerate value | s for every submask s of the wildcard bits.
        let (value, wild) = (value as usize, wild as usize);
        let mut sub = wild;
        loop {
            loads[value | sub] += count;
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & wild;
        }
    }
    (loads.iter().copied().max().unwrap_or(0), loads.iter().sum())
}

/// Address → bucket via the chosen bit positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitIndex {
    positions: Vec<u8>,
}

impl Indexer for BitIndex {
    fn bucket_of(&self, addr: u32) -> usize {
        let mut id = 0usize;
        for (i, &pos) in self.positions.iter().enumerate() {
            id |= (((addr >> (31 - pos)) & 1) as usize) << i;
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn flat_table(count: u32) -> RouteTable {
        (0..count)
            .map(|i| (Prefix::new(i << 24, 8), NextHop(1)))
            .collect()
    }

    #[test]
    fn long_prefixes_land_in_one_bucket() {
        let t = flat_table(16);
        let p = IdBitPartition::split(&t, 2, 8);
        assert_eq!(p.buckets().len(), 4);
        assert_eq!(p.total_redundancy(), 0);
        let total: usize = p.buckets().iter().map(Vec::len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn short_prefixes_replicate() {
        let mut t = flat_table(8);
        // /0 wildcards every candidate bit → replicated into all buckets.
        t.insert("0.0.0.0/0".parse().unwrap(), NextHop(9));
        let p = IdBitPartition::split(&t, 2, 8);
        assert_eq!(p.total_redundancy(), 3);
        for b in p.buckets() {
            assert!(b.iter().any(|r| r.prefix.is_root()));
        }
    }

    #[test]
    fn indexer_agrees_with_bucket_membership() {
        let t = flat_table(32);
        let p = IdBitPartition::split(&t, 3, 8);
        let idx = p.indexer();
        for r in t.iter() {
            let b = idx.bucket_of(r.prefix.low());
            assert!(
                p.buckets()[b].contains(&r),
                "{} missing from bucket {b}",
                r.prefix
            );
        }
    }

    #[test]
    fn greedy_beats_worst_single_bit_on_skewed_table() {
        // All prefixes share their top bit, so choosing bit 0 would put
        // everything in one bucket; the greedy pick must do better.
        let t: RouteTable = (0..32u32)
            .map(|i| (Prefix::new(0x8000_0000 | (i << 24), 8), NextHop(1)))
            .collect();
        let p = IdBitPartition::split(&t, 1, 8);
        let max = p.buckets().iter().map(Vec::len).max().unwrap();
        assert!(max < 32, "greedy selection failed to split at all");
        assert!(!p.positions().contains(&0));
    }

    #[test]
    fn bucket_loads_matches_materialized_buckets() {
        let mut t = flat_table(16);
        t.insert("0.0.0.0/1".parse().unwrap(), NextHop(2));
        t.insert("128.0.0.0/2".parse().unwrap(), NextHop(3));
        let routes: Vec<Route> = t.iter().collect();
        let positions = vec![0u8, 3];
        let (max, total) = bucket_loads(&routes, &positions);
        // Materialize and compare.
        let mut buckets = [0usize; 4];
        for &r in &routes {
            for id in bucket_ids(r, &positions) {
                buckets[id] += 1;
            }
        }
        assert_eq!(max, *buckets.iter().max().unwrap());
        assert_eq!(total, buckets.iter().sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_bits() {
        let _ = IdBitPartition::split(&RouteTable::new(), 0, 8);
    }
}
