//! CLPL's sub-tree partition (Lin et al., IPDPS 2007).
//!
//! The trie is carved bottom-up into subtrees of bounded size. Each
//! carved bucket must replicate the *covering prefixes* — routes at
//! ancestors of the carve point — so that a lookup landing in the bucket
//! still finds its LPM when the true match lies above the subtree. Those
//! replicas are the redundancy CLUE eliminates (paper Figure 9).

use clue_fib::{Bit, NextHop, NodeRef, Prefix, Route, RouteTable, Trie};

use crate::Indexer;

/// A sub-tree partitioning.
#[derive(Debug, Clone)]
pub struct SubTreePartition {
    buckets: Vec<Vec<Route>>,
    /// Routes per bucket that are replicas of covering prefixes.
    redundancy: Vec<usize>,
    index: TrieIndex,
}

impl SubTreePartition {
    /// Carves `table` into subtrees holding at most `capacity` original
    /// routes each (covering-prefix replicas come on top).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn split(table: &RouteTable, capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        let trie = table.to_trie();
        let mut builder = Builder {
            capacity,
            buckets: Vec::new(),
            redundancy: Vec::new(),
            carve_roots: Vec::new(),
        };
        if !trie.is_empty() {
            let leftover = builder.carve(trie.root(), &[]);
            builder.finish_bucket(leftover, Prefix::root(), &[]);
        }
        let index_trie: Trie<usize> = builder.carve_roots.iter().map(|&(p, b)| (p, b)).collect();
        SubTreePartition {
            buckets: builder.buckets,
            redundancy: builder.redundancy,
            index: TrieIndex { trie: index_trie },
        }
    }

    /// Buckets, each holding its subtree routes plus covering replicas.
    #[must_use]
    pub fn buckets(&self) -> &[Vec<Route>] {
        &self.buckets
    }

    /// Number of replicated covering prefixes per bucket.
    #[must_use]
    pub fn redundancy(&self) -> &[usize] {
        &self.redundancy
    }

    /// Total replicated routes across all buckets.
    #[must_use]
    pub fn total_redundancy(&self) -> usize {
        self.redundancy.iter().sum()
    }

    /// The index mapping an address to its bucket.
    #[must_use]
    pub fn index(&self) -> &TrieIndex {
        &self.index
    }
}

struct Builder {
    capacity: usize,
    buckets: Vec<Vec<Route>>,
    redundancy: Vec<usize>,
    carve_roots: Vec<(Prefix, usize)>,
}

impl Builder {
    /// Post-order carve. Returns the routes of the subtree under `node`
    /// that have not been carved into a bucket yet. `path` holds the
    /// routes at ancestors of `node` (potential covering prefixes).
    fn carve(&mut self, node: NodeRef<'_, NextHop>, path: &[Route]) -> Vec<Route> {
        let mut extended;
        let path_here: &[Route] = match node.value() {
            Some(&nh) => {
                extended = path.to_vec();
                extended.push(Route::new(node.prefix(), nh));
                &extended
            }
            None => path,
        };

        let mut remaining = Vec::new();
        for bit in [Bit::Zero, Bit::One] {
            if let Some(child) = node.child(bit) {
                remaining.extend(self.carve(child, path_here));
            }
        }
        if let Some(&nh) = node.value() {
            remaining.push(Route::new(node.prefix(), nh));
        }

        // Carve once the subtree holds ≥ ⌈b/2⌉ uncarved routes. Children
        // each returned < ⌈b/2⌉, so bucket sizes stay within [⌈b/2⌉, b] —
        // Lin et al.'s size guarantee.
        if remaining.len() >= self.capacity.div_ceil(2) {
            self.finish_bucket(remaining, node.prefix(), path);
            return Vec::new();
        }
        remaining
    }

    /// Emits a bucket for the carve point `root`, replicating the
    /// covering prefixes in `path`.
    fn finish_bucket(&mut self, mut routes: Vec<Route>, root: Prefix, path: &[Route]) {
        if routes.is_empty() {
            return;
        }
        let replicas = path.len();
        routes.extend_from_slice(path);
        self.buckets.push(routes);
        self.redundancy.push(replicas);
        self.carve_roots.push((root, self.buckets.len() - 1));
    }
}

/// Address → bucket index via longest-matching carve root.
#[derive(Debug, Clone)]
pub struct TrieIndex {
    trie: Trie<usize>,
}

impl Indexer for TrieIndex {
    fn bucket_of(&self, addr: u32) -> usize {
        self.trie.lookup(addr).map_or(0, |(_, &b)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes
            .iter()
            .map(|&(p, nh)| (p.parse::<Prefix>().unwrap(), NextHop(nh)))
            .collect()
    }

    fn flat_table(count: u32) -> RouteTable {
        (0..count)
            .map(|i| (Prefix::new(i << 16, 16), NextHop(1)))
            .collect()
    }

    #[test]
    fn small_table_is_one_bucket() {
        let t = table(&[("10.0.0.0/8", 1), ("11.0.0.0/8", 2)]);
        let p = SubTreePartition::split(&t, 10);
        assert_eq!(p.buckets().len(), 1);
        assert_eq!(p.total_redundancy(), 0);
    }

    #[test]
    fn buckets_respect_capacity_for_original_routes() {
        let t = flat_table(64);
        let p = SubTreePartition::split(&t, 8);
        for (b, red) in p.buckets().iter().zip(p.redundancy()) {
            assert!(b.len() - red <= 8, "bucket over capacity");
        }
        let total: usize = p.buckets().iter().map(Vec::len).sum();
        assert_eq!(total, 64 + p.total_redundancy());
    }

    #[test]
    fn covering_prefixes_are_replicated() {
        // A default-ish route covering many specifics must be copied
        // into every carved bucket it covers.
        let mut t = flat_table(32);
        t.insert("0.0.0.0/1".parse().unwrap(), NextHop(9));
        let p = SubTreePartition::split(&t, 8);
        assert!(
            p.total_redundancy() > 0,
            "covering route must create redundancy"
        );
        // Each bucket that holds specifics under 0/1 also holds 0/1.
        for bucket in p.buckets() {
            let has_specific = bucket
                .iter()
                .any(|r| r.prefix.len() == 16 && r.prefix.low() < 0x8000_0000);
            if has_specific {
                assert!(
                    bucket.iter().any(|r| r.prefix.len() == 1),
                    "bucket missing its covering /1"
                );
            }
        }
    }

    #[test]
    fn every_route_lands_in_exactly_the_indexed_bucket() {
        let t = flat_table(64);
        let p = SubTreePartition::split(&t, 8);
        for r in t.iter() {
            let b = p.index().bucket_of(r.prefix.low());
            assert!(
                p.buckets()[b].contains(&r),
                "route {} not in bucket {b}",
                r.prefix
            );
        }
    }

    #[test]
    fn lookup_within_indexed_bucket_matches_global_lpm() {
        let mut t = flat_table(48);
        t.insert("0.0.0.0/4".parse().unwrap(), NextHop(7));
        t.insert("0.0.0.0/2".parse().unwrap(), NextHop(8));
        let p = SubTreePartition::split(&t, 8);
        let global = t.to_trie();
        for addr in (0u32..64).map(|i| (i << 16) + 1) {
            let b = p.index().bucket_of(addr);
            let local: Trie<NextHop> = p.buckets()[b]
                .iter()
                .map(|r| (r.prefix, r.next_hop))
                .collect();
            assert_eq!(
                local.lookup(addr).map(|(_, &nh)| nh),
                global.lookup(addr).map(|(_, &nh)| nh),
                "addr {addr:#x} diverges in bucket {b}"
            );
        }
    }

    #[test]
    fn empty_table_gives_no_buckets() {
        let p = SubTreePartition::split(&RouteTable::new(), 4);
        assert!(p.buckets().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        let _ = SubTreePartition::split(&RouteTable::new(), 0);
    }
}
