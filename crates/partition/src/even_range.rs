//! CLUE's partition algorithm: even in-order split, zero redundancy.
//!
//! Because ONRTC output is non-overlapping, sorting it by address gives
//! disjoint, ordered ranges. Step I of the paper's algorithm computes the
//! partition size `M/n`; Step II walks the table in order and cuts every
//! `M/n` prefixes. The resulting [`RangeIndex`] — the "Indexing Logic" of
//! Figure 1 — maps a destination address to its bucket with a binary
//! search over `n − 1` cut points.

use clue_fib::{Route, RouteTable};

use crate::Indexer;

/// An even-range partitioning of a non-overlapping table.
#[derive(Debug, Clone)]
pub struct EvenRangePartition {
    buckets: Vec<Vec<Route>>,
    index: RangeIndex,
}

impl EvenRangePartition {
    /// Splits `table` into `n` buckets of (nearly) equal size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `table` is not non-overlapping — CLUE's
    /// partitioning is only defined after ONRTC.
    #[must_use]
    pub fn split(table: &RouteTable, n: usize) -> Self {
        assert!(n > 0, "partition count must be positive");
        assert!(
            table.is_non_overlapping(),
            "even-range partitioning requires a non-overlapping table (run ONRTC first)"
        );
        let routes: Vec<Route> = table.iter().collect();
        let m = routes.len();
        // Spread the division remainder over the first buckets so sizes
        // differ by at most one (the paper's "exactly evenly").
        let base = m / n;
        let rem = m % n;
        let mut buckets: Vec<Vec<Route>> = Vec::with_capacity(n);
        let mut cursor = 0;
        for i in 0..n {
            let size = base + usize::from(i < rem);
            buckets.push(routes[cursor..cursor + size].to_vec());
            cursor += size;
        }
        debug_assert_eq!(cursor, m);
        let cuts = buckets
            .iter()
            .skip(1)
            .map(|b| b.first().map_or(u32::MAX, |r| r.prefix.low()))
            .collect();
        EvenRangePartition {
            buckets,
            index: RangeIndex { cuts },
        }
    }

    /// The buckets, in address order.
    #[must_use]
    pub fn buckets(&self) -> &[Vec<Route>] {
        &self.buckets
    }

    /// The indexing logic for this split.
    #[must_use]
    pub fn index(&self) -> &RangeIndex {
        &self.index
    }

    /// Consumes the partition, returning `(buckets, index)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<Vec<Route>>, RangeIndex) {
        (self.buckets, self.index)
    }
}

/// The Indexing Logic: `n − 1` cut addresses; bucket of `addr` is the
/// number of cuts ≤ `addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeIndex {
    cuts: Vec<u32>,
}

impl RangeIndex {
    /// Builds an index directly from cut addresses (must be sorted).
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is not sorted ascending.
    #[must_use]
    pub fn from_cuts(cuts: Vec<u32>) -> Self {
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must be sorted");
        RangeIndex { cuts }
    }

    /// Number of buckets this index distinguishes.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The sorted cut points, suitable for serialization and a later
    /// [`RangeIndex::from_cuts`] round trip.
    #[must_use]
    pub fn cuts(&self) -> &[u32] {
        &self.cuts
    }
}

impl Indexer for RangeIndex {
    fn bucket_of(&self, addr: u32) -> usize {
        self.cuts.partition_point(|&c| c <= addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn disjoint_table(count: u32) -> RouteTable {
        // `count` disjoint /16s.
        (0..count)
            .map(|i| (Prefix::new(i << 16, 16), NextHop((i % 5) as u16)))
            .collect()
    }

    #[test]
    fn splits_exactly_evenly_when_divisible() {
        let t = disjoint_table(32);
        let p = EvenRangePartition::split(&t, 4);
        assert_eq!(p.buckets().len(), 4);
        assert!(p.buckets().iter().all(|b| b.len() == 8));
        // Zero redundancy: bucket sizes sum to the table size.
        let total: usize = p.buckets().iter().map(Vec::len).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn remainder_spreads_without_redundancy() {
        let t = disjoint_table(10);
        let p = EvenRangePartition::split(&t, 4);
        let sizes: Vec<usize> = p.buckets().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(*sizes.iter().max().unwrap(), 3);
    }

    #[test]
    fn index_routes_every_prefix_to_its_bucket() {
        let t = disjoint_table(32);
        let p = EvenRangePartition::split(&t, 4);
        for (i, bucket) in p.buckets().iter().enumerate() {
            for r in bucket {
                assert_eq!(p.index().bucket_of(r.prefix.low()), i, "{}", r.prefix);
                assert_eq!(p.index().bucket_of(r.prefix.high()), i, "{}", r.prefix);
            }
        }
    }

    #[test]
    fn uncovered_addresses_still_index_deterministically() {
        let t = disjoint_table(8);
        let p = EvenRangePartition::split(&t, 2);
        // An address below every route indexes to bucket 0; one above
        // everything goes to the last bucket.
        assert_eq!(p.index().bucket_of(0), 0);
        assert_eq!(p.index().bucket_of(u32::MAX), 1);
    }

    #[test]
    fn more_buckets_than_routes_pads_with_empty() {
        let t = disjoint_table(2);
        let p = EvenRangePartition::split(&t, 4);
        assert_eq!(p.buckets().len(), 4);
        assert_eq!(p.buckets()[0].len(), 1);
        assert_eq!(p.buckets()[3].len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn rejects_overlapping_table() {
        let mut t = RouteTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHop(1));
        t.insert("10.1.0.0/16".parse().unwrap(), NextHop(2));
        let _ = EvenRangePartition::split(&t, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_buckets() {
        let _ = EvenRangePartition::split(&RouteTable::new(), 0);
    }

    #[test]
    fn from_cuts_validates_order() {
        let idx = RangeIndex::from_cuts(vec![10, 20, 30]);
        assert_eq!(idx.bucket_count(), 4);
        assert_eq!(idx.bucket_of(5), 0);
        assert_eq!(idx.bucket_of(10), 1);
        assert_eq!(idx.bucket_of(25), 2);
        assert_eq!(idx.bucket_of(99), 3);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_cuts_rejects_unsorted() {
        let _ = RangeIndex::from_cuts(vec![20, 10]);
    }
}
