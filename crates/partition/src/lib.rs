//! Routing-table partition algorithms for parallel TCAM lookup.
//!
//! Three schemes, compared in Figure 9 of the paper:
//!
//! * [`EvenRangePartition`] — **CLUE**: after ONRTC the table is
//!   non-overlapping, so an in-order walk cut every `M/n` prefixes gives
//!   perfectly even buckets with **zero redundancy**; the index is a
//!   binary search over `n−1` addresses.
//! * [`SubTreePartition`] — **CLPL** (Lin et al.): carve the trie into
//!   bounded subtrees; even-ish buckets but every carved bucket
//!   replicates its covering prefixes.
//! * [`IdBitPartition`] — **SLPL** (Zane et al. bit selection): hash on
//!   `k` chosen address bits; uneven buckets *and* replicas for short
//!   prefixes.
//!
//! All indexes implement [`Indexer`], the engine's "Indexing Logic".
//!
//! # Examples
//!
//! ```
//! use clue_compress::onrtc;
//! use clue_fib::gen::FibGen;
//! use clue_partition::{EvenRangePartition, PartitionStats};
//!
//! let fib = onrtc(&FibGen::new(1).routes(4_000).generate());
//! let parts = EvenRangePartition::split(&fib, 4);
//! let stats = PartitionStats::measure(parts.buckets(), fib.len());
//! assert_eq!(stats.redundancy, 0);
//! assert!(stats.imbalance() < 1.01);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod capacity;
mod even_range;
mod id_bit;
mod stats;
mod subtree;

pub use capacity::capacity_cuts;
pub use even_range::{EvenRangePartition, RangeIndex};
pub use id_bit::{BitIndex, IdBitPartition};
pub use stats::PartitionStats;
pub use subtree::{SubTreePartition, TrieIndex};

/// The Indexing Logic of Figure 1: maps a destination address to the
/// bucket (and hence home TCAM) that stores its potential match.
pub trait Indexer {
    /// Bucket index for `addr`.
    fn bucket_of(&self, addr: u32) -> usize;
}
