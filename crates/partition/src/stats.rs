//! Bucket-shape statistics for the partition comparison (Figure 9).

use clue_fib::Route;

/// Shape summary of one partitioning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of buckets.
    pub buckets: usize,
    /// Largest bucket (entries, including replicas).
    pub max: usize,
    /// Smallest bucket.
    pub min: usize,
    /// Total stored entries across buckets.
    pub total: usize,
    /// Entries beyond the input table size (replicas).
    pub redundancy: usize,
}

impl PartitionStats {
    /// Measures a bucket set produced from a table of `input_len` routes.
    #[must_use]
    pub fn measure(buckets: &[Vec<Route>], input_len: usize) -> Self {
        let total: usize = buckets.iter().map(Vec::len).sum();
        PartitionStats {
            buckets: buckets.len(),
            max: buckets.iter().map(Vec::len).max().unwrap_or(0),
            min: buckets.iter().map(Vec::len).min().unwrap_or(0),
            total,
            redundancy: total.saturating_sub(input_len),
        }
    }

    /// `max / (total / buckets)`: 1.0 is a perfectly even split.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.buckets == 0 || self.total == 0 {
            return 1.0;
        }
        self.max as f64 / (self.total as f64 / self.buckets as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn bucket(n: usize) -> Vec<Route> {
        (0..n as u32)
            .map(|i| Route::new(Prefix::new(i << 16, 16), NextHop(0)))
            .collect()
    }

    #[test]
    fn measures_shape() {
        let buckets = vec![bucket(4), bucket(8), bucket(4)];
        let s = PartitionStats::measure(&buckets, 14);
        assert_eq!(s.buckets, 3);
        assert_eq!(s.max, 8);
        assert_eq!(s.min, 4);
        assert_eq!(s.total, 16);
        assert_eq!(s.redundancy, 2);
        assert!((s.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn even_split_has_unit_imbalance() {
        let buckets = vec![bucket(5), bucket(5)];
        let s = PartitionStats::measure(&buckets, 10);
        assert_eq!(s.redundancy, 0);
        assert!((s.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_degenerate_but_defined() {
        let s = PartitionStats::measure(&[], 0);
        assert_eq!(s.buckets, 0);
        assert_eq!(s.imbalance(), 1.0);
    }
}
