//! Capacity-driven cuts for tiled planes.
//!
//! Where [`EvenRangePartition`](crate::EvenRangePartition) divides a
//! table into a *fixed number* of buckets (one per chip), a tiled plane
//! needs the dual: divide an interval list into however many spans it
//! takes so that *no span exceeds a fixed capacity*. "On Ranges and
//! Partitions in Optimal TCAMs" (arXiv 2212.13283) shows range cuts
//! over the flattened LPM function are the right primitive for both.

/// Chooses interior cut addresses over a strictly ascending
/// interval-start list so that each resulting span holds at most
/// `per_span` interval starts. The returned cuts are strictly
/// ascending and compatible with
/// [`RangeIndex::from_cuts`](crate::RangeIndex::from_cuts): a cut is
/// the first address of the span it opens.
///
/// # Panics
///
/// Panics if `per_span == 0`.
#[must_use]
pub fn capacity_cuts(starts: &[u32], per_span: usize) -> Vec<u32> {
    assert!(per_span > 0, "capacity_cuts: per_span must be positive");
    debug_assert!(
        starts.windows(2).all(|w| w[0] < w[1]),
        "starts not ascending"
    );
    starts
        .iter()
        .skip(per_span)
        .step_by(per_span)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_list_needs_no_cuts() {
        assert!(capacity_cuts(&[0, 10, 20], 3).is_empty());
        assert!(capacity_cuts(&[], 1).is_empty());
    }

    #[test]
    fn cuts_bound_every_span() {
        let starts: Vec<u32> = (0..100).map(|i| i * 7).collect();
        for per_span in [1usize, 3, 7, 99, 100, 1000] {
            let cuts = capacity_cuts(&starts, per_span);
            assert!(cuts.windows(2).all(|w| w[0] < w[1]));
            // Count interval starts per span and check the bound.
            let mut span = 0usize;
            let mut count = 0usize;
            for &s in &starts {
                while span < cuts.len() && s >= cuts[span] {
                    span += 1;
                    count = 0;
                }
                count += 1;
                assert!(count <= per_span, "span {span} exceeds {per_span}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "per_span must be positive")]
    fn zero_capacity_panics() {
        let _ = capacity_cuts(&[1, 2], 0);
    }
}
