//! Property tests: all three partition schemes must cover every route,
//! index consistently, and honour their structural guarantees.

use clue_compress::onrtc;
use clue_fib::{NextHop, Prefix, Route, RouteTable, Trie};
use clue_partition::{
    EvenRangePartition, IdBitPartition, Indexer, PartitionStats, SubTreePartition,
};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = RouteTable> {
    prop::collection::vec((any::<u32>(), 4u8..=16, 0u16..4), 8..120).prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CLUE's even split: disjoint cover, sizes within 1, zero
    /// redundancy, and the index routes each route's full range to its
    /// own bucket.
    #[test]
    fn even_range_invariants(t in arb_table(), n in 1usize..12) {
        let table = onrtc(&t);
        prop_assume!(!table.is_empty());
        let parts = EvenRangePartition::split(&table, n);
        let stats = PartitionStats::measure(parts.buckets(), table.len());
        prop_assert_eq!(stats.total, table.len());
        prop_assert_eq!(stats.redundancy, 0);
        prop_assert!(stats.max - stats.min <= 1);
        for (i, bucket) in parts.buckets().iter().enumerate() {
            for r in bucket {
                prop_assert_eq!(parts.index().bucket_of(r.prefix.low()), i);
                prop_assert_eq!(parts.index().bucket_of(r.prefix.high()), i);
            }
        }
    }

    /// Sub-tree partition: every original route appears in exactly the
    /// bucket its address indexes to, and a local LPM there equals the
    /// global LPM (covering replicas make buckets self-contained).
    #[test]
    fn subtree_local_lookup_equals_global(t in arb_table(), cap in 2usize..24) {
        prop_assume!(!t.is_empty());
        let parts = SubTreePartition::split(&t, cap);
        let global = t.to_trie();
        for r in t.iter() {
            let addr = r.prefix.low();
            let b = parts.index().bucket_of(addr);
            prop_assume!(b < parts.buckets().len());
            let local: Trie<NextHop> = parts.buckets()[b]
                .iter()
                .map(|x| (x.prefix, x.next_hop))
                .collect();
            prop_assert_eq!(
                local.lookup(addr).map(|(_, &nh)| nh),
                global.lookup(addr).map(|(_, &nh)| nh),
                "addr {:#x} in bucket {}", addr, b
            );
        }
        // Bucket sizes net of replicas respect the capacity bound.
        for (bucket, &red) in parts.buckets().iter().zip(parts.redundancy()) {
            prop_assert!(bucket.len() - red <= cap);
        }
    }

    /// ID-bit partition: every route is present in the bucket of every
    /// address it covers, and total replicas match the reported count.
    #[test]
    fn id_bit_replication_is_complete(t in arb_table(), k in 1u32..5) {
        prop_assume!(!t.is_empty());
        let parts = IdBitPartition::split(&t, k, 16);
        let idx = parts.indexer();
        for r in t.iter() {
            // Probe both ends of the route's range: the route must be
            // stored wherever its addresses go.
            for addr in [r.prefix.low(), r.prefix.high()] {
                let b = idx.bucket_of(addr);
                prop_assert!(
                    parts.buckets()[b].contains(&Route::new(r.prefix, r.next_hop)),
                    "{} missing from bucket {}", r.prefix, b
                );
            }
        }
        let total: usize = parts.buckets().iter().map(Vec::len).sum();
        prop_assert_eq!(total, t.len() + parts.total_redundancy());
    }
}
