//! The long-running router runtime: lookup workers, dispatcher, and
//! the batching/coalescing update plane, wired over bounded channels.
//!
//! Thread topology (see DESIGN.md §"clue-router"):
//!
//! ```text
//!               packets                    updates
//!                  │                          │ bounded ingress
//!                  ▼                          ▼ (Block | DropNewest)
//!             dispatcher                update thread
//!         (index + diversion)      (batch → coalesce → CluePipeline)
//!            │ bounded FIFO │              │
//!            ▼      …       ▼              ▼ publish Arc<EpochState>
//!         worker 0  …  worker n-1   ◄── EpochCell (atomic version)
//!            │              │
//!            └── done ──────┘ → collector (arrival-order accounting)
//! ```
//!
//! * Each worker owns one partition of the compressed table (via the
//!   current epoch's per-bucket trie) and shares one DRed per chip with
//!   the dispatcher's diverted path, exactly like the clock-driven
//!   engine of Figure 1.
//! * The update plane ingests a raw stream through a **bounded** queue
//!   — overflow is either blocking backpressure or counted
//!   `DropNewest`, never a silent loss — batches up to `batch_size`
//!   operations per quiescent window, coalesces them (last-op-wins,
//!   flap cancellation, no-op elision), pushes the survivors through
//!   [`CluePipeline`], flushes affected prefixes from every worker
//!   DRed, and publishes the rebuilt per-bucket tries as one new epoch.
//! * Workers observe a batch atomically: they poll the epoch version
//!   once per packet and swap the whole `Arc<EpochState>` — never a
//!   half-applied table. DRed entries may lag one batch (a hit can
//!   serve the pre-batch next hop until the flush lands); this mirrors
//!   the transient staleness any real line card exhibits between a RIB
//!   change and data-plane convergence.

use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use clue_cache::LruPrefixCache;
use clue_core::update_pipeline::CluePipeline;
use clue_fib::{NextHop, Route, RouteTable, Update};
use clue_partition::{EvenRangePartition, Indexer, RangeIndex};

use crate::coalesce::coalesce;
use crate::epoch::{EpochCell, EpochState};
use crate::faults::{FaultPlan, IngressPerturber, WriteStall};
use crate::stats::{RouterStats, StatsSnapshot};

/// What to do when the bounded update ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Apply backpressure: the feeder blocks until space frees up.
    /// Every update is eventually applied (deterministic final FIB).
    Block,
    /// Reject the newest update and count it in
    /// [`StatsSnapshot::update_drops`] — never a silent loss.
    DropNewest,
}

/// Configuration of one router run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Lookup worker (chip) count.
    pub workers: usize,
    /// Per-worker bounded FIFO capacity (Figure 1's FIFOs).
    pub fifo_capacity: usize,
    /// Per-chip DRed capacity, in prefixes.
    pub dred_capacity: usize,
    /// Maximum updates applied per batch/epoch.
    pub batch_size: usize,
    /// Bounded update-ingress queue capacity.
    pub update_queue: usize,
    /// Ingress overflow policy.
    pub overflow: OverflowPolicy,
    /// Emit a JSON stats snapshot to stdout this often (None = never).
    pub snapshot_every: Option<Duration>,
    /// Seeded fault injection at the channel and TCAM-write seams
    /// (None = run clean). See [`FaultPlan`].
    pub faults: Option<FaultPlan>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 4,
            fifo_capacity: 256,
            dred_capacity: 1024,
            batch_size: 64,
            update_queue: 1024,
            overflow: OverflowPolicy::Block,
            snapshot_every: None,
            faults: None,
        }
    }
}

/// Outcome of a completed router run.
#[derive(Debug)]
pub struct RouterReport {
    /// Final aggregated stats (also rendered by `snapshot.to_json()`).
    pub snapshot: StatsSnapshot,
    /// Per-packet lookup results in arrival order.
    pub results: Vec<Option<NextHop>>,
    /// The original-form routing table after every applied update.
    pub final_table: RouteTable,
    /// The ONRTC-compressed table after every applied update.
    pub final_compressed: RouteTable,
    /// Cut-spanning replicas in the last published epoch (the dynamic
    /// redundancy accumulated since start-up).
    pub dynamic_redundancy: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RouterReport {
    /// Whether every packet handed in was accounted for (the runtime
    /// never drops packets; updates are the only droppable input).
    #[must_use]
    pub fn packets_conserved(&self) -> bool {
        self.snapshot.arrivals == self.snapshot.completions
            && self.snapshot.completions == self.results.len() as u64
    }
}

enum Job {
    /// Full lookup on the home chip's partition trie.
    Home {
        addr: u32,
        tag: u64,
        t0: Instant,
        bounced: bool,
    },
    /// DRed-only attempt on a non-home chip (diverted packet).
    Dred {
        addr: u32,
        tag: u64,
        t0: Instant,
    },
    Quit,
}

struct Shared {
    dreds: Vec<Mutex<LruPrefixCache>>,
    epochs: EpochCell,
    stats: RouterStats,
}

/// Runs `packets` and `updates` through a live multi-threaded router
/// built over `table` and returns the full report.
///
/// The update plane is single-threaded by design, so for
/// [`OverflowPolicy::Block`] the final FIB equals the sequential
/// application of `updates` to `table` regardless of thread timing —
/// the property the integration tests pin down.
///
/// # Panics
///
/// Panics if `table` is empty or `cfg` is degenerate (any zero size).
#[must_use]
pub fn run(
    table: &RouteTable,
    packets: &[u32],
    updates: &[Update],
    cfg: &RouterConfig,
) -> RouterReport {
    assert!(!table.is_empty(), "need a routing table to serve");
    assert!(
        cfg.workers > 0
            && cfg.fifo_capacity > 0
            && cfg.dred_capacity > 0
            && cfg.batch_size > 0
            && cfg.update_queue > 0,
        "router config sizes must be positive"
    );

    let mut pipeline = CluePipeline::new(table, cfg.workers, cfg.dred_capacity, table.len() + 1024);
    let compressed0 = pipeline.fib().compressed_table();
    let index: RangeIndex = EvenRangePartition::split(&compressed0, cfg.workers)
        .index()
        .clone();
    let epoch0 = EpochState::build(0, &compressed0, &index, cfg.workers);

    let shared = Arc::new(Shared {
        dreds: (0..cfg.workers)
            .map(|_| Mutex::new(LruPrefixCache::new(cfg.dred_capacity)))
            .collect(),
        epochs: EpochCell::new(epoch0),
        stats: RouterStats::new(cfg.workers),
    });

    let mut fifo_tx: Vec<Sender<Job>> = Vec::new();
    let mut fifo_rx: Vec<Receiver<Job>> = Vec::new();
    let mut bounce_tx: Vec<Sender<Job>> = Vec::new();
    let mut bounce_rx: Vec<Receiver<Job>> = Vec::new();
    for _ in 0..cfg.workers {
        let (tx, rx) = bounded::<Job>(cfg.fifo_capacity);
        fifo_tx.push(tx);
        fifo_rx.push(rx);
        let (tx, rx) = unbounded::<Job>();
        bounce_tx.push(tx);
        bounce_rx.push(rx);
    }
    let (done_tx, done_rx) = unbounded::<(u64, Option<NextHop>)>();
    let (ingress_tx, ingress_rx) = bounded::<Update>(cfg.update_queue);

    let start = Instant::now();
    let mut results: Vec<Option<NextHop>> = vec![None; packets.len()];
    let mut update_outcome: Option<UpdateOutcome> = None;

    std::thread::scope(|scope| {
        // Lookup workers.
        for chip in 0..cfg.workers {
            let shared = Arc::clone(&shared);
            let my_fifo = fifo_rx[chip].clone();
            let my_bounce = bounce_rx[chip].clone();
            let done = done_tx.clone();
            let home_bounce_tx: Vec<Sender<Job>> = bounce_tx.clone();
            let index = index.clone();
            scope.spawn(move || {
                worker_loop(
                    chip,
                    &shared,
                    &my_fifo,
                    &my_bounce,
                    &done,
                    &home_bounce_tx,
                    &index,
                );
            });
        }
        drop(done_tx);

        // Update feeder: the bounded ingress enforces the overflow
        // policy — block (backpressure) or count-and-drop the newest.
        // An optional fault plan perturbs timing and global order here,
        // but never the per-prefix order (see `faults`).
        {
            let shared = Arc::clone(&shared);
            let overflow = cfg.overflow;
            let faults = cfg.faults;
            scope.spawn(move || {
                let mut perturber = faults.map(IngressPerturber::new);
                let mut staged: Vec<Update> = Vec::new();
                for &u in updates {
                    staged.clear();
                    match &mut perturber {
                        Some(p) => {
                            if let Some(d) = p.feeder_delay() {
                                std::thread::sleep(d);
                            }
                            p.push(u, &mut staged);
                        }
                        None => staged.push(u),
                    }
                    if !feed(&ingress_tx, overflow, &shared, &staged) {
                        return; // update thread gone
                    }
                }
                if let Some(p) = perturber {
                    staged.clear();
                    p.finish(&mut staged);
                    let _ = feed(&ingress_tx, overflow, &shared, &staged);
                }
                // ingress_tx drops here; the update thread drains and exits.
            });
        }

        // Update plane.
        let update_thread = {
            let shared = Arc::clone(&shared);
            let index = index.clone();
            let cfg = *cfg;
            let mut mirror = table.clone();
            scope.spawn(move || {
                update_loop(
                    &mut pipeline,
                    &mut mirror,
                    &ingress_rx,
                    &shared,
                    &index,
                    &cfg,
                );
                UpdateOutcome {
                    final_table: mirror,
                    final_compressed: pipeline.fib().compressed_table(),
                    dynamic_redundancy: shared.epochs.load().replicated,
                }
            })
        };

        // Optional periodic snapshot printer.
        let stop_printer = Arc::new(AtomicBool::new(false));
        if let Some(every) = cfg.snapshot_every {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_printer);
            scope.spawn(move || {
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(every);
                    if stop.load(AtomicOrdering::Relaxed) {
                        break;
                    }
                    println!("{}", shared.stats.snapshot().to_json());
                }
            });
        }

        // Dispatcher (this thread): Indexing Logic + diversion.
        for (tag, &addr) in packets.iter().enumerate() {
            shared.stats.count_arrival();
            let home = index.bucket_of(addr);
            shared
                .stats
                .worker(home)
                .queue_depth
                .record(fifo_tx[home].len() as u64);
            let job = Job::Home {
                addr,
                tag: tag as u64,
                t0: Instant::now(),
                bounced: false,
            };
            if let Err(err) = fifo_tx[home].try_send(job) {
                // Home FIFO full → DRed-only attempt on the idlest chip.
                shared.stats.count_diversion();
                let job = match err.into_inner() {
                    Job::Home { addr, tag, t0, .. } => Job::Dred { addr, tag, t0 },
                    other => other,
                };
                let idlest = (0..cfg.workers)
                    .min_by_key(|&c| fifo_tx[c].len())
                    .expect("workers > 0");
                fifo_tx[idlest].send(job).expect("worker alive");
            }
        }

        // Collector: every packet must come back (no packet drops).
        let mut completions = 0u64;
        while completions < packets.len() as u64 {
            let (tag, nh) = done_rx.recv().expect("workers alive until quit");
            results[tag as usize] = nh;
            completions += 1;
        }
        for tx in &fifo_tx {
            tx.send(Job::Quit).expect("worker alive");
        }

        update_outcome = Some(update_thread.join().expect("update thread exits cleanly"));
        stop_printer.store(true, AtomicOrdering::Relaxed);
        // Worker and printer threads are joined implicitly by the scope.
    });

    let outcome = update_outcome.expect("update thread joined");
    RouterReport {
        snapshot: shared.stats.snapshot(),
        results,
        final_table: outcome.final_table,
        final_compressed: outcome.final_compressed,
        dynamic_redundancy: outcome.dynamic_redundancy,
        elapsed: start.elapsed(),
    }
}

struct UpdateOutcome {
    final_table: RouteTable,
    final_compressed: RouteTable,
    dynamic_redundancy: u64,
}

/// Sends a staged run of updates into the ingress queue under the
/// configured overflow policy; returns false when the update thread is
/// gone and the feeder should stop.
fn feed(
    ingress_tx: &Sender<Update>,
    overflow: OverflowPolicy,
    shared: &Shared,
    staged: &[Update],
) -> bool {
    for &u in staged {
        match overflow {
            OverflowPolicy::Block => {
                if ingress_tx.send(u).is_err() {
                    return false;
                }
            }
            OverflowPolicy::DropNewest => match ingress_tx.try_send(u) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => shared.stats.count_update_drop(),
                Err(TrySendError::Disconnected(_)) => return false,
            },
        }
    }
    true
}

/// The update plane: drain → coalesce → apply → flush DReds → publish.
fn update_loop(
    pipeline: &mut CluePipeline,
    mirror: &mut RouteTable,
    ingress: &Receiver<Update>,
    shared: &Shared,
    index: &RangeIndex,
    cfg: &RouterConfig,
) {
    let batch_size = cfg.batch_size;
    let workers = cfg.workers;
    let mut stall = cfg.faults.map(WriteStall::new);
    let mut epoch = 0u64;
    while let Ok(first) = ingress.recv() {
        // One quiescent window: whatever is already queued, up to the cap.
        let mut batch = Vec::with_capacity(batch_size);
        batch.push(first);
        while batch.len() < batch_size {
            match ingress.try_recv() {
                Ok(u) => batch.push(u),
                Err(_) => break,
            }
        }

        let coalesced = coalesce(&batch, mirror);
        let mut batch_ttf_ns = 0.0f64;
        let mut touched = false;
        for &op in &coalesced.ops {
            mirror.apply(op);
            let (sample, diff) = pipeline.apply_with_diff(op);
            if let Some(ws) = &mut stall {
                // The TCAM-write-stall seam: stretch the window between
                // entry writes and the epoch publish below.
                ws.on_ops(diff.op_count() as u64);
            }
            batch_ttf_ns += sample.total_ns();
            shared
                .stats
                .update()
                .ttf_update_ns
                .record(sample.total_ns() as u64);
            touched = touched || !diff.is_empty();
            // DRed sync, the paper's delete-if-present rule: flush every
            // prefix the diff removed or rewrote from every chip's DRed.
            for p in diff
                .deletes
                .iter()
                .chain(diff.modifies.iter().map(|r| &r.prefix))
            {
                for dred in &shared.dreds {
                    dred.lock().remove(*p);
                }
            }
        }

        {
            let mut u = shared.stats.update();
            u.received += coalesced.raw as u64;
            u.applied += coalesced.ops.len() as u64;
            u.superseded += coalesced.superseded as u64;
            u.cancelled += coalesced.cancelled as u64;
            u.elided += coalesced.elided as u64;
            u.batches += 1;
            u.ttf_batch_ns.record(batch_ttf_ns as u64);
        }

        // Publish the batch as one atomic epoch (skip if nothing moved).
        if touched {
            epoch += 1;
            let state =
                EpochState::build(epoch, &pipeline.fib().compressed_table(), index, workers);
            shared.epochs.publish(state);
            shared.stats.update().epochs += 1;
        }
    }
}

fn worker_loop(
    chip: usize,
    shared: &Shared,
    fifo: &Receiver<Job>,
    bounce: &Receiver<Job>,
    done: &Sender<(u64, Option<NextHop>)>,
    bounce_tx: &[Sender<Job>],
    index: &RangeIndex,
) {
    let mut epoch = shared.epochs.load();
    loop {
        // Bounced jobs have waited longest; when both lanes are empty,
        // block on either (blocking on the FIFO alone would strand a
        // final bounce-lane job).
        let job = match bounce.try_recv() {
            Ok(job) => job,
            Err(_) => {
                crossbeam::channel::select! {
                    recv(bounce) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                    recv(fifo) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                }
            }
        };
        shared.epochs.refresh(&mut epoch);
        match job {
            Job::Quit => return,
            Job::Home {
                addr,
                tag,
                t0,
                bounced,
            } => {
                let matched = epoch.tries[chip]
                    .lookup(addr)
                    .map(|(p, &nh)| Route::new(p, nh));
                if bounced {
                    if let Some(route) = matched {
                        // CLUE fill: every DRed except this chip's own.
                        for (i, dred) in shared.dreds.iter().enumerate() {
                            if i != chip {
                                dred.lock().insert(route);
                            }
                        }
                    }
                }
                finish(shared, chip, tag, matched.map(|r| r.next_hop), t0, done);
            }
            Job::Dred { addr, tag, t0 } => {
                let hit = shared.dreds[chip].lock().lookup(addr);
                match hit {
                    Some(nh) => {
                        shared.stats.count_dred_hit();
                        finish(shared, chip, tag, Some(nh), t0, done);
                    }
                    None => {
                        shared.stats.count_dred_miss();
                        shared.stats.worker(chip).serviced += 1;
                        let home = index.bucket_of(addr);
                        bounce_tx[home]
                            .send(Job::Home {
                                addr,
                                tag,
                                t0,
                                bounced: true,
                            })
                            .expect("home worker alive");
                    }
                }
            }
        }
    }
}

fn finish(
    shared: &Shared,
    chip: usize,
    tag: u64,
    nh: Option<NextHop>,
    t0: Instant,
    done: &Sender<(u64, Option<NextHop>)>,
) {
    {
        let mut w = shared.stats.worker(chip);
        w.serviced += 1;
        w.lookup_ns.record(t0.elapsed().as_nanos() as u64);
    }
    shared.stats.count_completion();
    done.send((tag, nh)).expect("collector alive");
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;
    use clue_traffic::{PacketGen, UpdateGen};

    fn setup(routes: usize, pkts: usize, upds: usize) -> (RouteTable, Vec<u32>, Vec<Update>) {
        let fib = FibGen::new(71).routes(routes).generate();
        let packets = PacketGen::new(72).generate(&fib, pkts);
        let updates = UpdateGen::new(73).generate(&fib, upds);
        (fib, packets, updates)
    }

    #[test]
    fn lookups_without_updates_match_reference() {
        let (fib, packets, _) = setup(2_000, 10_000, 0);
        let reference = onrtc(&fib).to_trie();
        let report = run(&fib, &packets, &[], &RouterConfig::default());
        assert!(report.packets_conserved());
        for (&addr, nh) in packets.iter().zip(&report.results) {
            assert_eq!(
                *nh,
                reference.lookup(addr).map(|(_, &v)| v),
                "addr {addr:#x}"
            );
        }
        assert_eq!(report.snapshot.epochs, 0);
    }

    #[test]
    fn updates_without_packets_reach_the_sequential_fib() {
        let (fib, _, updates) = setup(2_000, 0, 1_500);
        let report = run(&fib, &[], &updates, &RouterConfig::default());
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        let got: Vec<Route> = report.final_table.iter().collect();
        let want: Vec<Route> = expect.iter().collect();
        assert_eq!(got, want, "final FIB must equal sequential application");
        assert!(report.snapshot.epochs > 0);
        assert_eq!(
            report.snapshot.updates_received,
            updates.len() as u64,
            "Block policy loses nothing"
        );
    }

    #[test]
    fn tiny_fifos_divert_but_never_lose_packets() {
        let (fib, packets, updates) = setup(1_500, 12_000, 300);
        let cfg = RouterConfig {
            fifo_capacity: 2,
            dred_capacity: 512,
            ..RouterConfig::default()
        };
        let report = run(&fib, &packets, &updates, &cfg);
        assert!(report.packets_conserved());
        assert!(report.snapshot.diversions > 0, "tiny FIFOs must overflow");
        assert_eq!(
            report.snapshot.dred_hits + report.snapshot.dred_misses,
            report.snapshot.diversions
        );
    }

    #[test]
    fn drop_newest_accounts_for_every_rejected_update() {
        let (fib, _, updates) = setup(1_500, 0, 2_000);
        let cfg = RouterConfig {
            update_queue: 8,
            batch_size: 4,
            overflow: OverflowPolicy::DropNewest,
            ..RouterConfig::default()
        };
        let report = run(&fib, &[], &updates, &cfg);
        assert_eq!(
            report.snapshot.updates_received + report.snapshot.update_drops,
            updates.len() as u64,
            "ingress accounting must conserve updates"
        );
    }

    #[test]
    fn faulty_run_still_converges_to_the_sequential_fib() {
        let (fib, packets, updates) = setup(1_500, 5_000, 1_000);
        let cfg = RouterConfig {
            faults: Some(FaultPlan::chaos(99)),
            ..RouterConfig::default()
        };
        let report = run(&fib, &packets, &updates, &cfg);
        assert!(report.packets_conserved());
        assert_eq!(
            report.snapshot.updates_received,
            updates.len() as u64,
            "drop faults retransmit; Block policy still loses nothing"
        );
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        assert_eq!(
            report.final_table, expect,
            "per-prefix order preservation makes the final FIB fault-invariant"
        );
        assert_eq!(report.final_compressed, onrtc(&expect));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_workers() {
        let fib = FibGen::new(1).routes(10).generate();
        let _ = run(
            &fib,
            &[],
            &[],
            &RouterConfig {
                workers: 0,
                ..RouterConfig::default()
            },
        );
    }
}
