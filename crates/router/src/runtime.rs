//! The batch-run entry point over the long-running router service, and
//! the configuration/report types every frontend shares.
//!
//! Thread topology (see DESIGN.md §"clue-router"; the threads live in
//! [`crate::service`]):
//!
//! ```text
//!               packets                    updates
//!                  │                          │ bounded ingress
//!                  ▼                          ▼ (Block | DropNewest)
//!             dispatcher                update thread
//!         (index + diversion)      (batch → coalesce → CluePipeline)
//!            │ bounded FIFO │              │
//!            ▼      …       ▼              ▼ publish Arc<EpochState>
//!         worker 0  …  worker n-1   ◄── EpochCell (atomic version)
//!            │              │
//!            └── done ──────┘ → dispatcher (arrival-order accounting)
//! ```
//!
//! * Each worker owns one partition of the compressed table (via the
//!   current epoch's per-bucket trie) and shares one DRed per chip with
//!   the dispatcher's diverted path, exactly like the clock-driven
//!   engine of Figure 1.
//! * The update plane ingests a raw stream through a **bounded** queue
//!   — overflow is either blocking backpressure or counted
//!   `DropNewest`, never a silent loss — batches up to `batch_size`
//!   operations per quiescent window, coalesces them (last-op-wins,
//!   flap cancellation, no-op elision), pushes the survivors through
//!   [`CluePipeline`](clue_core::update_pipeline::CluePipeline), flushes
//!   affected prefixes from every worker DRed, and publishes the rebuilt
//!   per-bucket tries as one new epoch.
//! * Workers observe a batch atomically: they poll the epoch version
//!   once per packet and swap the whole `Arc<EpochState>` — never a
//!   half-applied table. DRed entries may lag one batch (a hit can
//!   serve the pre-batch next hop until the flush lands); this mirrors
//!   the transient staleness any real line card exhibits between a RIB
//!   change and data-plane convergence.
//!
//! [`run`] stages a fixed packet trace against a fixed update stream —
//! the harness the integration tests and `clue serve` (file mode) use.
//! Long-running frontends (the `clue-net` TCP server) drive
//! [`RouterService`](crate::service::RouterService) directly.

use std::time::{Duration, Instant};

use clue_core::lookup::BackendKind;
use clue_fib::{NextHop, RouteTable, Update};

use crate::faults::{FaultPlan, IngressPerturber};
use crate::service::RouterService;
use crate::stats::StatsSnapshot;

/// What to do when the bounded update ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Apply backpressure: the feeder blocks until space frees up.
    /// Every update is eventually applied (deterministic final FIB).
    Block,
    /// Reject the newest update and count it in
    /// [`StatsSnapshot::update_drops`] — never a silent loss.
    DropNewest,
}

/// Configuration of one router run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Lookup worker (chip) count.
    pub workers: usize,
    /// Per-worker bounded FIFO capacity (Figure 1's FIFOs).
    pub fifo_capacity: usize,
    /// Per-chip DRed capacity, in prefixes.
    pub dred_capacity: usize,
    /// Maximum updates applied per batch/epoch.
    pub batch_size: usize,
    /// Bounded update-ingress queue capacity.
    pub update_queue: usize,
    /// Ingress overflow policy.
    pub overflow: OverflowPolicy,
    /// Emit a JSON stats snapshot to stdout this often (None = never).
    pub snapshot_every: Option<Duration>,
    /// Seeded fault injection at the channel and TCAM-write seams
    /// (None = run clean). See [`FaultPlan`].
    pub faults: Option<FaultPlan>,
    /// Which lookup backend the published epochs compile to (the
    /// cycle-cost TCAM sim, the flattened multibit trie, or the
    /// entropy-style compressed FIB).
    pub backend: BackendKind,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 4,
            fifo_capacity: 256,
            dred_capacity: 1024,
            batch_size: 64,
            update_queue: 1024,
            overflow: OverflowPolicy::Block,
            snapshot_every: None,
            faults: None,
            backend: BackendKind::default(),
        }
    }
}

/// Outcome of a completed router run.
#[derive(Debug)]
pub struct RouterReport {
    /// Final aggregated stats (also rendered by `snapshot.to_json()`).
    pub snapshot: StatsSnapshot,
    /// Per-packet lookup results in arrival order ([`run`] only; a
    /// drained [`RouterService`] returned results to its callers).
    pub results: Vec<Option<NextHop>>,
    /// The original-form routing table after every applied update.
    pub final_table: RouteTable,
    /// The ONRTC-compressed table after every applied update.
    pub final_compressed: RouteTable,
    /// Cut-spanning replicas in the last published epoch (the dynamic
    /// redundancy accumulated since start-up).
    pub dynamic_redundancy: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RouterReport {
    /// Whether every packet handed in was accounted for (the runtime
    /// never drops packets; updates are the only droppable input).
    #[must_use]
    pub fn packets_conserved(&self) -> bool {
        self.snapshot.arrivals == self.snapshot.completions
            && self.snapshot.completions == self.results.len() as u64
    }
}

/// Runs `packets` and `updates` through a live multi-threaded router
/// built over `table` and returns the full report.
///
/// The update plane is single-threaded by design, so for
/// [`OverflowPolicy::Block`] the final FIB equals the sequential
/// application of `updates` to `table` regardless of thread timing —
/// the property the integration tests pin down.
///
/// # Panics
///
/// Panics if `table` is empty or `cfg` is degenerate (any zero size).
#[must_use]
pub fn run(
    table: &RouteTable,
    packets: &[u32],
    updates: &[Update],
    cfg: &RouterConfig,
) -> RouterReport {
    let start = Instant::now();
    let svc = RouterService::start(table, cfg);
    let mut results: Vec<Option<NextHop>> = Vec::new();

    std::thread::scope(|scope| {
        // Update feeder: an optional fault plan perturbs timing and
        // global order here, but never the per-prefix order (see
        // `faults`); the overflow policy is enforced inside the service.
        scope.spawn(|| {
            let mut perturber = cfg.faults.map(IngressPerturber::new);
            let mut staged: Vec<Update> = Vec::new();
            for &u in updates {
                staged.clear();
                match &mut perturber {
                    Some(p) => {
                        if let Some(d) = p.feeder_delay() {
                            std::thread::sleep(d);
                        }
                        p.push(u, &mut staged);
                    }
                    None => staged.push(u),
                }
                for &s in &staged {
                    let _ = svc.submit_update(s);
                }
            }
            if let Some(p) = perturber {
                staged.clear();
                p.finish(&mut staged);
                for &s in &staged {
                    let _ = svc.submit_update(s);
                }
            }
        });

        // Lookup plane races the update stream, exactly like a line
        // card: one big in-order batch through the dispatcher.
        results = svc.lookup_batch(packets.to_vec());
    });

    let mut report = svc.drain();
    report.results = results;
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;
    use clue_fib::Route;
    use clue_traffic::{PacketGen, UpdateGen};

    fn setup(routes: usize, pkts: usize, upds: usize) -> (RouteTable, Vec<u32>, Vec<Update>) {
        let fib = FibGen::new(71).routes(routes).generate();
        let packets = PacketGen::new(72).generate(&fib, pkts);
        let updates = UpdateGen::new(73).generate(&fib, upds);
        (fib, packets, updates)
    }

    #[test]
    fn lookups_without_updates_match_reference() {
        let (fib, packets, _) = setup(2_000, 10_000, 0);
        let reference = onrtc(&fib).to_trie();
        let report = run(&fib, &packets, &[], &RouterConfig::default());
        assert!(report.packets_conserved());
        for (&addr, nh) in packets.iter().zip(&report.results) {
            assert_eq!(
                *nh,
                reference.lookup(addr).map(|(_, &v)| v),
                "addr {addr:#x}"
            );
        }
        assert_eq!(report.snapshot.epochs, 0);
    }

    #[test]
    fn updates_without_packets_reach_the_sequential_fib() {
        let (fib, _, updates) = setup(2_000, 0, 1_500);
        let report = run(&fib, &[], &updates, &RouterConfig::default());
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        let got: Vec<Route> = report.final_table.iter().collect();
        let want: Vec<Route> = expect.iter().collect();
        assert_eq!(got, want, "final FIB must equal sequential application");
        assert!(report.snapshot.epochs > 0);
        assert_eq!(
            report.snapshot.updates_received,
            updates.len() as u64,
            "Block policy loses nothing"
        );
    }

    #[test]
    fn tiny_fifos_divert_but_never_lose_packets() {
        let (fib, packets, updates) = setup(1_500, 12_000, 300);
        let cfg = RouterConfig {
            fifo_capacity: 2,
            dred_capacity: 512,
            ..RouterConfig::default()
        };
        let report = run(&fib, &packets, &updates, &cfg);
        assert!(report.packets_conserved());
        assert!(report.snapshot.diversions > 0, "tiny FIFOs must overflow");
        assert_eq!(
            report.snapshot.dred_hits + report.snapshot.dred_misses,
            report.snapshot.diversions
        );
    }

    #[test]
    fn drop_newest_accounts_for_every_rejected_update() {
        let (fib, _, updates) = setup(1_500, 0, 2_000);
        let cfg = RouterConfig {
            update_queue: 8,
            batch_size: 4,
            overflow: OverflowPolicy::DropNewest,
            ..RouterConfig::default()
        };
        let report = run(&fib, &[], &updates, &cfg);
        assert_eq!(
            report.snapshot.updates_received + report.snapshot.update_drops,
            updates.len() as u64,
            "ingress accounting must conserve updates"
        );
    }

    #[test]
    fn faulty_run_still_converges_to_the_sequential_fib() {
        let (fib, packets, updates) = setup(1_500, 5_000, 1_000);
        let cfg = RouterConfig {
            faults: Some(FaultPlan::chaos(99)),
            ..RouterConfig::default()
        };
        let report = run(&fib, &packets, &updates, &cfg);
        assert!(report.packets_conserved());
        assert_eq!(
            report.snapshot.updates_received,
            updates.len() as u64,
            "drop faults retransmit; Block policy still loses nothing"
        );
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        assert_eq!(
            report.final_table, expect,
            "per-prefix order preservation makes the final FIB fault-invariant"
        );
        assert_eq!(report.final_compressed, onrtc(&expect));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_workers() {
        let fib = FibGen::new(1).routes(10).generate();
        let _ = run(
            &fib,
            &[],
            &[],
            &RouterConfig {
                workers: 0,
                ..RouterConfig::default()
            },
        );
    }
}
