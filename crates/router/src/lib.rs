//! `clue-router` — a long-running, concurrent realization of the CLUE
//! update/lookup co-design.
//!
//! The rest of the workspace models CLUE's hardware (clock-driven
//! [`clue_core::engine`]) or measures its pieces in isolation; this
//! crate wires those pieces into a live service:
//!
//! * **lookup plane** — one worker thread per TCAM chip, each owning a
//!   partition of the ONRTC-compressed table and a shared DRed, fed by
//!   a dispatcher over bounded FIFOs with full-FIFO diversion
//!   ([`runtime`]);
//! * **update plane** — a single thread ingesting a BGP-like stream
//!   through a bounded, overflow-accounted queue, batching and
//!   coalescing it ([`coalesce`]) before applying it through
//!   [`clue_core::update_pipeline::CluePipeline`];
//! * **epoch handoff** — each applied batch is published as one
//!   immutable [`epoch::EpochState`] so workers observe it atomically;
//! * **observability** — a [`stats::RouterStats`] registry aggregating
//!   per-worker histograms into hand-rolled JSON snapshots.
//!
//! Entry point: [`runtime::run`] (or `clue serve` on the CLI).

#![warn(missing_docs)]

pub mod coalesce;
pub mod epoch;
pub mod faults;
pub mod journal;
pub mod runtime;
pub mod service;
pub mod stats;

pub use clue_core::lookup::BackendKind;
pub use coalesce::{coalesce, CoalescedBatch};
pub use epoch::{EpochCell, EpochState};
pub use faults::{FaultPlan, IngressPerturber, WriteStall};
pub use journal::{CheckpointView, JournalBatch, RecoveredState, UpdateJournal};
pub use runtime::{run, OverflowPolicy, RouterConfig, RouterReport};
pub use service::{RouterService, SubmitOutcome};
pub use stats::{PlaneInfo, RouterStats, StatsSnapshot};
