//! The router's metrics registry and its JSON snapshots.
//!
//! Every worker owns a slot of per-thread [`Histogram`]s behind a
//! `parking_lot` mutex (contended only by the snapshot reader); the
//! update plane has one more slot; hard counters are atomics. A
//! [`StatsSnapshot`] is a consistent-enough point-in-time aggregation —
//! worker histograms are merged with [`Histogram::merge`] — rendered to
//! JSON by hand (the workspace deliberately carries no serde).

use std::sync::atomic::{AtomicU64, Ordering};

use clue_core::lookup::BackendKind;
use clue_core::metrics::Histogram;
use parking_lot::Mutex;

/// Per-worker mutable metrics.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Enqueue-to-completion latency of each lookup, nanoseconds.
    pub lookup_ns: Histogram,
    /// Home-FIFO depth observed at each dispatch to this worker.
    pub queue_depth: Histogram,
    /// Lookups serviced by this worker (home + diverted).
    pub serviced: u64,
}

/// Update-plane mutable metrics.
#[derive(Debug, Default)]
pub struct UpdateStats {
    /// Time-to-fresh of each applied update (all three stages), ns.
    pub ttf_update_ns: Histogram,
    /// Summed TTF of each applied batch, ns.
    pub ttf_batch_ns: Histogram,
    /// Raw updates taken off the ingress queue.
    pub received: u64,
    /// Updates that survived coalescing and reached the pipeline.
    pub applied: u64,
    /// Updates absorbed by a later op on the same prefix.
    pub superseded: u64,
    /// Announce-then-withdraw pairs that annihilated.
    pub cancelled: u64,
    /// No-op announcements elided.
    pub elided: u64,
    /// Batches applied (including all-absorbed ones).
    pub batches: u64,
    /// Epochs published (batches that changed the table).
    pub epochs: u64,
}

/// The registry all router threads report into.
#[derive(Debug)]
pub struct RouterStats {
    workers: Vec<Mutex<WorkerStats>>,
    update: Mutex<UpdateStats>,
    arrivals: AtomicU64,
    completions: AtomicU64,
    diversions: AtomicU64,
    dred_hits: AtomicU64,
    dred_misses: AtomicU64,
    update_drops: AtomicU64,
    journal_appends: AtomicU64,
    journal_errors: AtomicU64,
}

impl RouterStats {
    /// Creates a registry with `workers` worker slots.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        RouterStats {
            workers: (0..workers)
                .map(|_| Mutex::new(WorkerStats::default()))
                .collect(),
            update: Mutex::new(UpdateStats::default()),
            arrivals: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            diversions: AtomicU64::new(0),
            dred_hits: AtomicU64::new(0),
            dred_misses: AtomicU64::new(0),
            update_drops: AtomicU64::new(0),
            journal_appends: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
        }
    }

    /// Number of worker slots.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Locks worker `i`'s slot for recording.
    pub fn worker(&self, i: usize) -> parking_lot::MutexGuard<'_, WorkerStats> {
        self.workers[i].lock()
    }

    /// Locks the update-plane slot for recording.
    pub fn update(&self) -> parking_lot::MutexGuard<'_, UpdateStats> {
        self.update.lock()
    }

    /// Counts one packet handed to the dispatcher.
    pub fn count_arrival(&self) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one completed lookup.
    pub fn count_completion(&self) {
        self.completions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one packet diverted off a full home FIFO.
    pub fn count_diversion(&self) {
        self.diversions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one DRed hit.
    pub fn count_dred_hit(&self) {
        self.dred_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one DRed miss (bounced home).
    pub fn count_dred_miss(&self) {
        self.dred_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one update rejected by the ingress overflow policy.
    pub fn count_update_drop(&self) {
        self.update_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates dropped so far (backpressure accounting).
    #[must_use]
    pub fn update_drops(&self) -> u64 {
        self.update_drops.load(Ordering::Relaxed)
    }

    /// Counts one batch journaled to the write-ahead log.
    pub fn count_journal_append(&self) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed journal append or checkpoint.
    pub fn count_journal_error(&self) {
        self.journal_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time aggregated snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut lookup_ns = Histogram::new();
        let mut queue_depth = Histogram::new();
        let mut per_worker_serviced = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let w = w.lock();
            lookup_ns.merge(&w.lookup_ns);
            queue_depth.merge(&w.queue_depth);
            per_worker_serviced.push(w.serviced);
        }
        let u = self.update.lock();
        let absorbed = u.received.saturating_sub(u.applied);
        StatsSnapshot {
            workers: self.workers.len(),
            lookup_ns,
            queue_depth,
            per_worker_serviced,
            ttf_update_ns: u.ttf_update_ns.clone(),
            ttf_batch_ns: u.ttf_batch_ns.clone(),
            updates_received: u.received,
            updates_applied: u.applied,
            updates_superseded: u.superseded,
            updates_cancelled: u.cancelled,
            updates_elided: u.elided,
            batches: u.batches,
            epochs: u.epochs,
            coalesce_ratio: if u.received == 0 {
                0.0
            } else {
                absorbed as f64 / u.received as f64
            },
            arrivals: self.arrivals.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            diversions: self.diversions.load(Ordering::Relaxed),
            dred_hits: self.dred_hits.load(Ordering::Relaxed),
            dred_misses: self.dred_misses.load(Ordering::Relaxed),
            update_drops: self.update_drops.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            plane: None,
        }
    }
}

/// What the currently published lookup plane looks like: which backend
/// compiled it, how big it is, and what it costs in memory. Collected
/// from the live [`EpochState`](crate::EpochState) by
/// [`RouterService::stats`](crate::RouterService::stats); `None` in
/// snapshots taken straight off a [`RouterStats`] registry, which has
/// no view of the epoch.
#[derive(Debug, Clone)]
pub struct PlaneInfo {
    /// Backend compiling every per-chip plane of this epoch.
    pub backend: BackendKind,
    /// The published epoch number.
    pub epoch: u64,
    /// Entries in the compressed table the epoch was built from.
    pub entries: usize,
    /// Total heap bytes across all per-chip planes.
    pub heap_bytes: usize,
    /// Routes stored in more than one bucket (dynamic redundancy).
    pub replicated: u64,
}

impl PlaneInfo {
    /// Renders as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"epoch\":{},\"entries\":{},\
             \"heap_bytes\":{},\"replicated\":{}}}",
            self.backend.name(),
            self.epoch,
            self.entries,
            self.heap_bytes,
            self.replicated,
        )
    }
}

/// An immutable aggregated view, renderable as JSON.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Worker count.
    pub workers: usize,
    /// Merged lookup-latency histogram (ns).
    pub lookup_ns: Histogram,
    /// Merged dispatch-time queue-depth histogram.
    pub queue_depth: Histogram,
    /// Lookups serviced per worker.
    pub per_worker_serviced: Vec<u64>,
    /// Per-update TTF histogram (ns).
    pub ttf_update_ns: Histogram,
    /// Per-batch TTF histogram (ns).
    pub ttf_batch_ns: Histogram,
    /// Raw updates ingested.
    pub updates_received: u64,
    /// Updates applied post-coalescing.
    pub updates_applied: u64,
    /// Updates absorbed by a later op on the same prefix.
    pub updates_superseded: u64,
    /// Annihilated announce-then-withdraw pairs.
    pub updates_cancelled: u64,
    /// Elided no-op announcements.
    pub updates_elided: u64,
    /// Batches processed.
    pub batches: u64,
    /// Epochs published.
    pub epochs: u64,
    /// Fraction of ingested updates absorbed before the pipeline.
    pub coalesce_ratio: f64,
    /// Packets handed to the dispatcher.
    pub arrivals: u64,
    /// Lookups completed.
    pub completions: u64,
    /// Packets diverted off a full home FIFO.
    pub diversions: u64,
    /// DRed hits on the diverted path.
    pub dred_hits: u64,
    /// DRed misses (bounced home).
    pub dred_misses: u64,
    /// Updates rejected by the ingress overflow policy.
    pub update_drops: u64,
    /// Batches journaled to the write-ahead log (0 without a journal).
    pub journal_appends: u64,
    /// Failed journal appends/checkpoints (acks held back, batches
    /// still applied).
    pub journal_errors: u64,
    /// The published lookup plane (backend, size, heap) — filled by
    /// [`RouterService::stats`](crate::RouterService::stats), `None`
    /// from a bare registry snapshot.
    pub plane: Option<PlaneInfo>,
}

impl StatsSnapshot {
    /// Renders the snapshot as a single JSON object (one line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let serviced = self
            .per_worker_serviced
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"workers\":{},\"lookup_ns\":{},\"queue_depth\":{},\
             \"per_worker_serviced\":[{}],\
             \"ttf_update_ns\":{},\"ttf_batch_ns\":{},\
             \"updates\":{{\"received\":{},\"applied\":{},\"superseded\":{},\
             \"cancelled\":{},\"elided\":{},\"batches\":{},\"epochs\":{},\
             \"coalesce_ratio\":{:.4},\"dropped\":{}}},\
             \"overflow\":{{\"update_drops\":{}}},\
             \"journal\":{{\"appends\":{},\"errors\":{}}},\
             \"packets\":{{\"arrivals\":{},\"completions\":{},\"diversions\":{},\
             \"dred_hits\":{},\"dred_misses\":{}}},\
             \"plane\":{}}}",
            self.workers,
            self.lookup_ns.to_json(),
            self.queue_depth.to_json(),
            serviced,
            self.ttf_update_ns.to_json(),
            self.ttf_batch_ns.to_json(),
            self.updates_received,
            self.updates_applied,
            self.updates_superseded,
            self.updates_cancelled,
            self.updates_elided,
            self.batches,
            self.epochs,
            self.coalesce_ratio,
            self.update_drops,
            self.update_drops,
            self.journal_appends,
            self.journal_errors,
            self.arrivals,
            self.completions,
            self.diversions,
            self.dred_hits,
            self.dred_misses,
            self.plane
                .as_ref()
                .map_or_else(|| "null".to_string(), PlaneInfo::to_json),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merges_worker_histograms() {
        let stats = RouterStats::new(3);
        stats.worker(0).lookup_ns.record(100);
        stats.worker(1).lookup_ns.record(1_000);
        stats.worker(2).lookup_ns.record(10_000);
        stats.worker(0).serviced = 5;
        stats.worker(2).serviced = 7;
        let s = stats.snapshot();
        assert_eq!(s.lookup_ns.count(), 3);
        assert_eq!(s.lookup_ns.min(), 100);
        assert_eq!(s.lookup_ns.max(), 10_000);
        assert_eq!(s.per_worker_serviced, vec![5, 0, 7]);
    }

    #[test]
    fn coalesce_ratio_tracks_absorption() {
        let stats = RouterStats::new(1);
        {
            let mut u = stats.update();
            u.received = 100;
            u.applied = 60;
        }
        let s = stats.snapshot();
        assert!((s.coalesce_ratio - 0.4).abs() < 1e-9);
        assert_eq!(RouterStats::new(1).snapshot().coalesce_ratio, 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let stats = RouterStats::new(2);
        stats.worker(0).lookup_ns.record(42);
        stats.count_arrival();
        stats.count_completion();
        stats.count_update_drop();
        let json = stats.snapshot().to_json();
        // Balanced braces/brackets and the headline fields present.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"lookup_ns\":",
            "\"ttf_batch_ns\":",
            "\"coalesce_ratio\":",
            "\"dropped\":1",
            "\"overflow\":{\"update_drops\":1}",
            "\"journal\":{\"appends\":0,\"errors\":0}",
            "\"arrivals\":1",
            "\"completions\":1",
            "\"p99\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN"));
    }
}
