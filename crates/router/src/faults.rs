//! Seeded fault injection for the router runtime.
//!
//! The conformance harness (`clue-oracle`, `clue check --faults`) needs
//! to shake the concurrent seams of [`runtime::run`](crate::runtime::run)
//! — channel hand-off timing, update-batch boundaries, TCAM write
//! latency — while still being able to assert that the final FIB equals
//! the sequential application of the update trace. A [`FaultPlan`]
//! therefore only injects perturbations that a correct runtime must
//! absorb:
//!
//! * **delay** — the feeder sleeps a bounded random time before handing
//!   an update to the ingress queue (shifts batch boundaries);
//! * **reorder** — an update is held back and re-injected up to a
//!   bounded number of sends later;
//! * **drop (with retransmit)** — an update is held back until the end
//!   of the stream and re-injected there, modeling a lost-then-resent
//!   control message rather than a silent loss (a true silent drop
//!   would legitimately change the final table and make convergence
//!   unfalsifiable);
//! * **TCAM write stall** — the update plane sleeps after every N
//!   entry operations, stretching the window in which workers serve
//!   lookups from the previous epoch.
//!
//! Reordering is safe to inject because updates on *distinct* prefixes
//! commute on the final table state (see [`crate::coalesce`]); the
//! [`IngressPerturber`] guarantees it never lets a held-back update be
//! overtaken by a later update on the **same** prefix, so the per-prefix
//! subsequences — the only order that matters — are preserved exactly.
//!
//! All randomness is a seeded xorshift: the same plan replays the same
//! perturbation, which is what lets a failing `clue check` run shrink
//! its trace into a deterministic reproducer.

use std::time::Duration;

use clue_fib::Update;

/// A seeded fault-injection plan for one router run.
///
/// Probabilities are expressed in per-mille (0–1000) so the plan stays
/// `Eq`/`Hash`-able and trivially parseable from CLI flags. A field set
/// to zero disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the perturbation RNG (independent of workload seeds).
    pub seed: u64,
    /// Per-update probability (‰) of sleeping before the ingress send.
    pub delay_per_mille: u32,
    /// Upper bound for one injected feeder delay, microseconds.
    pub max_delay_us: u64,
    /// Per-update probability (‰) of holding the update back so later
    /// (distinct-prefix) updates overtake it.
    pub reorder_per_mille: u32,
    /// How many subsequent sends a held-back update may lag behind.
    pub reorder_horizon: u32,
    /// Per-update probability (‰) of "dropping" the update: it is held
    /// until the end of the stream and retransmitted there.
    pub drop_per_mille: u32,
    /// Stall the update plane after this many TCAM entry operations
    /// (0 disables the write-stall mode).
    pub write_stall_every: u64,
    /// Length of one TCAM write stall, microseconds.
    pub write_stall_us: u64,
}

impl FaultPlan {
    /// A plan exercising every fault class at once with bounds small
    /// enough for CI: the default behind `clue check --faults on`.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_per_mille: 50,
            max_delay_us: 200,
            reorder_per_mille: 150,
            reorder_horizon: 32,
            drop_per_mille: 30,
            write_stall_every: 64,
            write_stall_us: 100,
        }
    }

    /// Whether the plan injects nothing (all classes disabled).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.delay_per_mille == 0
            && self.reorder_per_mille == 0
            && self.drop_per_mille == 0
            && self.write_stall_every == 0
    }
}

/// Deterministic xorshift64* RNG for fault decisions.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub(crate) fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; fold in a constant.
        FaultRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// True with probability `per_mille` / 1000.
    pub(crate) fn chance(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.next_u64() % 1000 < u64::from(per_mille)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// One held-back update: `None` horizon means "retransmit at end of
/// stream" (the drop class), `Some(n)` means "re-inject after at most
/// `n` more sends" (the reorder class).
#[derive(Debug, Clone, Copy)]
struct Held {
    update: Update,
    horizon: Option<u32>,
}

/// The feeder-side perturbation state: delays, reorders, and
/// drop-with-retransmit, preserving per-prefix order.
#[derive(Debug)]
pub struct IngressPerturber {
    plan: FaultPlan,
    rng: FaultRng,
    held: Vec<Held>,
}

impl IngressPerturber {
    /// Creates the perturber for one run.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        IngressPerturber {
            rng: FaultRng::new(plan.seed),
            plan,
            held: Vec::new(),
        }
    }

    /// A bounded random sleep before the next ingress send, if the plan
    /// rolled one.
    pub fn feeder_delay(&mut self) -> Option<Duration> {
        (self.rng.chance(self.plan.delay_per_mille) && self.plan.max_delay_us > 0)
            .then(|| Duration::from_micros(1 + self.rng.below(self.plan.max_delay_us)))
    }

    /// Feeds one update through the perturber; everything pushed onto
    /// `out` must be sent to the ingress queue, in order.
    pub fn push(&mut self, update: Update, out: &mut Vec<Update>) {
        // Per-prefix order guard: a later update on the same prefix may
        // never overtake a held-back one, so flush those first.
        let prefix = update.prefix();
        if self.held.iter().any(|h| h.update.prefix() == prefix) {
            let mut kept = Vec::with_capacity(self.held.len());
            for h in self.held.drain(..) {
                if h.update.prefix() == prefix {
                    out.push(h.update);
                } else {
                    kept.push(h);
                }
            }
            self.held = kept;
        }

        if self.rng.chance(self.plan.drop_per_mille) {
            self.held.push(Held {
                update,
                horizon: None,
            });
            return;
        }
        if self.rng.chance(self.plan.reorder_per_mille) {
            self.held.push(Held {
                update,
                horizon: Some(self.plan.reorder_horizon.max(1)),
            });
            return;
        }
        self.emit(update, out);
    }

    /// Emits one update and ages every reorder-held entry by one send,
    /// re-injecting the expired ones.
    fn emit(&mut self, update: Update, out: &mut Vec<Update>) {
        out.push(update);
        let mut kept = Vec::with_capacity(self.held.len());
        for mut h in self.held.drain(..) {
            match h.horizon {
                Some(1) => out.push(h.update),
                Some(n) => {
                    h.horizon = Some(n - 1);
                    kept.push(h);
                }
                None => kept.push(h),
            }
        }
        self.held = kept;
    }

    /// Flushes every still-held update (stream end: retransmissions and
    /// unexpired reorders), in hold order.
    pub fn finish(mut self, out: &mut Vec<Update>) {
        for h in self.held.drain(..) {
            out.push(h.update);
        }
    }
}

/// The TCAM-write-stall state for the update plane.
#[derive(Debug)]
pub struct WriteStall {
    every: u64,
    stall: Duration,
    ops_since_stall: u64,
}

impl WriteStall {
    /// Creates the stall tracker from a plan (no-op if disabled).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        WriteStall {
            every: plan.write_stall_every,
            stall: Duration::from_micros(plan.write_stall_us),
            ops_since_stall: 0,
        }
    }

    /// Accounts `ops` TCAM entry operations and sleeps once per
    /// configured quota crossed.
    pub fn on_ops(&mut self, ops: u64) {
        if self.every == 0 || self.stall.is_zero() {
            return;
        }
        self.ops_since_stall += ops;
        while self.ops_since_stall >= self.every {
            self.ops_since_stall -= self.every;
            std::thread::sleep(self.stall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn upd(i: u32, announce: bool) -> Update {
        let prefix = Prefix::new(i << 16, 16);
        if announce {
            Update::Announce {
                prefix,
                next_hop: NextHop((i % 7) as u16),
            }
        } else {
            Update::Withdraw { prefix }
        }
    }

    /// Runs a trace through the perturber and returns the emitted order.
    fn perturb(plan: FaultPlan, trace: &[Update]) -> Vec<Update> {
        let mut p = IngressPerturber::new(plan);
        let mut out = Vec::new();
        for &u in trace {
            p.push(u, &mut out);
        }
        p.finish(&mut out);
        out
    }

    fn mixed_trace(n: u32) -> Vec<Update> {
        // Several updates per prefix so per-prefix order is non-trivial.
        (0..n).map(|i| upd(i % 17, i % 3 != 2)).collect()
    }

    #[test]
    fn noop_plan_is_identity() {
        let plan = FaultPlan {
            seed: 1,
            delay_per_mille: 0,
            max_delay_us: 0,
            reorder_per_mille: 0,
            reorder_horizon: 0,
            drop_per_mille: 0,
            write_stall_every: 0,
            write_stall_us: 0,
        };
        assert!(plan.is_noop());
        let trace = mixed_trace(200);
        assert_eq!(perturb(plan, &trace), trace);
    }

    #[test]
    fn chaos_output_is_a_permutation() {
        let trace = mixed_trace(500);
        let out = perturb(FaultPlan::chaos(42), &trace);
        assert_eq!(out.len(), trace.len(), "nothing lost or duplicated");
        let mut a = trace.clone();
        let mut b = out.clone();
        a.sort_by_key(|u| (u.prefix(), u.is_announce(), format!("{u}")));
        b.sort_by_key(|u| (u.prefix(), u.is_announce(), format!("{u}")));
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_preserves_per_prefix_order() {
        let trace = mixed_trace(800);
        for seed in [1u64, 7, 99, 1234] {
            let out = perturb(FaultPlan::chaos(seed), &trace);
            for i in 0..17u32 {
                let p = Prefix::new(i << 16, 16);
                let want: Vec<Update> = trace.iter().copied().filter(|u| u.prefix() == p).collect();
                let got: Vec<Update> = out.iter().copied().filter(|u| u.prefix() == p).collect();
                assert_eq!(got, want, "seed {seed}, prefix {p}");
            }
        }
    }

    #[test]
    fn chaos_actually_reorders_something() {
        let trace: Vec<Update> = (0..400).map(|i| upd(i, true)).collect(); // distinct prefixes
        let out = perturb(FaultPlan::chaos(3), &trace);
        assert_ne!(out, trace, "chaos plan must perturb the global order");
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let trace = mixed_trace(300);
        assert_eq!(
            perturb(FaultPlan::chaos(9), &trace),
            perturb(FaultPlan::chaos(9), &trace)
        );
    }

    #[test]
    fn write_stall_disabled_never_sleeps() {
        let mut ws = WriteStall::new(FaultPlan {
            write_stall_every: 0,
            ..FaultPlan::chaos(1)
        });
        let t0 = std::time::Instant::now();
        ws.on_ops(1_000_000);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn rng_chance_bounds() {
        let mut rng = FaultRng::new(5);
        assert!(!(0..100).any(|_| rng.chance(0)));
        assert!((0..100).all(|_| rng.chance(1000)));
        assert!((0..100).all(|_| rng.below(10) < 10));
        assert_eq!(rng.below(0), 0);
    }
}
