//! The long-running router service: the same thread topology as
//! [`runtime::run`](crate::runtime::run), exposed as a handle that
//! accepts work incrementally instead of as two pre-staged slices.
//!
//! [`RouterService`] owns the lookup workers, the dispatcher, and the
//! update plane. Callers — the in-process [`runtime::run`]
//! harness as much as the `clue-net` TCP frontend — push updates one at
//! a time through the bounded ingress (so the configured
//! [`OverflowPolicy`] decides between blocking backpressure and counted
//! drops at the *caller's* seam) and submit lookup batches that are
//! dispatched per-address through the home-FIFO/diversion/DRed path and
//! returned in order.
//!
//! Shutdown is a graceful drain ([`RouterService::drain`]): the lookup
//! and ingress channels close, the dispatcher completes every pending
//! batch and quiesces the workers, the update plane applies whatever is
//! still queued and publishes the final epoch, and the joined outcome is
//! returned as a [`RouterReport`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use clue_cache::LruPrefixCache;
use clue_core::update_pipeline::CluePipeline;
use clue_core::BackendKind;
use clue_fib::{NextHop, Route, RouteTable, Update};
use clue_partition::{EvenRangePartition, Indexer, RangeIndex};
use clue_tile::{TileConfig, TileSet};

use crate::coalesce::coalesce;
use crate::epoch::{EpochCell, EpochState};
use crate::faults::WriteStall;
use crate::journal::{CheckpointView, JournalBatch, RecoveredState, UpdateJournal};
use crate::runtime::{OverflowPolicy, RouterConfig, RouterReport};
use crate::stats::{RouterStats, StatsSnapshot};

/// One unit of worker work (a packet somewhere on its lookup path).
enum Job {
    /// Full lookup on the home chip's partition trie.
    Home {
        addr: u32,
        tag: u64,
        t0: Instant,
        bounced: bool,
    },
    /// DRed-only attempt on a non-home chip (diverted packet).
    Dred {
        addr: u32,
        tag: u64,
        t0: Instant,
    },
    Quit,
}

/// The journaled-sequence high-water mark: a monotone counter the
/// update thread advances after each successful journal append, which
/// frontends wait on before acknowledging a batch (ack ⇒ journaled).
/// The vendored `parking_lot` shim has no `Condvar`, so this uses std.
struct SeqWater {
    hw: StdMutex<u64>,
    cv: Condvar,
}

impl SeqWater {
    fn new(initial: u64) -> Self {
        SeqWater {
            hw: StdMutex::new(initial),
            cv: Condvar::new(),
        }
    }

    fn advance(&self, to: u64) {
        let mut hw = self.hw.lock().expect("seq water not poisoned");
        if to > *hw {
            *hw = to;
            self.cv.notify_all();
        }
    }

    fn wait_for(&self, seq: u64, timeout: Duration) -> bool {
        let hw = self.hw.lock().expect("seq water not poisoned");
        let (hw, _) = self
            .cv
            .wait_timeout_while(hw, timeout, |hw| *hw < seq)
            .expect("seq water not poisoned");
        *hw >= seq
    }
}

/// State shared by every router thread.
struct Shared {
    dreds: Vec<Mutex<LruPrefixCache>>,
    epochs: EpochCell,
    stats: RouterStats,
    journaled: SeqWater,
}

/// One submitted lookup batch awaiting dispatch.
struct LookupRequest {
    addrs: Vec<u32>,
    reply: Sender<Vec<Option<NextHop>>>,
}

/// What the update thread hands back when it drains out.
pub(crate) struct UpdateOutcome {
    pub(crate) final_table: RouteTable,
    pub(crate) final_compressed: RouteTable,
    pub(crate) dynamic_redundancy: u64,
}

/// Outcome of submitting one update to the bounded ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The update entered the ingress queue (possibly after blocking).
    Accepted,
    /// [`OverflowPolicy::DropNewest`] rejected it; the drop is counted
    /// in [`StatsSnapshot::update_drops`].
    Dropped,
}

/// A live, incrementally-fed router: workers, dispatcher, and update
/// plane behind a handle. See the module docs for the drain contract.
pub struct RouterService {
    lookup_tx: Option<Sender<LookupRequest>>,
    ingress_tx: Option<Sender<(Update, u64)>>,
    overflow: OverflowPolicy,
    shared: Arc<Shared>,
    started: Instant,
    stop_printer: Arc<AtomicBool>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    update_thread: Option<JoinHandle<UpdateOutcome>>,
    printer: Option<JoinHandle<()>>,
    journal_active: bool,
}

impl RouterService {
    /// Boots the full thread topology over `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is empty or `cfg` is degenerate (any zero
    /// size), exactly like [`runtime::run`](crate::runtime::run).
    #[must_use]
    pub fn start(table: &RouteTable, cfg: &RouterConfig) -> Self {
        Self::start_inner(table, 0, 0, Vec::new(), cfg, None)
    }

    /// Boots like [`start`](Self::start) with a write-ahead journal on
    /// the update plane: every coalesced batch goes through
    /// [`UpdateJournal::append`] before it is applied.
    ///
    /// # Panics
    ///
    /// Same conditions as [`start`](Self::start).
    #[must_use]
    pub fn start_with_journal(
        table: &RouteTable,
        cfg: &RouterConfig,
        journal: Box<dyn UpdateJournal>,
    ) -> Self {
        Self::start_inner(table, 0, 0, Vec::new(), cfg, Some(journal))
    }

    /// Boots from a [`RecoveredState`]: epoch numbering resumes after
    /// `state.epoch`, the journaled high-water starts at
    /// `state.seq_hw` (so a frontend advertises the recovered ack
    /// position to resuming clients), and the recovered DRed contents
    /// pre-warm the caches when the chip count still matches.
    ///
    /// # Panics
    ///
    /// Same conditions as [`start`](Self::start).
    #[must_use]
    pub fn start_recovered(
        state: &RecoveredState,
        cfg: &RouterConfig,
        journal: Option<Box<dyn UpdateJournal>>,
    ) -> Self {
        let dreds = if state.dreds.len() == cfg.workers {
            state.dreds.clone()
        } else {
            Vec::new()
        };
        Self::start_inner(&state.table, state.epoch, state.seq_hw, dreds, cfg, journal)
    }

    fn start_inner(
        table: &RouteTable,
        epoch0: u64,
        seq_hw0: u64,
        dred_seed: Vec<Vec<Route>>,
        cfg: &RouterConfig,
        journal: Option<Box<dyn UpdateJournal>>,
    ) -> Self {
        assert!(!table.is_empty(), "need a routing table to serve");
        assert!(
            cfg.workers > 0
                && cfg.fifo_capacity > 0
                && cfg.dred_capacity > 0
                && cfg.batch_size > 0
                && cfg.update_queue > 0,
            "router config sizes must be positive"
        );

        let mut pipeline =
            CluePipeline::new(table, cfg.workers, cfg.dred_capacity, table.len() + 1024);
        let compressed0 = pipeline.fib().compressed_table();
        let index: RangeIndex = EvenRangePartition::split(&compressed0, cfg.workers)
            .index()
            .clone();
        // Tiled backend: one persistent maintainer tracks the compressed
        // table across batches, so each publish rewrites only the touched
        // tiles and snapshots the rest by `Arc` instead of recompiling
        // every bucket from scratch. It is born here and lives in the
        // update thread.
        let tileset0 = (cfg.backend == BackendKind::Tiled).then(|| {
            let routes: Vec<Route> = compressed0.iter().collect();
            TileSet::build(TileConfig::default(), &routes)
        });
        let first_epoch = match &tileset0 {
            Some(ts) => EpochState::from_tileset(epoch0, ts, &index, cfg.workers),
            None => EpochState::build(epoch0, &compressed0, &index, cfg.workers, cfg.backend),
        };

        let shared = Arc::new(Shared {
            dreds: (0..cfg.workers)
                .map(|chip| {
                    let mut dred = LruPrefixCache::new(cfg.dred_capacity);
                    // Pre-warm with recovered DRed contents, keeping
                    // only routes still live in the compressed table
                    // (delete-if-present would have flushed the rest).
                    if let Some(routes) = dred_seed.get(chip) {
                        for &r in routes {
                            if compressed0.get(r.prefix) == Some(r.next_hop) {
                                dred.insert(r);
                            }
                        }
                    }
                    Mutex::new(dred)
                })
                .collect(),
            epochs: EpochCell::new(first_epoch),
            stats: RouterStats::new(cfg.workers),
            journaled: SeqWater::new(seq_hw0),
        });

        let mut fifo_tx: Vec<Sender<Job>> = Vec::new();
        let mut fifo_rx: Vec<Receiver<Job>> = Vec::new();
        let mut bounce_tx: Vec<Sender<Job>> = Vec::new();
        let mut bounce_rx: Vec<Receiver<Job>> = Vec::new();
        for _ in 0..cfg.workers {
            let (tx, rx) = bounded::<Job>(cfg.fifo_capacity);
            fifo_tx.push(tx);
            fifo_rx.push(rx);
            let (tx, rx) = unbounded::<Job>();
            bounce_tx.push(tx);
            bounce_rx.push(rx);
        }
        let (done_tx, done_rx) = unbounded::<(u64, Option<NextHop>)>();
        let (ingress_tx, ingress_rx) = bounded::<(Update, u64)>(cfg.update_queue);
        let (lookup_tx, lookup_rx) = unbounded::<LookupRequest>();

        let mut workers = Vec::with_capacity(cfg.workers);
        for chip in 0..cfg.workers {
            let shared = Arc::clone(&shared);
            let my_fifo = fifo_rx[chip].clone();
            let my_bounce = bounce_rx[chip].clone();
            let done = done_tx.clone();
            let home_bounce_tx: Vec<Sender<Job>> = bounce_tx.clone();
            let index = index.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    chip,
                    &shared,
                    &my_fifo,
                    &my_bounce,
                    &done,
                    &home_bounce_tx,
                    &index,
                );
            }));
        }
        drop(done_tx);

        let dispatcher = {
            let shared = Arc::clone(&shared);
            let index = index.clone();
            std::thread::spawn(move || {
                dispatcher_loop(&shared, &lookup_rx, &done_rx, &fifo_tx, &index);
            })
        };

        let journal_active = journal.is_some();
        let update_thread = {
            let shared = Arc::clone(&shared);
            let index = index.clone();
            let cfg = *cfg;
            let mut mirror = table.clone();
            std::thread::spawn(move || {
                update_loop(
                    &mut pipeline,
                    &mut mirror,
                    &ingress_rx,
                    &shared,
                    &index,
                    &cfg,
                    tileset0,
                    Durability {
                        journal,
                        epoch: epoch0,
                        seq_hw: seq_hw0,
                    },
                );
                UpdateOutcome {
                    final_table: mirror,
                    final_compressed: pipeline.fib().compressed_table(),
                    dynamic_redundancy: shared.epochs.load().replicated,
                }
            })
        };

        let stop_printer = Arc::new(AtomicBool::new(false));
        let printer = cfg.snapshot_every.map(|every| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_printer);
            std::thread::spawn(move || {
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(every);
                    if stop.load(AtomicOrdering::Relaxed) {
                        break;
                    }
                    println!("{}", shared.stats.snapshot().to_json());
                }
            })
        });

        RouterService {
            lookup_tx: Some(lookup_tx),
            ingress_tx: Some(ingress_tx),
            overflow: cfg.overflow,
            shared,
            started: Instant::now(),
            stop_printer,
            dispatcher: Some(dispatcher),
            workers,
            update_thread: Some(update_thread),
            printer,
            journal_active,
        }
    }

    /// Submits one update to the bounded ingress under the configured
    /// overflow policy: blocks until space frees up (`Block`) or rejects
    /// and counts the drop (`DropNewest`).
    pub fn submit_update(&self, update: Update) -> SubmitOutcome {
        self.submit_update_tagged(update, 0)
    }

    /// Like [`submit_update`](Self::submit_update), tagging the update
    /// with the submitter's sequence number. When the batch draining
    /// this update is journaled, the journaled high-water advances to
    /// at least `seq`, which [`wait_journaled`](Self::wait_journaled)
    /// observes — the durability handshake a network frontend needs to
    /// hold acks until the covering batch is on disk.
    pub fn submit_update_tagged(&self, update: Update, seq: u64) -> SubmitOutcome {
        let tx = self.ingress_tx.as_ref().expect("service not drained");
        match self.overflow {
            OverflowPolicy::Block => {
                // The update thread outlives every submitter (it exits
                // only when drain() closes this channel).
                tx.send((update, seq)).expect("update thread alive");
                SubmitOutcome::Accepted
            }
            OverflowPolicy::DropNewest => match tx.try_send((update, seq)) {
                Ok(()) => SubmitOutcome::Accepted,
                Err(TrySendError::Full(_)) => {
                    self.shared.stats.count_update_drop();
                    SubmitOutcome::Dropped
                }
                Err(TrySendError::Disconnected(_)) => unreachable!("update thread alive"),
            },
        }
    }

    /// Blocks until the journaled sequence high-water reaches `seq` or
    /// `timeout` elapses; returns whether it did. Trivially true when
    /// the service runs without a journal (nothing to wait for) or for
    /// untagged submissions (`seq == 0`).
    #[must_use]
    pub fn wait_journaled(&self, seq: u64, timeout: Duration) -> bool {
        if !self.journal_active || seq == 0 {
            return true;
        }
        self.shared.journaled.wait_for(seq, timeout)
    }

    /// Dispatches a batch of addresses through the lookup plane and
    /// blocks until every result is back, in submission order.
    #[must_use]
    pub fn lookup_batch(&self, addrs: Vec<u32>) -> Vec<Option<NextHop>> {
        if addrs.is_empty() {
            return Vec::new();
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.lookup_tx
            .as_ref()
            .expect("service not drained")
            .send(LookupRequest {
                addrs,
                reply: reply_tx,
            })
            .expect("dispatcher alive");
        reply_rx.recv().expect("dispatcher replies")
    }

    /// A point-in-time aggregated stats snapshot, enriched with the
    /// published lookup plane's identity (backend, epoch, entry count,
    /// heap footprint, dynamic redundancy).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.shared.stats.snapshot();
        let epoch = self.shared.epochs.load();
        snap.plane = Some(crate::stats::PlaneInfo {
            backend: epoch.backend,
            epoch: epoch.epoch,
            entries: epoch.entries,
            heap_bytes: epoch.planes.iter().map(|p| p.heap_bytes()).sum(),
            replicated: epoch.replicated,
        });
        snap
    }

    /// The currently published epoch number.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.version()
    }

    /// Gracefully drains the service: stops accepting work, completes
    /// every pending lookup, applies every queued update, publishes the
    /// final epoch, and joins all threads.
    #[must_use]
    pub fn drain(mut self) -> RouterReport {
        self.shutdown_threads()
    }

    fn shutdown_threads(&mut self) -> RouterReport {
        // Closing the lookup channel lets the dispatcher finish pending
        // batches and quiesce the workers; closing the ingress lets the
        // update thread apply the backlog and exit.
        self.lookup_tx = None;
        self.ingress_tx = None;
        if let Some(d) = self.dispatcher.take() {
            d.join().expect("dispatcher exits cleanly");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker exits cleanly");
        }
        let outcome = self
            .update_thread
            .take()
            .expect("drained once")
            .join()
            .expect("update thread exits cleanly");
        self.stop_printer.store(true, AtomicOrdering::Relaxed);
        if let Some(p) = self.printer.take() {
            p.join().expect("printer exits cleanly");
        }
        RouterReport {
            snapshot: self.shared.stats.snapshot(),
            results: Vec::new(),
            final_table: outcome.final_table,
            final_compressed: outcome.final_compressed,
            dynamic_redundancy: outcome.dynamic_redundancy,
            elapsed: self.started.elapsed(),
        }
    }
}

impl Drop for RouterService {
    fn drop(&mut self) {
        // A dropped (never-drained) service still shuts down cleanly;
        // the report is simply discarded.
        if self.update_thread.is_some() {
            let _ = self.shutdown_threads();
        }
    }
}

/// The dispatcher: pulls lookup batches, pushes per-address jobs through
/// the home-FIFO/diversion path, and assembles completions back into
/// in-order replies. Once the lookup channel closes and the last pending
/// batch completes, it quiesces the workers and exits.
fn dispatcher_loop(
    shared: &Shared,
    lookup_rx: &Receiver<LookupRequest>,
    done_rx: &Receiver<(u64, Option<NextHop>)>,
    fifo_tx: &[Sender<Job>],
    index: &RangeIndex,
) {
    struct Pending {
        results: Vec<Option<NextHop>>,
        remaining: usize,
        reply: Sender<Vec<Option<NextHop>>>,
    }

    let mut pending: HashMap<u32, Pending> = HashMap::new();
    let mut next_id: u32 = 0;
    let mut open = true;

    let complete = |pending: &mut HashMap<u32, Pending>, tag: u64, nh: Option<NextHop>| {
        let id = (tag >> 32) as u32;
        let i = (tag & 0xFFFF_FFFF) as usize;
        if let Some(p) = pending.get_mut(&id) {
            p.results[i] = nh;
            p.remaining -= 1;
            if p.remaining == 0 {
                let p = pending.remove(&id).expect("just seen");
                // A caller that gave up on the reply is not an error.
                let _ = p.reply.send(p.results);
            }
        }
    };

    loop {
        if open {
            crossbeam::channel::select! {
                recv(lookup_rx) -> msg => match msg {
                    Ok(req) => {
                        if req.addrs.is_empty() {
                            let _ = req.reply.send(Vec::new());
                            continue;
                        }
                        let id = next_id;
                        next_id = next_id.wrapping_add(1);
                        pending.insert(id, Pending {
                            results: vec![None; req.addrs.len()],
                            remaining: req.addrs.len(),
                            reply: req.reply,
                        });
                        for (i, &addr) in req.addrs.iter().enumerate() {
                            let tag = (u64::from(id) << 32) | i as u64;
                            dispatch_one(shared, fifo_tx, index, addr, tag);
                        }
                    }
                    Err(_) => open = false,
                },
                recv(done_rx) -> msg => match msg {
                    Ok((tag, nh)) => complete(&mut pending, tag, nh),
                    Err(_) => break,
                },
            }
        } else {
            if pending.is_empty() {
                break;
            }
            match done_rx.recv() {
                Ok((tag, nh)) => complete(&mut pending, tag, nh),
                Err(_) => break,
            }
        }
    }
    for tx in fifo_tx {
        let _ = tx.send(Job::Quit);
    }
}

/// Dispatches one address: home FIFO first, DRed-only diversion to the
/// idlest chip when the home FIFO is full (Figure 1's Indexing Logic).
fn dispatch_one(shared: &Shared, fifo_tx: &[Sender<Job>], index: &RangeIndex, addr: u32, tag: u64) {
    shared.stats.count_arrival();
    let home = index.bucket_of(addr);
    shared
        .stats
        .worker(home)
        .queue_depth
        .record(fifo_tx[home].len() as u64);
    let job = Job::Home {
        addr,
        tag,
        t0: Instant::now(),
        bounced: false,
    };
    if let Err(err) = fifo_tx[home].try_send(job) {
        // Home FIFO full → DRed-only attempt on the idlest chip.
        shared.stats.count_diversion();
        let job = match err.into_inner() {
            Job::Home { addr, tag, t0, .. } => Job::Dred { addr, tag, t0 },
            other => other,
        };
        let idlest = (0..fifo_tx.len())
            .min_by_key(|&c| fifo_tx[c].len())
            .expect("workers > 0");
        fifo_tx[idlest].send(job).expect("worker alive");
    }
}

/// The durability side of the update plane, threaded into the loop.
struct Durability {
    journal: Option<Box<dyn UpdateJournal>>,
    epoch: u64,
    seq_hw: u64,
}

/// Snapshots every chip's DRed contents (for a checkpoint view).
fn collect_dreds(shared: &Shared) -> Vec<Vec<Route>> {
    shared
        .dreds
        .iter()
        .map(|d| d.lock().iter().collect())
        .collect()
}

/// The update plane: drain → coalesce → journal → apply → flush DReds
/// → publish → (maybe) checkpoint.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn update_loop(
    pipeline: &mut CluePipeline,
    mirror: &mut RouteTable,
    ingress: &Receiver<(Update, u64)>,
    shared: &Shared,
    index: &RangeIndex,
    cfg: &RouterConfig,
    mut tileset: Option<TileSet>,
    durability: Durability,
) {
    let batch_size = cfg.batch_size;
    let workers = cfg.workers;
    let mut stall = cfg.faults.map(WriteStall::new);
    let Durability {
        mut journal,
        mut epoch,
        mut seq_hw,
    } = durability;
    while let Ok((first, tag0)) = ingress.recv() {
        // One quiescent window: whatever is already queued, up to the cap.
        let mut batch = Vec::with_capacity(batch_size);
        let mut tag_hw = tag0;
        batch.push(first);
        while batch.len() < batch_size {
            match ingress.try_recv() {
                Ok((u, tag)) => {
                    batch.push(u);
                    tag_hw = tag_hw.max(tag);
                }
                Err(_) => break,
            }
        }

        let coalesced = coalesce(&batch, mirror);
        seq_hw = seq_hw.max(tag_hw);

        // Write-ahead: the batch hits the journal before the table, so
        // a crash between here and the publish below replays it. Only
        // a successful append advances the ack high-water.
        if let Some(j) = journal.as_mut() {
            let record = JournalBatch {
                epoch,
                seq_hw,
                raw: coalesced.raw as u32,
                ops: &coalesced.ops,
            };
            match j.append(&record) {
                Ok(()) => {
                    shared.stats.count_journal_append();
                    shared.journaled.advance(seq_hw);
                }
                Err(_) => shared.stats.count_journal_error(),
            }
        }

        let mut batch_ttf_ns = 0.0f64;
        let mut touched = false;
        for &op in &coalesced.ops {
            mirror.apply(op);
            let (sample, diff) = pipeline.apply_with_diff(op);
            if let Some(ws) = &mut stall {
                // The TCAM-write-stall seam: stretch the window between
                // entry writes and the epoch publish below.
                ws.on_ops(diff.op_count() as u64);
            }
            batch_ttf_ns += sample.total_ns();
            shared
                .stats
                .update()
                .ttf_update_ns
                .record(sample.total_ns() as u64);
            touched = touched || !diff.is_empty();
            if let Some(ts) = tileset.as_mut() {
                ts.apply(&diff);
            }
            // DRed sync, the paper's delete-if-present rule: flush every
            // prefix the diff removed or rewrote from every chip's DRed.
            for p in diff
                .deletes
                .iter()
                .chain(diff.modifies.iter().map(|r| &r.prefix))
            {
                for dred in &shared.dreds {
                    dred.lock().remove(*p);
                }
            }
        }

        {
            let mut u = shared.stats.update();
            u.received += coalesced.raw as u64;
            u.applied += coalesced.ops.len() as u64;
            u.superseded += coalesced.superseded as u64;
            u.cancelled += coalesced.cancelled as u64;
            u.elided += coalesced.elided as u64;
            u.batches += 1;
            u.ttf_batch_ns.record(batch_ttf_ns as u64);
        }

        // Publish the batch as one atomic epoch (skip if nothing moved).
        if touched {
            epoch += 1;
            let state = match &tileset {
                Some(ts) => EpochState::from_tileset(epoch, ts, index, workers),
                None => EpochState::build(
                    epoch,
                    &pipeline.fib().compressed_table(),
                    index,
                    workers,
                    cfg.backend,
                ),
            };
            shared.epochs.publish(state);
            shared.stats.update().epochs += 1;
        }

        // Epoch-boundary snapshot: the journal decides when enough tail
        // has accumulated; the view is consistent because this thread is
        // the only writer and sits between batches.
        if let Some(j) = journal.as_mut() {
            if j.wants_checkpoint() {
                let compressed = pipeline.fib().compressed_table();
                let dreds = collect_dreds(shared);
                let view = CheckpointView {
                    epoch,
                    seq_hw,
                    table: mirror,
                    compressed: &compressed,
                    cuts: index.cuts(),
                    dreds: &dreds,
                };
                if j.checkpoint(&view).is_err() {
                    shared.stats.count_journal_error();
                }
            }
        }
    }

    // Clean drain: give the journal a final checkpoint opportunity so a
    // graceful restart replays nothing (crash harnesses override this).
    if let Some(j) = journal.as_mut() {
        let compressed = pipeline.fib().compressed_table();
        let dreds = collect_dreds(shared);
        let view = CheckpointView {
            epoch,
            seq_hw,
            table: mirror,
            compressed: &compressed,
            cuts: index.cuts(),
            dreds: &dreds,
        };
        if j.on_drain(&view).is_err() {
            shared.stats.count_journal_error();
        }
    }
}

fn worker_loop(
    chip: usize,
    shared: &Shared,
    fifo: &Receiver<Job>,
    bounce: &Receiver<Job>,
    done: &Sender<(u64, Option<NextHop>)>,
    bounce_tx: &[Sender<Job>],
    index: &RangeIndex,
) {
    let mut epoch = shared.epochs.load();
    loop {
        // Bounced jobs have waited longest; when both lanes are empty,
        // block on either (blocking on the FIFO alone would strand a
        // final bounce-lane job).
        let job = match bounce.try_recv() {
            Ok(job) => job,
            Err(_) => {
                crossbeam::channel::select! {
                    recv(bounce) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                    recv(fifo) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                }
            }
        };
        shared.epochs.refresh(&mut epoch);
        match job {
            Job::Quit => return,
            Job::Home {
                addr,
                tag,
                t0,
                bounced,
            } => {
                let matched = epoch.planes[chip].lookup(addr);
                if bounced {
                    if let Some(route) = matched {
                        // CLUE fill: every DRed except this chip's own.
                        for (i, dred) in shared.dreds.iter().enumerate() {
                            if i != chip {
                                dred.lock().insert(route);
                            }
                        }
                    }
                }
                finish(shared, chip, tag, matched.map(|r| r.next_hop), t0, done);
            }
            Job::Dred { addr, tag, t0 } => {
                let hit = shared.dreds[chip].lock().lookup(addr);
                match hit {
                    Some(nh) => {
                        shared.stats.count_dred_hit();
                        finish(shared, chip, tag, Some(nh), t0, done);
                    }
                    None => {
                        shared.stats.count_dred_miss();
                        shared.stats.worker(chip).serviced += 1;
                        let home = index.bucket_of(addr);
                        bounce_tx[home]
                            .send(Job::Home {
                                addr,
                                tag,
                                t0,
                                bounced: true,
                            })
                            .expect("home worker alive");
                    }
                }
            }
        }
    }
}

fn finish(
    shared: &Shared,
    chip: usize,
    tag: u64,
    nh: Option<NextHop>,
    t0: Instant,
    done: &Sender<(u64, Option<NextHop>)>,
) {
    {
        let mut w = shared.stats.worker(chip);
        w.serviced += 1;
        w.lookup_ns.record(t0.elapsed().as_nanos() as u64);
    }
    shared.stats.count_completion();
    done.send((tag, nh)).expect("collector alive");
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;
    use clue_traffic::{PacketGen, UpdateGen};

    #[test]
    fn incremental_submission_reaches_sequential_fib() {
        let fib = FibGen::new(11).routes(1_000).generate();
        let updates = UpdateGen::new(12).generate(&fib, 800);
        let svc = RouterService::start(&fib, &RouterConfig::default());
        for &u in &updates {
            assert_eq!(svc.submit_update(u), SubmitOutcome::Accepted);
        }
        let report = svc.drain();
        let mut expect = fib.clone();
        for &u in &updates {
            expect.apply(u);
        }
        assert_eq!(report.final_table, expect);
        assert_eq!(report.final_compressed, onrtc(&expect));
        assert_eq!(report.snapshot.updates_received, updates.len() as u64);
    }

    #[test]
    fn interleaved_lookup_batches_return_in_order() {
        let fib = FibGen::new(21).routes(1_500).generate();
        let packets = PacketGen::new(22).generate(&fib, 6_000);
        let reference = onrtc(&fib).to_trie();
        let svc = RouterService::start(&fib, &RouterConfig::default());
        for chunk in packets.chunks(700) {
            let got = svc.lookup_batch(chunk.to_vec());
            assert_eq!(got.len(), chunk.len());
            for (&addr, nh) in chunk.iter().zip(&got) {
                assert_eq!(
                    *nh,
                    reference.lookup(addr).map(|(_, &v)| v),
                    "addr {addr:#x}"
                );
            }
        }
        let report = svc.drain();
        assert_eq!(report.snapshot.arrivals, packets.len() as u64);
        assert_eq!(report.snapshot.completions, packets.len() as u64);
    }

    #[test]
    fn concurrent_batches_from_many_threads_all_complete() {
        let fib = FibGen::new(31).routes(1_000).generate();
        let svc = std::sync::Arc::new(RouterService::start(&fib, &RouterConfig::default()));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let svc = std::sync::Arc::clone(&svc);
            let fib = fib.clone();
            joins.push(std::thread::spawn(move || {
                let packets = PacketGen::new(100 + t).generate(&fib, 2_000);
                let got = svc.lookup_batch(packets.clone());
                assert_eq!(got.len(), packets.len());
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let svc = std::sync::Arc::into_inner(svc).expect("all clones joined");
        let report = svc.drain();
        assert_eq!(report.snapshot.arrivals, 8_000);
        assert_eq!(report.snapshot.completions, 8_000);
    }

    #[test]
    fn drop_newest_reports_rejections() {
        let fib = FibGen::new(41).routes(800).generate();
        let updates = UpdateGen::new(42).generate(&fib, 3_000);
        let cfg = RouterConfig {
            update_queue: 4,
            batch_size: 2,
            overflow: OverflowPolicy::DropNewest,
            ..RouterConfig::default()
        };
        let svc = RouterService::start(&fib, &cfg);
        let mut dropped = 0u64;
        for &u in &updates {
            if svc.submit_update(u) == SubmitOutcome::Dropped {
                dropped += 1;
            }
        }
        let report = svc.drain();
        assert_eq!(report.snapshot.update_drops, dropped);
        assert_eq!(
            report.snapshot.updates_received + report.snapshot.update_drops,
            updates.len() as u64,
        );
    }

    #[test]
    fn undrained_service_shuts_down_on_drop() {
        let fib = FibGen::new(51).routes(200).generate();
        let svc = RouterService::start(&fib, &RouterConfig::default());
        let _ = svc.lookup_batch(vec![0x0A00_0001]);
        drop(svc); // must not hang or panic
    }
}
