//! The update-plane durability seam: a write-ahead hook the update
//! thread drives *before* each coalesced batch is applied, plus the
//! state bundle a persistence layer hands back to boot a recovered
//! service.
//!
//! `clue-router` defines only the trait; the disk format lives in
//! `clue-store`, which implements [`UpdateJournal`] over a segmented
//! CRC-framed log and epoch-boundary snapshots. Keeping the trait here
//! (and the crate dependency pointing store → router) means the router
//! stays free of any I/O policy, and tests can substitute in-memory or
//! fault-injecting journals.
//!
//! ## Ordering contract
//!
//! For every batch the update thread: coalesces, calls
//! [`UpdateJournal::append`], and only then applies the ops and
//! publishes the epoch. A successful append advances the service's
//! *journaled sequence high-water*, which
//! [`RouterService::wait_journaled`](crate::RouterService::wait_journaled)
//! exposes so a network frontend can hold a batch's acknowledgement
//! until the batch is durable (ack ⇒ journaled). An append error keeps
//! the high-water where it was — the router still applies the batch
//! (serving stale-but-live beats halting the data plane) but the
//! frontend will refuse to ack it.

use std::io;

use clue_fib::{Route, RouteTable, Update};

/// One coalesced batch as handed to the journal, *before* it is applied.
pub struct JournalBatch<'a> {
    /// The epoch current when the batch was accepted (the batch itself
    /// publishes the next epoch if it changes the table).
    pub epoch: u64,
    /// Highest ingress sequence tag drained into this batch (0 when the
    /// submitter did not tag).
    pub seq_hw: u64,
    /// Raw (pre-coalescing) updates the batch absorbs.
    pub raw: u32,
    /// The coalesced ops, in application order.
    pub ops: &'a [Update],
}

/// A consistent view of the update plane at a checkpoint boundary —
/// everything a snapshot writer needs, borrowed from the update thread
/// between batches.
pub struct CheckpointView<'a> {
    /// Last published epoch number.
    pub epoch: u64,
    /// Journaled sequence high-water at this boundary.
    pub seq_hw: u64,
    /// The original (uncompressed) route table.
    pub table: &'a RouteTable,
    /// The ONRTC-compressed table (an integrity twin of `table`).
    pub compressed: &'a RouteTable,
    /// The partition cut points in force.
    pub cuts: &'a [u32],
    /// Per-chip DRed contents (LRU order is not preserved).
    pub dreds: &'a [Vec<Route>],
}

/// What a persistence layer recovered from disk, ready to boot a
/// [`RouterService`](crate::RouterService) via
/// [`start_recovered`](crate::RouterService::start_recovered).
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// The recovered original route table.
    pub table: RouteTable,
    /// Epoch numbering resumes after this value.
    pub epoch: u64,
    /// The journaled sequence high-water; a network frontend advertises
    /// it so clients resume from the right place.
    pub seq_hw: u64,
    /// Per-chip DRed contents to pre-warm (dropped if the chip count no
    /// longer matches the config).
    pub dreds: Vec<Vec<Route>>,
}

/// A write-ahead journal driven by the update thread.
///
/// Implementations must be cheap on [`append`](Self::append) — it sits
/// on the update hot path, ahead of every batch apply.
pub trait UpdateJournal: Send {
    /// Journals one coalesced batch before it is applied.
    ///
    /// # Errors
    ///
    /// An error is counted (`journal.errors` in the stats snapshot) and
    /// leaves the journaled high-water unchanged; the batch is still
    /// applied.
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()>;

    /// Whether the journal wants a checkpoint at the next batch
    /// boundary (e.g. enough appends have accumulated).
    fn wants_checkpoint(&self) -> bool {
        false
    }

    /// Writes a snapshot of `view` and typically prunes the journal
    /// tail it supersedes.
    ///
    /// # Errors
    ///
    /// Counted like an append error; the service keeps running.
    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        let _ = view;
        Ok(())
    }

    /// Called once when the service drains. The default takes a final
    /// checkpoint so a clean shutdown restarts with an empty replay
    /// tail; crash-fault harnesses override this with a no-op to leave
    /// the tail in place.
    ///
    /// # Errors
    ///
    /// Counted like an append error.
    fn on_drain(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        self.checkpoint(view)
    }
}
