//! Epoch-style published state for the lookup workers.
//!
//! The update plane never mutates a structure a worker is reading.
//! Instead, after each applied batch it rebuilds the per-worker lookup
//! planes from the new compressed table and publishes them as one
//! immutable [`EpochState`] behind an `Arc`. Workers poll a relaxed
//! atomic epoch counter once per packet and, only when it moved, swap
//! their local `Arc` for the new one — so every worker observes a batch
//! atomically (all of its entry changes or none) and two workers can
//! never serve lookups from different halves of one batch *published*
//! state.
//!
//! Each per-worker plane is one [`LookupPlane`] backend, selected by
//! [`BackendKind`]: the cycle-cost TCAM sim (the default, the paper's
//! hardware model), the flattened multibit trie, or the entropy-style
//! compressed FIB. Because a plane is built fresh from the post-batch
//! compressed table and never touched again, every backend gets the
//! paper's update semantics for free — the epoch swap *is* the update.
//!
//! Partition cuts are **fixed at start-up** (CLUE's even-range split of
//! the initial compressed table). Updates shift route boundaries, so a
//! later route may *span* a cut; such a route is replicated into every
//! bucket it touches. Because ONRTC output is non-overlapping, the
//! route matching an address always contains it, hence lives in (a
//! replica of) the address's own bucket — lookups stay local to one
//! worker. The replica count is the *dynamic redundancy* the paper's
//! title promises to keep small; [`EpochState::replicated`] exposes it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clue_core::lookup::{build_plane, BackendKind, LookupPlane};
use clue_fib::{Route, RouteTable};
use clue_partition::{Indexer, RangeIndex};
use clue_tile::TileSet;
use parking_lot::Mutex;

/// One immutable generation of the lookup plane's view.
#[derive(Debug)]
pub struct EpochState {
    /// Monotonic generation number (0 = initial table).
    pub epoch: u64,
    /// One lookup plane per worker, holding its bucket of the
    /// compressed table (plus replicas of cut-spanning routes).
    pub planes: Vec<Box<dyn LookupPlane>>,
    /// Which backend the planes were built with.
    pub backend: BackendKind,
    /// Entries in the compressed table this epoch was built from.
    pub entries: usize,
    /// Routes stored in more than one bucket (extra copies only):
    /// the dynamic redundancy introduced by updates since start-up.
    pub replicated: u64,
}

impl EpochState {
    /// Builds an epoch by distributing `compressed` (which must be
    /// non-overlapping) over `workers` buckets along `index`'s fixed
    /// cuts, replicating any route that spans a cut, then compiling
    /// each bucket into a `backend` lookup plane.
    ///
    /// # Panics
    ///
    /// Panics if `workers` disagrees with `index.bucket_count()`.
    #[must_use]
    pub fn build(
        epoch: u64,
        compressed: &RouteTable,
        index: &RangeIndex,
        workers: usize,
        backend: BackendKind,
    ) -> Self {
        // The tiled backend's builder lives upstream of clue-core; make
        // sure it is registered before any build_plane(Tiled) below.
        clue_tile::install();
        assert_eq!(
            index.bucket_count(),
            workers,
            "index must have one bucket per worker"
        );
        let mut buckets: Vec<Vec<Route>> = (0..workers).map(|_| Vec::new()).collect();
        let mut replicated = 0u64;
        for r in compressed.iter() {
            let first = index.bucket_of(r.prefix.low());
            let last = index.bucket_of(r.prefix.high());
            replicated += (last - first) as u64;
            for bucket in &mut buckets[first..=last] {
                bucket.push(r);
            }
        }
        let planes = buckets
            .iter()
            .map(|routes| build_plane(backend, routes))
            .collect();
        EpochState {
            epoch,
            planes,
            backend,
            entries: compressed.len(),
            replicated,
        }
    }

    /// Builds a tiled epoch from a live [`TileSet`] maintainer without
    /// recompiling anything: each worker's plane is an `Arc` snapshot
    /// of the tiles overlapping its bucket range. A tile that straddles
    /// a partition cut is *shared* between the adjacent planes (one
    /// `Arc`, two planes); `replicated` counts those extra memberships
    /// — the tiled analogue of cut-spanning route copies.
    ///
    /// # Panics
    ///
    /// Panics if `workers` disagrees with `index.bucket_count()`.
    #[must_use]
    pub fn from_tileset(epoch: u64, set: &TileSet, index: &RangeIndex, workers: usize) -> Self {
        clue_tile::install();
        assert_eq!(
            index.bucket_count(),
            workers,
            "index must have one bucket per worker"
        );
        let cuts = index.cuts();
        let mut planes: Vec<Box<dyn LookupPlane>> = Vec::with_capacity(workers);
        for b in 0..workers {
            let lo = if b == 0 { 0 } else { cuts[b - 1] };
            let hi = if b + 1 == workers {
                u32::MAX
            } else {
                cuts[b] - 1
            };
            planes.push(Box::new(set.plane_for_range(lo, hi)));
        }
        let replicated = cuts
            .iter()
            .filter(|&&c| set.tiles()[set.tile_of(c)].start() < c)
            .count() as u64;
        EpochState {
            epoch,
            planes,
            backend: BackendKind::Tiled,
            entries: set.route_count(),
            replicated,
        }
    }
}

/// The publish/subscribe cell workers read epochs through.
///
/// `current` holds the latest `Arc<EpochState>`; `version` mirrors its
/// epoch number so readers can detect staleness with one relaxed atomic
/// load instead of taking the lock on every packet.
#[derive(Debug)]
pub struct EpochCell {
    current: Mutex<Arc<EpochState>>,
    version: AtomicU64,
}

impl EpochCell {
    /// Creates the cell with an initial epoch.
    #[must_use]
    pub fn new(initial: EpochState) -> Self {
        EpochCell {
            version: AtomicU64::new(initial.epoch),
            current: Mutex::new(Arc::new(initial)),
        }
    }

    /// Publishes a new epoch (update thread only).
    ///
    /// The lock is written *before* the version so a reader that
    /// observes the new version is guaranteed to load the new state.
    pub fn publish(&self, state: EpochState) {
        let epoch = state.epoch;
        *self.current.lock() = Arc::new(state);
        self.version.store(epoch, Ordering::Release);
    }

    /// The currently published epoch number (cheap; relaxed).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Loads the current state (takes the lock briefly).
    #[must_use]
    pub fn load(&self) -> Arc<EpochState> {
        Arc::clone(&self.current.lock())
    }

    /// Refreshes `local` if a newer epoch has been published; returns
    /// whether it changed. Workers call this once per packet.
    pub fn refresh(&self, local: &mut Arc<EpochState>) -> bool {
        if self.version() == local.epoch {
            return false;
        }
        *local = self.load();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};
    use clue_partition::EvenRangePartition;

    fn disjoint_table(count: u32) -> RouteTable {
        (0..count)
            .map(|i| (Prefix::new(i << 16, 16), NextHop((i % 5) as u16)))
            .collect()
    }

    #[test]
    fn initial_epoch_has_zero_redundancy() {
        let t = disjoint_table(32);
        let index = EvenRangePartition::split(&t, 4).index().clone();
        let e = EpochState::build(0, &t, &index, 4, BackendKind::Tcam);
        assert_eq!(e.replicated, 0, "cuts fall on route boundaries");
        assert_eq!(e.planes.len(), 4);
        let held: usize = e.planes.iter().map(|p| p.len()).sum();
        assert_eq!(held, t.len());
    }

    #[test]
    fn cut_spanning_route_is_replicated_and_found_locally() {
        let t = disjoint_table(32);
        let index = EvenRangePartition::split(&t, 4).index().clone();
        // A later update merges a wide route across every cut.
        let mut evolved = RouteTable::new();
        evolved.insert(Prefix::new(0, 4), NextHop(9));
        for backend in BackendKind::ALL {
            let e = EpochState::build(1, &evolved, &index, 4, backend);
            assert_eq!(e.replicated, 3, "one copy per extra bucket spanned");
            // Every address's own bucket can resolve it locally.
            for addr in [0u32, 9 << 16, 17 << 16, 30 << 16] {
                let b = index.bucket_of(addr);
                assert_eq!(
                    e.planes[b].next_hop(addr),
                    Some(NextHop(9)),
                    "addr {addr:#x} must resolve in bucket {b} ({backend})"
                );
            }
        }
    }

    #[test]
    fn every_backend_agrees_on_the_published_partition() {
        let t = disjoint_table(64);
        let index = EvenRangePartition::split(&t, 4).index().clone();
        let states: Vec<EpochState> = BackendKind::ALL
            .iter()
            .map(|&k| EpochState::build(0, &t, &index, 4, k))
            .collect();
        for addr in (0u32..64 << 16).step_by(1 << 12) {
            let b = index.bucket_of(addr);
            let answers: Vec<_> = states.iter().map(|e| e.planes[b].lookup(addr)).collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "backends disagree at {addr:#x}: {answers:?}"
            );
        }
    }

    #[test]
    fn cell_publish_is_observed_via_refresh() {
        let t = disjoint_table(8);
        let index = EvenRangePartition::split(&t, 2).index().clone();
        let cell = EpochCell::new(EpochState::build(0, &t, &index, 2, BackendKind::Tcam));
        let mut local = cell.load();
        assert!(!cell.refresh(&mut local), "nothing published yet");
        cell.publish(EpochState::build(1, &t, &index, 2, BackendKind::Tcam));
        assert!(cell.refresh(&mut local));
        assert_eq!(local.epoch, 1);
        assert!(!cell.refresh(&mut local), "already current");
    }

    #[test]
    fn tileset_epoch_matches_full_rebuild() {
        let t = disjoint_table(64);
        let index = EvenRangePartition::split(&t, 4).index().clone();
        let routes: Vec<Route> = t.iter().collect();
        let set = clue_tile::TileSet::build(clue_tile::TileConfig::with_capacity(16), &routes);
        let inc = EpochState::from_tileset(1, &set, &index, 4);
        let full = EpochState::build(1, &t, &index, 4, BackendKind::Tiled);
        assert_eq!(inc.backend, BackendKind::Tiled);
        assert_eq!(inc.entries, t.len());
        for addr in (0u32..64 << 16).step_by(1 << 11) {
            let b = index.bucket_of(addr);
            assert_eq!(
                inc.planes[b].next_hop(addr),
                full.planes[b].next_hop(addr),
                "addr {addr:#x} in bucket {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one bucket per worker")]
    fn build_rejects_mismatched_worker_count() {
        let t = disjoint_table(8);
        let index = EvenRangePartition::split(&t, 2).index().clone();
        let _ = EpochState::build(0, &t, &index, 3, BackendKind::Tcam);
    }
}
