//! Update-batch coalescing.
//!
//! The update plane ingests a raw BGP-like stream but applies it to the
//! compressed table in batches. Within one batch, only the *last*
//! operation per prefix can influence the final table state — a
//! re-announcement overwrites the previous one, a withdrawal erases
//! whatever was announced before it. Coalescing exploits this:
//!
//! * **last-op-wins** — for every prefix touched by the batch, keep only
//!   its final operation (in first-touched order, for determinism);
//! * **cancellation** — if the surviving operation is a withdrawal of a
//!   prefix that was *absent* before the batch (the classic
//!   announce-then-withdraw flap), the pair annihilates: applying
//!   nothing leaves the table exactly as applying both would;
//! * **no-op elision** — if the surviving operation announces exactly
//!   the next hop the prefix already has, it is dropped too.
//!
//! The equivalence `apply(coalesce(batch)) == apply(batch)` on the final
//! table state is the correctness contract of this module; it is proven
//! by construction below and property-tested against arbitrary
//! announce/withdraw interleavings in `tests/coalesce_prop.rs`.

use std::collections::HashMap;

use clue_fib::{Prefix, RouteTable, Update};

/// The result of coalescing one raw batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedBatch {
    /// Surviving operations, in first-touched prefix order.
    pub ops: Vec<Update>,
    /// Raw operations that went in.
    pub raw: usize,
    /// Operations absorbed by a later operation on the same prefix.
    pub superseded: usize,
    /// Announce-then-withdraw pairs that annihilated entirely.
    pub cancelled: usize,
    /// Surviving announcements elided because they changed nothing.
    pub elided: usize,
}

impl CoalescedBatch {
    /// Fraction of raw operations that never reach the pipeline
    /// (`0.0` when the batch was empty).
    #[must_use]
    pub fn coalesce_ratio(&self) -> f64 {
        if self.raw == 0 {
            0.0
        } else {
            1.0 - self.ops.len() as f64 / self.raw as f64
        }
    }

    /// Raw operations that never reached the pipeline.
    #[must_use]
    pub fn absorbed(&self) -> usize {
        self.raw - self.ops.len()
    }
}

/// Coalesces `batch` against the table state `pre` that held before the
/// batch (the update plane's mirror of the *original* routing table).
///
/// Correctness argument, per prefix `p` (operations on distinct
/// prefixes commute on the final table state, so prefixes can be
/// considered independently):
///
/// * sequential application leaves `p` in the state dictated solely by
///   its **last** operation — present with that next hop after an
///   announce, absent after a withdraw;
/// * keeping only that last operation therefore reaches the same state;
/// * dropping it entirely is additionally sound exactly when the state
///   it dictates equals `pre`'s state for `p`: a withdraw of a
///   `pre`-absent prefix (absent → absent) or an announce of the
///   next hop `p` already maps to (unchanged → unchanged).
#[must_use]
pub fn coalesce(batch: &[Update], pre: &RouteTable) -> CoalescedBatch {
    // Last operation per prefix, remembering first-touch order.
    let mut order: Vec<Prefix> = Vec::new();
    let mut last: HashMap<Prefix, Update> = HashMap::with_capacity(batch.len());
    for &u in batch {
        if last.insert(u.prefix(), u).is_none() {
            order.push(u.prefix());
        }
    }
    let superseded = batch.len() - order.len();

    let mut ops = Vec::with_capacity(order.len());
    let mut cancelled = 0;
    let mut elided = 0;
    for p in order {
        let u = last[&p];
        match u {
            Update::Withdraw { prefix } => {
                if pre.contains(prefix) {
                    ops.push(u);
                } else {
                    cancelled += 1;
                }
            }
            Update::Announce { prefix, next_hop } => {
                if pre.get(prefix) == Some(next_hop) {
                    elided += 1;
                } else {
                    ops.push(u);
                }
            }
        }
    }
    CoalescedBatch {
        ops,
        raw: batch.len(),
        superseded,
        cancelled,
        elided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::NextHop;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(s: &str, nh: u16) -> Update {
        Update::Announce {
            prefix: p(s),
            next_hop: NextHop(nh),
        }
    }

    fn withdraw(s: &str) -> Update {
        Update::Withdraw { prefix: p(s) }
    }

    #[test]
    fn last_op_per_prefix_wins() {
        let pre = RouteTable::new();
        let batch = [
            announce("10.0.0.0/8", 1),
            announce("10.0.0.0/8", 2),
            announce("10.0.0.0/8", 3),
        ];
        let c = coalesce(&batch, &pre);
        assert_eq!(c.ops, vec![announce("10.0.0.0/8", 3)]);
        assert_eq!(c.superseded, 2);
        assert_eq!(c.absorbed(), 2);
    }

    #[test]
    fn announce_then_withdraw_cancels() {
        let pre = RouteTable::new();
        let batch = [announce("10.0.0.0/8", 1), withdraw("10.0.0.0/8")];
        let c = coalesce(&batch, &pre);
        assert!(c.ops.is_empty());
        assert_eq!(c.cancelled, 1);
        assert_eq!((c.coalesce_ratio() * 100.0) as u32, 100);
    }

    #[test]
    fn withdraw_of_present_prefix_survives() {
        let mut pre = RouteTable::new();
        pre.insert(p("10.0.0.0/8"), NextHop(7));
        let batch = [announce("10.0.0.0/8", 1), withdraw("10.0.0.0/8")];
        let c = coalesce(&batch, &pre);
        assert_eq!(c.ops, vec![withdraw("10.0.0.0/8")]);
    }

    #[test]
    fn noop_announce_is_elided() {
        let mut pre = RouteTable::new();
        pre.insert(p("10.0.0.0/8"), NextHop(7));
        let batch = [announce("10.0.0.0/8", 1), announce("10.0.0.0/8", 7)];
        let c = coalesce(&batch, &pre);
        assert!(c.ops.is_empty());
        assert_eq!(c.elided, 1);
        assert_eq!(c.superseded, 1);
    }

    #[test]
    fn distinct_prefixes_keep_first_touched_order() {
        let pre = RouteTable::new();
        let batch = [
            announce("30.0.0.0/8", 1),
            announce("10.0.0.0/8", 2),
            announce("30.0.0.0/8", 3),
            announce("20.0.0.0/8", 4),
        ];
        let c = coalesce(&batch, &pre);
        assert_eq!(
            c.ops,
            vec![
                announce("30.0.0.0/8", 3),
                announce("10.0.0.0/8", 2),
                announce("20.0.0.0/8", 4),
            ]
        );
    }

    #[test]
    fn empty_batch_is_trivial() {
        let c = coalesce(&[], &RouteTable::new());
        assert!(c.ops.is_empty());
        assert_eq!(c.raw, 0);
        assert_eq!(c.coalesce_ratio(), 0.0);
    }

    #[test]
    fn coalesced_equals_sequential_on_a_hand_case() {
        let mut pre = RouteTable::new();
        pre.insert(p("10.0.0.0/8"), NextHop(1));
        pre.insert(p("20.0.0.0/8"), NextHop(2));
        let batch = [
            withdraw("10.0.0.0/8"),
            announce("10.0.0.0/8", 9),
            announce("30.0.0.0/8", 3),
            withdraw("30.0.0.0/8"),
            announce("20.0.0.0/8", 2), // no-op
            withdraw("40.0.0.0/8"),    // absent
        ];
        let mut seq = pre.clone();
        for &u in &batch {
            seq.apply(u);
        }
        let mut coal = pre.clone();
        for &u in &coalesce(&batch, &pre).ops {
            coal.apply(u);
        }
        let a: Vec<_> = seq.iter().collect();
        let b: Vec<_> = coal.iter().collect();
        assert_eq!(a, b);
    }
}
