//! Property test: for arbitrary announce/withdraw interleavings, a
//! coalesced batch applied once reaches exactly the table state that
//! one-by-one sequential application reaches — on the original
//! `RouteTable` *and* on the ONRTC-compressed table maintained by
//! `CompressedFib` (the state `CluePipeline` drives the TCAM from).

use clue_compress::CompressedFib;
use clue_fib::{NextHop, Prefix, Route, RouteTable, Update};
use clue_router::coalesce;
use proptest::prelude::*;

/// A small prefix universe with deliberate nesting: 32 disjoint /8s
/// plus a /16 inside each, so announce/withdraw interleavings exercise
/// covering-route compression, splits, and merges.
fn universe(i: u8) -> Prefix {
    let i = usize::from(i) % 64;
    if i < 32 {
        Prefix::new((i as u32) << 24, 8)
    } else {
        Prefix::new((((i - 32) as u32) << 24) | (1 << 16), 16)
    }
}

fn decode_batch(ops: &[(u8, bool, u8)]) -> Vec<Update> {
    ops.iter()
        .map(|&(i, announce, nh)| {
            let prefix = universe(i);
            if announce {
                Update::Announce {
                    prefix,
                    next_hop: NextHop(u16::from(nh) % 8),
                }
            } else {
                Update::Withdraw { prefix }
            }
        })
        .collect()
}

fn decode_base(entries: &[(u8, u8)]) -> RouteTable {
    let mut t = RouteTable::new();
    // An anchor route outside the churned universe keeps the table
    // non-empty (CompressedFib is built over a non-degenerate FIB).
    t.insert(Prefix::new(0xC0_00_00_00, 4), NextHop(15));
    for &(i, nh) in entries {
        t.insert(universe(i), NextHop(u16::from(nh) % 8));
    }
    t
}

fn routes(t: &RouteTable) -> Vec<Route> {
    t.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn coalesced_batch_reaches_the_sequential_state(
        base in prop::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        ops in prop::collection::vec((any::<u8>(), any::<bool>(), any::<u8>()), 0..48),
    ) {
        let pre = decode_base(&base);
        let batch = decode_batch(&ops);
        let coalesced = coalesce(&batch, &pre);

        // Conservation of the accounting: every raw op is applied,
        // superseded, cancelled, or elided.
        prop_assert_eq!(
            coalesced.raw,
            coalesced.ops.len()
                + coalesced.superseded
                + coalesced.cancelled
                + coalesced.elided
        );

        // Original-table equivalence.
        let mut seq = pre.clone();
        for &u in &batch {
            seq.apply(u);
        }
        let mut coal = pre.clone();
        for &u in &coalesced.ops {
            coal.apply(u);
        }
        prop_assert_eq!(routes(&seq), routes(&coal));

        // Compressed-table equivalence: the state CLUE's TCAM mirrors.
        let mut fib_seq = CompressedFib::new(&pre);
        for &u in &batch {
            fib_seq.apply(u);
        }
        let mut fib_coal = CompressedFib::new(&pre);
        for &u in &coalesced.ops {
            fib_coal.apply(u);
        }
        prop_assert_eq!(
            routes(&fib_seq.compressed_table()),
            routes(&fib_coal.compressed_table())
        );
    }

    #[test]
    fn coalescing_a_flap_storm_cancels_almost_everything(
        flaps in prop::collection::vec((any::<u8>(), any::<u8>()), 1..16),
    ) {
        // Announce-then-withdraw per prefix against an empty-ish base:
        // every pair must annihilate.
        let pre = decode_base(&[]);
        let mut batch = Vec::new();
        for &(i, nh) in &flaps {
            let prefix = universe(i);
            batch.push(Update::Announce { prefix, next_hop: NextHop(u16::from(nh) % 8) });
            batch.push(Update::Withdraw { prefix });
        }
        let coalesced = coalesce(&batch, &pre);
        prop_assert!(coalesced.ops.is_empty());
        prop_assert!(coalesced.coalesce_ratio() > 0.99);
    }
}
