//! End-to-end integration: a seeded workload through the live router.
//!
//! Pins down the three contract properties of the runtime:
//!
//! 1. **determinism** — with blocking backpressure, the final FIB
//!    equals the sequential application of the update trace, and two
//!    runs of the same seeds agree exactly, regardless of thread
//!    interleaving;
//! 2. **conservation** — every packet handed to the dispatcher
//!    completes (arrivals == completions; updates are the only
//!    droppable input and drops are accounted);
//! 3. **observability** — the final stats snapshot is non-empty and
//!    internally consistent.

use clue_compress::onrtc;
use clue_fib::{gen::FibGen, Route, RouteTable, Update};
use clue_router::{run, OverflowPolicy, RouterConfig};
use clue_traffic::{PacketGen, UpdateGen};

fn workload() -> (RouteTable, Vec<u32>, Vec<Update>) {
    let fib = FibGen::new(1001).routes(4_000).generate();
    let packets = PacketGen::new(1002).generate(&fib, 40_000);
    let updates = UpdateGen::new(1003).generate(&fib, 2_500);
    (fib, packets, updates)
}

fn routes(t: &RouteTable) -> Vec<Route> {
    t.iter().collect()
}

#[test]
fn seeded_run_is_deterministic_and_conserves_packets() {
    let (fib, packets, updates) = workload();
    let cfg = RouterConfig {
        workers: 4,
        batch_size: 32,
        overflow: OverflowPolicy::Block,
        ..RouterConfig::default()
    };

    let a = run(&fib, &packets, &updates, &cfg);
    let b = run(&fib, &packets, &updates, &cfg);

    // 1. Determinism: both runs and the offline sequential replay agree.
    let mut expect = fib.clone();
    for &u in &updates {
        expect.apply(u);
    }
    assert_eq!(routes(&a.final_table), routes(&expect));
    assert_eq!(routes(&a.final_table), routes(&b.final_table));
    assert_eq!(
        routes(&a.final_compressed),
        routes(&onrtc(&expect)),
        "compressed form must track the sequential table"
    );
    assert_eq!(routes(&a.final_compressed), routes(&b.final_compressed));

    // 2. Conservation: zero lost packets, all updates ingested.
    assert!(a.packets_conserved(), "arrivals != completions");
    assert_eq!(a.snapshot.arrivals, packets.len() as u64);
    assert_eq!(a.snapshot.updates_received, updates.len() as u64);
    assert_eq!(a.snapshot.update_drops, 0, "Block policy never drops");
    assert_eq!(
        a.snapshot.updates_received,
        a.snapshot.updates_applied
            + a.snapshot.updates_superseded
            + a.snapshot.updates_cancelled
            + a.snapshot.updates_elided,
        "every ingested update is applied or accounted as absorbed"
    );

    // 3. Observability: the snapshot is non-empty and well-formed.
    let s = &a.snapshot;
    assert_eq!(s.workers, 4);
    assert_eq!(s.lookup_ns.count(), packets.len() as u64);
    assert!(s.lookup_ns.quantile(0.99) >= s.lookup_ns.quantile(0.5));
    assert!(s.ttf_batch_ns.count() > 0, "batches must record TTF");
    assert!(s.epochs > 0, "updates must publish epochs");
    assert!(s.per_worker_serviced.iter().all(|&n| n > 0), "idle worker");
    let json = s.to_json();
    for key in [
        "\"p99\":",
        "\"ttf_batch_ns\":",
        "\"coalesce_ratio\":",
        "\"dropped\":0",
    ] {
        assert!(json.contains(key), "snapshot JSON missing {key}");
    }
}

#[test]
fn every_result_is_a_plausible_next_hop() {
    // Lookups race updates, so a packet may resolve against any epoch;
    // but every *completed* lookup must still return either a next hop
    // from the FIB's alphabet or a genuine miss under some epoch. With
    // announce-heavy churn over a generated FIB, misses stay rare.
    let (fib, packets, updates) = workload();
    let report = run(
        &fib,
        &packets[..20_000],
        &updates[..1_000],
        &RouterConfig::default(),
    );
    assert!(report.packets_conserved());
    let misses = report.results.iter().filter(|r| r.is_none()).count();
    assert!(
        misses < report.results.len() / 10,
        "{misses} misses out of {} lookups",
        report.results.len()
    );
    assert!(report.elapsed.as_nanos() > 0);
}

#[test]
fn tiled_backend_serves_and_converges_like_the_default() {
    // The tiled plane takes the incremental path (persistent TileSet +
    // Arc-snapshot epochs) instead of per-bucket recompiles; the
    // externally observable contract must not change.
    let (fib, packets, updates) = workload();
    let cfg = RouterConfig {
        workers: 4,
        batch_size: 32,
        overflow: OverflowPolicy::Block,
        backend: clue_core::BackendKind::Tiled,
        ..RouterConfig::default()
    };
    let report = run(&fib, &packets[..20_000], &updates[..1_500], &cfg);
    assert!(report.packets_conserved());
    let mut expect = fib.clone();
    for &u in &updates[..1_500] {
        expect.apply(u);
    }
    assert_eq!(routes(&report.final_table), routes(&expect));
    assert_eq!(routes(&report.final_compressed), routes(&onrtc(&expect)));
    assert!(report.snapshot.epochs > 0, "updates must publish epochs");
    let misses = report.results.iter().filter(|r| r.is_none()).count();
    assert!(
        misses < report.results.len() / 10,
        "{misses} misses out of {} tiled lookups",
        report.results.len()
    );
}

#[test]
fn dynamic_redundancy_stays_bounded() {
    // The paper's headline: updates may force cut-spanning replicas,
    // but the count stays a sliver of the table. 2.5k updates over a
    // 4k-route table must not replicate more than a few percent.
    let (fib, _, updates) = workload();
    let report = run(&fib, &[], &updates, &RouterConfig::default());
    let table = report.final_compressed.len() as u64;
    assert!(
        report.dynamic_redundancy <= table / 10,
        "replicas {} vs table {}",
        report.dynamic_redundancy,
        table
    );
}
