//! Layout/update policies: how entries are arranged in the slot array
//! and what an incremental update costs under each arrangement.
//!
//! * [`UnorderedTcam`] — CLUE's policy. Valid only for non-overlapping
//!   tables: entries sit anywhere, insert appends, delete swaps the last
//!   entry into the hole. O(1) per update, ever.
//! * [`PrefixLengthOrderedTcam`] — the classical Shah & Gupta partial
//!   order (paper Figure 7(b)): entries grouped by length, free space
//!   after the last group; opening a hole costs one move per occupied
//!   group between the free space and the target length (≤ 32). This is
//!   the policy the paper attributes to CLPL.
//! * [`FullyOrderedTcam`] — the naive solution (paper Figure 7(a)):
//!   packed, globally length-sorted array; an insert shifts everything
//!   below it, O(n).
//!
//! All three expose the same [`TcamTable`] trait so the update pipeline
//! and the benchmarks can swap them freely.

use std::fmt;

use clue_fib::{NextHop, Prefix, Route};

use crate::slots::{SlotArray, TcamStats};

/// Error returned when an insert does not fit in the TCAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamFullError {
    /// Capacity of the TCAM that rejected the insert.
    pub capacity: usize,
}

impl fmt::Display for TcamFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tcam is full ({} slots)", self.capacity)
    }
}

impl std::error::Error for TcamFullError {}

/// The slot-operation cost of one table update.
///
/// Every component costs one TCAM write cycle (24 ns on the paper's
/// CYNSE70256); TTF2 is `total_ops × 24 ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateCost {
    /// New-content writes.
    pub writes: u64,
    /// Entry relocations (domino-effect shifts).
    pub moves: u64,
    /// Erase operations.
    pub erases: u64,
}

impl UpdateCost {
    /// Total slot operations.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.writes + self.moves + self.erases
    }

    pub(crate) fn between(before: TcamStats, after: TcamStats) -> Self {
        UpdateCost {
            writes: after.writes - before.writes,
            moves: after.moves - before.moves,
            erases: after.erases - before.erases,
        }
    }
}

impl std::ops::Add for UpdateCost {
    type Output = UpdateCost;

    fn add(self, rhs: UpdateCost) -> UpdateCost {
        UpdateCost {
            writes: self.writes + rhs.writes,
            moves: self.moves + rhs.moves,
            erases: self.erases + rhs.erases,
        }
    }
}

impl std::ops::AddAssign for UpdateCost {
    fn add_assign(&mut self, rhs: UpdateCost) {
        *self = *self + rhs;
    }
}

/// A TCAM under some layout policy.
///
/// Inserting a prefix that is already stored rewrites its action in
/// place (one write, no movement) under every policy.
pub trait TcamTable {
    /// Inserts (or in-place updates) a route.
    ///
    /// # Errors
    ///
    /// Returns [`TcamFullError`] when no free slot remains.
    fn insert(&mut self, route: Route) -> Result<UpdateCost, TcamFullError>;

    /// Deletes the entry for `prefix`; `None` if absent.
    fn delete(&mut self, prefix: Prefix) -> Option<UpdateCost>;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: u32) -> Option<NextHop>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity.
    fn capacity(&self) -> usize;

    /// Cumulative operation counters.
    fn stats(&self) -> TcamStats;

    /// Resets the operation counters (not the contents).
    fn reset_stats(&mut self);

    /// Stored routes in slot order.
    fn routes(&self) -> Vec<Route>;
}

/// Loads a batch of routes, panicking on overflow (setup helper).
///
/// # Panics
///
/// Panics if the table cannot hold all routes.
pub fn load<T: TcamTable>(table: &mut T, routes: impl IntoIterator<Item = Route>) {
    for r in routes {
        table
            .insert(r)
            .expect("table capacity exceeded during load");
    }
}

// ---------------------------------------------------------------------
// CLUE: unordered layout.
// ---------------------------------------------------------------------

/// CLUE's layout: no ordering constraint at all.
///
/// Sound only for non-overlapping content (ONRTC output): at most one
/// entry can match, so no priority encoder — and therefore no ordering —
/// is needed. Insert writes to the first free slot; delete moves the
/// last entry into the hole. Every update is O(1).
///
/// # Examples
///
/// ```
/// use clue_fib::{NextHop, Route};
/// use clue_tcam::{TcamTable, UnorderedTcam};
///
/// let mut t = UnorderedTcam::new(16);
/// let cost = t.insert(Route::new("10.0.0.0/8".parse()?, NextHop(1)))?;
/// assert_eq!(cost.total_ops(), 1); // one write, zero shifts
/// assert_eq!(t.lookup(0x0A00_0001), Some(NextHop(1)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct UnorderedTcam {
    arr: SlotArray,
    used: usize,
}

impl UnorderedTcam {
    /// Creates an empty table with `capacity` slots.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        UnorderedTcam {
            arr: SlotArray::new(capacity),
            used: 0,
        }
    }
}

impl TcamTable for UnorderedTcam {
    fn insert(&mut self, route: Route) -> Result<UpdateCost, TcamFullError> {
        let before = self.arr.stats();
        if self.arr.rewrite_action(route.prefix, route.next_hop) {
            return Ok(UpdateCost::between(before, self.arr.stats()));
        }
        if self.used == self.arr.capacity() {
            return Err(TcamFullError {
                capacity: self.arr.capacity(),
            });
        }
        self.arr.write(self.used, route);
        self.used += 1;
        Ok(UpdateCost::between(before, self.arr.stats()))
    }

    fn delete(&mut self, prefix: Prefix) -> Option<UpdateCost> {
        let slot = self.arr.slot_of(prefix)?;
        let before = self.arr.stats();
        self.arr.erase(slot);
        let last = self.used - 1;
        if slot != last {
            self.arr.relocate(last, slot);
        }
        self.used -= 1;
        Some(UpdateCost::between(before, self.arr.stats()))
    }

    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.arr.lookup_any(addr).map(|(_, a)| a)
    }

    fn len(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.arr.capacity()
    }

    fn stats(&self) -> TcamStats {
        self.arr.stats()
    }

    fn reset_stats(&mut self) {
        self.arr.reset_stats();
    }

    fn routes(&self) -> Vec<Route> {
        self.arr.routes().collect()
    }
}

// ---------------------------------------------------------------------
// Length-grouped layouts (CLPL classical, and the naive baseline).
// ---------------------------------------------------------------------

/// Group rank: rank 0 holds /32s (highest priority, lowest slots),
/// rank 32 holds /0.
fn rank(len: u8) -> usize {
    32 - len as usize
}

/// Shared machinery for the two length-ordered layouts.
///
/// `start[r]` is the first slot of rank `r`'s group; `start[33]` is the
/// first free slot. Groups are contiguous and packed.
#[derive(Debug, Clone)]
struct GroupedArray {
    arr: SlotArray,
    start: [usize; 34],
}

impl GroupedArray {
    fn new(capacity: usize) -> Self {
        GroupedArray {
            arr: SlotArray::new(capacity),
            start: [0; 34],
        }
    }

    fn used(&self) -> usize {
        self.start[33]
    }

    fn group_is_empty(&self, r: usize) -> bool {
        self.start[r] == self.start[r + 1]
    }

    /// Opens a hole at the end of rank `r`'s group by cascading one
    /// boundary entry per occupied lower group; returns the hole slot.
    fn open_hole(&mut self, r: usize) -> usize {
        let mut hole = self.start[33];
        for g in ((r + 1)..=32).rev() {
            if !self.group_is_empty(g) {
                self.arr.relocate(self.start[g], hole);
                hole = self.start[g];
            }
        }
        for g in (r + 1)..=33 {
            self.start[g] += 1;
        }
        hole
    }

    /// Opens a hole at the end of rank `r`'s group by shifting *every*
    /// lower entry down one slot (the naive layout); returns the hole.
    fn open_hole_naive(&mut self, r: usize) -> usize {
        let pos = self.start[r + 1];
        for slot in (pos..self.start[33]).rev() {
            self.arr.relocate(slot, slot + 1);
        }
        for g in (r + 1)..=33 {
            self.start[g] += 1;
        }
        pos
    }

    /// Removes the entry of rank `r` at `slot`, closing the hole by
    /// cascading one boundary entry per occupied lower group.
    fn close_hole(&mut self, r: usize, slot: usize) {
        self.arr.erase(slot);
        let group_last = self.start[r + 1] - 1;
        let mut hole = slot;
        if slot != group_last {
            self.arr.relocate(group_last, slot);
            hole = group_last;
        }
        for g in (r + 1)..=32 {
            if !self.group_is_empty(g) {
                let last = self.start[g + 1] - 1;
                self.arr.relocate(last, hole);
                hole = last;
            }
            self.start[g] -= 1;
        }
        self.start[33] -= 1;
    }

    /// Removes the entry of rank `r` at `slot`, shifting every lower
    /// entry up one slot (the naive layout).
    fn close_hole_naive(&mut self, r: usize, slot: usize) {
        self.arr.erase(slot);
        for s in (slot + 1)..self.start[33] {
            self.arr.relocate(s, s - 1);
        }
        for g in (r + 1)..=33 {
            self.start[g] -= 1;
        }
    }

    /// Layout invariant: every stored entry sits inside its length group.
    #[cfg(test)]
    fn layout_consistent(&self) -> bool {
        self.arr.mirror_consistent()
            && (0..self.arr.capacity()).all(|slot| match self.arr.entry(slot) {
                None => slot >= self.start[33],
                Some(e) => {
                    let r = rank(e.prefix().expect("prefix entry").len());
                    (self.start[r]..self.start[r + 1]).contains(&slot)
                }
            })
    }
}

macro_rules! grouped_table {
    ($name:ident, $open:ident, $close:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: GroupedArray,
        }

        impl $name {
            /// Creates an empty table with `capacity` slots.
            #[must_use]
            pub fn new(capacity: usize) -> Self {
                $name {
                    inner: GroupedArray::new(capacity),
                }
            }

            #[cfg(test)]
            fn layout_consistent(&self) -> bool {
                self.inner.layout_consistent()
            }
        }

        impl TcamTable for $name {
            fn insert(&mut self, route: Route) -> Result<UpdateCost, TcamFullError> {
                let before = self.inner.arr.stats();
                if self.inner.arr.rewrite_action(route.prefix, route.next_hop) {
                    return Ok(UpdateCost::between(before, self.inner.arr.stats()));
                }
                if self.inner.used() == self.inner.arr.capacity() {
                    return Err(TcamFullError {
                        capacity: self.inner.arr.capacity(),
                    });
                }
                let hole = self.inner.$open(rank(route.prefix.len()));
                self.inner.arr.write(hole, route);
                Ok(UpdateCost::between(before, self.inner.arr.stats()))
            }

            fn delete(&mut self, prefix: Prefix) -> Option<UpdateCost> {
                let slot = self.inner.arr.slot_of(prefix)?;
                let before = self.inner.arr.stats();
                self.inner.$close(rank(prefix.len()), slot);
                Some(UpdateCost::between(before, self.inner.arr.stats()))
            }

            fn lookup(&self, addr: u32) -> Option<NextHop> {
                self.inner.arr.lookup(addr).map(|(_, a)| a)
            }

            fn len(&self) -> usize {
                self.inner.used()
            }

            fn capacity(&self) -> usize {
                self.inner.arr.capacity()
            }

            fn stats(&self) -> TcamStats {
                self.inner.arr.stats()
            }

            fn reset_stats(&mut self) {
                self.inner.arr.reset_stats();
            }

            fn routes(&self) -> Vec<Route> {
                self.inner.arr.routes().collect()
            }
        }
    };
}

grouped_table!(
    PrefixLengthOrderedTcam,
    open_hole,
    close_hole,
    "The classical partial-order layout (Shah & Gupta; paper Figure 7(b)).\n\
     \n\
     Entries are grouped by prefix length with priority decreasing down\n\
     the array and free space after the last group. An update moves at\n\
     most one entry per occupied length group between the free space and\n\
     the target group — ≤ 32 moves, ~15 on real tables, which is the\n\
     update cost the paper charges to CLPL."
);

grouped_table!(
    FullyOrderedTcam,
    open_hole_naive,
    close_hole_naive,
    "The naive packed layout (paper Figure 7(a)).\n\
     \n\
     The whole array stays sorted by prefix length with free space only\n\
     at the end, so inserting shifts every entry below the insertion\n\
     point: O(n) moves per update in the worst case."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn unordered_insert_and_delete_are_o1() {
        let mut t = UnorderedTcam::new(8);
        for (i, s) in ["10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8"]
            .iter()
            .enumerate()
        {
            let c = t.insert(route(s, i as u16)).unwrap();
            assert_eq!(c.total_ops(), 1, "insert is one write");
            assert_eq!(c.moves, 0);
        }
        // Deleting from the middle: one erase + one move of the last.
        let c = t.delete(p("10.0.0.0/8")).unwrap();
        assert_eq!(c.moves, 1);
        assert_eq!(c.erases, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(0x0C00_0001), Some(NextHop(2)));
        assert_eq!(t.lookup(0x0A00_0001), None);
        // Deleting the entry that occupies the last slot (11/8 stayed in
        // slot 1 while 12/8 was swapped into the hole): no move at all.
        let c = t.delete(p("11.0.0.0/8")).unwrap();
        assert_eq!(c.moves, 0);
    }

    #[test]
    fn unordered_full_reports_error() {
        let mut t = UnorderedTcam::new(1);
        t.insert(route("10.0.0.0/8", 1)).unwrap();
        let err = t.insert(route("11.0.0.0/8", 2)).unwrap_err();
        assert_eq!(err.capacity, 1);
        // In-place update of a stored prefix still works when full.
        assert!(t.insert(route("10.0.0.0/8", 9)).is_ok());
        assert_eq!(t.lookup(0x0A00_0001), Some(NextHop(9)));
    }

    #[test]
    fn plo_moves_at_most_one_per_group() {
        let mut t = PrefixLengthOrderedTcam::new(64);
        // Populate one entry in each of 10 length groups.
        for len in 10..20u8 {
            t.insert(Route::new(
                Prefix::new(0x0A00_0000, len),
                NextHop(len as u16),
            ))
            .unwrap();
        }
        assert!(t.layout_consistent());
        // Inserting at /32 (above all groups) cascades one move per
        // occupied group below it: 10 moves + 1 write.
        let c = t.insert(route("10.0.0.1/32", 1)).unwrap();
        assert_eq!(c.moves, 10);
        assert_eq!(c.writes, 1);
        // Inserting at /5 (below all groups) costs zero moves.
        let c = t.insert(route("8.0.0.0/5", 2)).unwrap();
        assert_eq!(c.moves, 0);
        assert!(t.layout_consistent());
    }

    #[test]
    fn plo_delete_cascades_back() {
        let mut t = PrefixLengthOrderedTcam::new(64);
        for len in [8u8, 16, 24] {
            for i in 0..3u32 {
                t.insert(Route::new(
                    Prefix::new(0x0A00_0000 + (i << (32 - len)), len),
                    NextHop(1),
                ))
                .unwrap();
            }
        }
        let before = t.len();
        let c = t.delete(Prefix::new(0x0A00_0000, 24)).unwrap();
        assert_eq!(t.len(), before - 1);
        // One swap inside the /24 group (maybe), one boundary move for
        // each of the two occupied groups below.
        assert!(c.moves <= 3, "moves = {}", c.moves);
        assert!(t.layout_consistent());
    }

    #[test]
    fn naive_insert_shifts_everything_below() {
        let mut t = FullyOrderedTcam::new(64);
        for i in 0..10u32 {
            t.insert(Route::new(Prefix::new(i << 24, 8), NextHop(1)))
                .unwrap();
        }
        // A /32 goes above all ten /8s → ten shifts.
        let c = t.insert(route("10.0.0.1/32", 2)).unwrap();
        assert_eq!(c.moves, 10);
        assert!(t.layout_consistent());
    }

    #[test]
    fn ordered_layouts_give_correct_lpm() {
        let mut plo = PrefixLengthOrderedTcam::new(32);
        let mut naive = FullyOrderedTcam::new(32);
        let routes = [
            route("0.0.0.0/0", 1),
            route("10.0.0.0/8", 2),
            route("10.1.0.0/16", 3),
            route("10.1.2.0/24", 4),
        ];
        load(&mut plo, routes);
        load(&mut naive, routes);
        for (addr, want) in [
            (0x0A01_0203u32, 4u16),
            (0x0A01_0303, 3),
            (0x0A02_0000, 2),
            (0xC000_0000, 1),
        ] {
            assert_eq!(plo.lookup(addr), Some(NextHop(want)));
            assert_eq!(naive.lookup(addr), Some(NextHop(want)));
        }
    }

    #[test]
    fn reinsert_same_prefix_is_in_place_everywhere() {
        let mut u = UnorderedTcam::new(8);
        let mut p_ = PrefixLengthOrderedTcam::new(8);
        let mut n = FullyOrderedTcam::new(8);
        for t in [&mut u as &mut dyn TcamTable, &mut p_, &mut n] {
            t.insert(route("10.0.0.0/8", 1)).unwrap();
            let c = t.insert(route("10.0.0.0/8", 2)).unwrap();
            assert_eq!(c.moves, 0);
            assert_eq!(c.writes, 1);
            assert_eq!(t.len(), 1);
            assert_eq!(t.lookup(0x0A00_0001), Some(NextHop(2)));
        }
    }

    #[test]
    fn delete_absent_returns_none() {
        let mut t = PrefixLengthOrderedTcam::new(8);
        assert!(t.delete(p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn update_cost_arithmetic() {
        let a = UpdateCost {
            writes: 1,
            moves: 2,
            erases: 3,
        };
        let b = UpdateCost {
            writes: 10,
            moves: 20,
            erases: 30,
        };
        let c = a + b;
        assert_eq!(c.total_ops(), 66);
        let mut d = UpdateCost::default();
        d += a;
        assert_eq!(d, a);
    }

    #[test]
    fn grouped_full_reports_error() {
        let mut t = FullyOrderedTcam::new(2);
        t.insert(route("10.0.0.0/8", 1)).unwrap();
        t.insert(route("11.0.0.0/8", 1)).unwrap();
        assert!(t.insert(route("12.0.0.0/8", 1)).is_err());
    }
}
