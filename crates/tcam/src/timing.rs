//! Device timing and power models.
//!
//! The paper's prototype uses a CYNSE70256 TCAM: 256 K entries, 36-bit
//! words, 41.5 MHz, so one search — and, to first order, one entry
//! write/move — costs about 24 ns. TTF2 and TTF3 are reported as
//! operation counts multiplied by this constant, which is exactly what
//! [`TcamTiming::cost_ns`] computes.

use crate::tables::UpdateCost;

/// Timing constants of one TCAM device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcamTiming {
    /// One search cycle, nanoseconds.
    pub search_ns: f64,
    /// One slot write/move/erase, nanoseconds.
    pub write_ns: f64,
}

impl TcamTiming {
    /// The paper's device: CYNSE70256 at 41.5 MHz ⇒ 24 ns per operation.
    #[must_use]
    pub fn cynse70256() -> Self {
        TcamTiming {
            search_ns: 24.0,
            write_ns: 24.0,
        }
    }

    /// A faster contemporary device (166 MHz, the clock the paper quotes
    /// for "common TCAMs").
    #[must_use]
    pub fn fast_166mhz() -> Self {
        let ns = 1e3 / 166.0;
        TcamTiming {
            search_ns: ns,
            write_ns: ns,
        }
    }

    /// Nanoseconds consumed by an update of the given cost.
    #[must_use]
    pub fn cost_ns(&self, cost: UpdateCost) -> f64 {
        cost.total_ops() as f64 * self.write_ns
    }
}

impl Default for TcamTiming {
    fn default() -> Self {
        TcamTiming::cynse70256()
    }
}

/// Power accounting: a TCAM search activates every entry in the searched
/// block, so energy is proportional to entries activated.
///
/// Partitioned schemes win power by only activating one partition per
/// search; this counter lets the engine report that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerStats {
    /// Searches issued.
    pub searches: u64,
    /// Total entries activated across all searches.
    pub entries_activated: u64,
}

impl PowerStats {
    /// Records one search that activated `entries` entries.
    pub fn record_search(&mut self, entries: usize) {
        self.searches += 1;
        self.entries_activated += entries as u64;
    }

    /// Mean entries activated per search (0 if none issued).
    #[must_use]
    pub fn mean_activated(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.entries_activated as f64 / self.searches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_device() {
        let t = TcamTiming::default();
        assert_eq!(t.write_ns, 24.0);
        assert_eq!(t, TcamTiming::cynse70256());
    }

    #[test]
    fn cost_ns_multiplies_ops() {
        let t = TcamTiming::cynse70256();
        let c = UpdateCost {
            writes: 1,
            moves: 14,
            erases: 0,
        };
        assert!((t.cost_ns(c) - 360.0).abs() < 1e-9);
    }

    #[test]
    fn fast_device_is_faster() {
        assert!(TcamTiming::fast_166mhz().search_ns < TcamTiming::cynse70256().search_ns);
    }

    #[test]
    fn power_stats_average() {
        let mut p = PowerStats::default();
        assert_eq!(p.mean_activated(), 0.0);
        p.record_search(100);
        p.record_search(300);
        assert_eq!(p.searches, 2);
        assert_eq!(p.mean_activated(), 200.0);
    }
}
