//! CAO: chain-ancestor ordering (Shah & Gupta, Hot Interconnects 2000).
//!
//! The priority encoder only needs the *longest* match to win, and two
//! prefixes can both match an address only when one is the other's
//! ancestor. So the full length order of
//! [`PrefixLengthOrderedTcam`](crate::PrefixLengthOrderedTcam) is
//! overkill: it suffices that every prefix sits at a lower slot (higher
//! priority) than all of its ancestors — ordering along trie *chains*
//! only. Unrelated prefixes can go anywhere, holes are allowed, and an
//! insert usually finds a free slot inside its chain window with zero
//! moves; when the window is saturated, one boundary entry per chain
//! level is relocated (≤ 32, ≈ 1 in practice).
//!
//! This is the strongest classical update scheme for *overlapping*
//! tables — the fair upper baseline for CLUE's unordered layout, which
//! beats it only because ONRTC removed the overlap constraint entirely.

use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Unbounded};

use clue_fib::{NextHop, Prefix, Route, Trie};

use crate::slots::{SlotArray, TcamStats};
use crate::tables::{TcamFullError, TcamTable, UpdateCost};

/// A TCAM under chain-ancestor ordering.
#[derive(Debug, Clone)]
pub struct CaoTcam {
    arr: SlotArray,
    /// Stored prefix → slot (structural view for window queries).
    index: Trie<usize>,
    /// Free slots, ordered for window-range queries.
    free: BTreeSet<usize>,
}

impl CaoTcam {
    /// Creates an empty table with `capacity` slots.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CaoTcam {
            arr: SlotArray::new(capacity),
            index: Trie::new(),
            free: (0..capacity).collect(),
        }
    }

    /// The chain window of `prefix`: slots strictly between its deepest
    /// stored descendant and its shallowest stored ancestor.
    ///
    /// Returns `(lo, hi)` with the legal slots being `lo+1 ..= hi-1`.
    fn window(&self, prefix: Prefix) -> (isize, isize) {
        // Descendants: stored prefixes inside `prefix` must sit at lower
        // slots. Their maximum bounds the window from below.
        let lo = self
            .index
            .iter_subtree(prefix)
            .filter(|&(p, _)| p != prefix)
            .map(|(_, &slot)| slot as isize)
            .max()
            .unwrap_or(-1);
        // Ancestors: walk the path from the root.
        let mut hi = self.arr.capacity() as isize;
        let mut node = Some(self.index.root());
        for depth in 0..prefix.len() {
            let Some(n) = node else { break };
            if let Some(&slot) = n.value() {
                if n.prefix() != prefix {
                    hi = hi.min(slot as isize);
                }
            }
            node = n.child(Prefix::addr_bit(prefix.bits(), depth));
        }
        // (the node at the prefix itself, if reached, is not a bound)
        (lo, hi)
    }

    /// Pops a free slot inside `(lo, hi)` exclusive, if any.
    fn take_free_in(&mut self, lo: isize, hi: isize) -> Option<usize> {
        let start = if lo < 0 {
            Unbounded
        } else {
            Excluded(lo as usize)
        };
        let slot = *self
            .free
            .range((start, Unbounded))
            .next()
            .filter(|&&f| (f as isize) < hi)?;
        self.free.remove(&slot);
        Some(slot)
    }

    /// Makes room inside `(lo, hi)` by relocating a boundary ancestor
    /// (the entry at `hi`) deeper into its own window, cascading if
    /// necessary. Returns the freed slot.
    fn open_by_moving_ancestors(&mut self, hi: isize) -> Option<usize> {
        if hi < 0 || hi as usize >= self.arr.capacity() {
            return None;
        }
        let slot = hi as usize;
        let entry = self.arr.entry(slot)?;
        let prefix = entry.prefix().expect("routing entries are prefixes");
        let (_, anc_hi) = self.window(prefix);
        // The boundary entry may move anywhere above its own slot up to
        // its own shallowest ancestor.
        let dest = match self.take_free_in(slot as isize, anc_hi) {
            Some(d) => d,
            None => self.open_by_moving_ancestors(anc_hi)?,
        };
        self.arr.relocate(slot, dest);
        *self
            .index
            .get_mut(prefix)
            .expect("index tracks stored prefixes") = dest;
        Some(slot)
    }

    /// Symmetric: relocate the boundary descendant (entry at `lo`)
    /// higher (toward slot 0) within its own window.
    fn open_by_moving_descendants(&mut self, lo: isize) -> Option<usize> {
        if lo < 0 || lo as usize >= self.arr.capacity() {
            return None;
        }
        let slot = lo as usize;
        let entry = self.arr.entry(slot)?;
        let prefix = entry.prefix().expect("routing entries are prefixes");
        let (desc_lo, _) = self.window(prefix);
        let dest = match self.take_free_in(desc_lo, slot as isize) {
            Some(d) => d,
            None => self.open_by_moving_descendants(desc_lo)?,
        };
        self.arr.relocate(slot, dest);
        *self
            .index
            .get_mut(prefix)
            .expect("index tracks stored prefixes") = dest;
        Some(slot)
    }

    /// Chain-order invariant: every stored prefix sits at a lower slot
    /// than each of its stored ancestors.
    #[must_use]
    pub fn chain_order_holds(&self) -> bool {
        self.index.iter().all(|(p, &slot)| {
            let mut q = p;
            while let Some(parent) = q.parent() {
                q = parent;
                if let Some(&anc_slot) = self.index.get(q) {
                    if anc_slot <= slot {
                        return false;
                    }
                }
            }
            true
        })
    }
}

impl TcamTable for CaoTcam {
    fn insert(&mut self, route: Route) -> Result<UpdateCost, TcamFullError> {
        let before = self.arr.stats();
        if self.arr.rewrite_action(route.prefix, route.next_hop) {
            return Ok(UpdateCost::between(before, self.arr.stats()));
        }
        if self.free.is_empty() {
            return Err(TcamFullError {
                capacity: self.arr.capacity(),
            });
        }
        let (lo, hi) = self.window(route.prefix);
        let slot = self
            .take_free_in(lo, hi)
            .or_else(|| self.open_by_moving_ancestors(hi))
            .or_else(|| self.open_by_moving_descendants(lo))
            .ok_or(TcamFullError {
                capacity: self.arr.capacity(),
            })?;
        self.arr.write(slot, route);
        self.index.insert(route.prefix, slot);
        debug_assert!(self.chain_order_holds());
        Ok(UpdateCost::between(before, self.arr.stats()))
    }

    fn delete(&mut self, prefix: Prefix) -> Option<UpdateCost> {
        let slot = self.arr.slot_of(prefix)?;
        let before = self.arr.stats();
        self.arr.erase(slot);
        self.index.remove(prefix);
        self.free.insert(slot);
        Some(UpdateCost::between(before, self.arr.stats()))
    }

    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.arr.lookup(addr).map(|(_, a)| a)
    }

    fn len(&self) -> usize {
        self.arr.len()
    }

    fn capacity(&self) -> usize {
        self.arr.capacity()
    }

    fn stats(&self) -> TcamStats {
        self.arr.stats()
    }

    fn reset_stats(&mut self) {
        self.arr.reset_stats();
    }

    fn routes(&self) -> Vec<Route> {
        self.arr.routes().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::load;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn unrelated_prefixes_insert_with_zero_moves() {
        let mut t = CaoTcam::new(16);
        for (i, s) in ["10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/16"]
            .iter()
            .enumerate()
        {
            let c = t.insert(route(s, i as u16)).unwrap();
            assert_eq!(c.moves, 0, "unrelated insert must not move anything");
        }
        assert!(t.chain_order_holds());
    }

    #[test]
    fn chain_order_enforced_on_nested_inserts() {
        let mut t = CaoTcam::new(16);
        // Insert ancestor first, then descendants — each must land above.
        t.insert(route("0.0.0.0/0", 1)).unwrap();
        t.insert(route("10.0.0.0/8", 2)).unwrap();
        t.insert(route("10.1.0.0/16", 3)).unwrap();
        assert!(t.chain_order_holds());
        for (addr, want) in [(0x0A01_0001u32, 3u16), (0x0A02_0001, 2), (0x0B00_0001, 1)] {
            assert_eq!(t.lookup(addr), Some(NextHop(want)));
        }
    }

    #[test]
    fn saturated_window_relocates_boundary() {
        // Capacity 3, fill it so the new descendant's window has no free
        // slot and an ancestor must move.
        let mut t = CaoTcam::new(4);
        t.insert(route("0.0.0.0/0", 1)).unwrap();
        t.insert(route("10.0.0.0/8", 2)).unwrap();
        t.insert(route("10.1.0.0/16", 3)).unwrap();
        // One free slot left, but it may violate the chain; inserting a
        // /24 under all three must still succeed.
        let c = t.insert(route("10.1.2.0/24", 4)).unwrap();
        assert!(t.chain_order_holds());
        assert!(c.total_ops() >= 1);
        assert_eq!(t.lookup(0x0A01_0201), Some(NextHop(4)));
    }

    #[test]
    fn delete_is_one_erase_no_moves() {
        let mut t = CaoTcam::new(8);
        load(&mut t, [route("10.0.0.0/8", 1), route("10.1.0.0/16", 2)]);
        let c = t.delete(p("10.0.0.0/8")).unwrap();
        assert_eq!(c.moves, 0);
        assert_eq!(c.erases, 1);
        assert_eq!(t.lookup(0x0A02_0001), None);
        assert_eq!(t.lookup(0x0A01_0001), Some(NextHop(2)));
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = CaoTcam::new(2);
        t.insert(route("10.0.0.0/8", 1)).unwrap();
        t.insert(route("11.0.0.0/8", 2)).unwrap();
        assert!(t.insert(route("12.0.0.0/8", 3)).is_err());
        t.delete(p("10.0.0.0/8")).unwrap();
        assert!(t.insert(route("12.0.0.0/8", 3)).is_ok());
    }

    #[test]
    fn rewrite_in_place() {
        let mut t = CaoTcam::new(4);
        t.insert(route("10.0.0.0/8", 1)).unwrap();
        let c = t.insert(route("10.0.0.0/8", 7)).unwrap();
        assert_eq!(c.moves, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A00_0001), Some(NextHop(7)));
    }

    #[test]
    fn deep_chain_in_tight_space() {
        // A full 8-level chain in exactly 8 slots, inserted shallowest
        // first: every insert lands above its ancestors.
        let mut t = CaoTcam::new(8);
        for len in 1..=8u8 {
            t.insert(Route::new(
                Prefix::new(0xFF00_0000, len),
                NextHop(u16::from(len)),
            ))
            .unwrap();
        }
        assert!(t.chain_order_holds());
        assert_eq!(t.lookup(0xFF00_0001), Some(NextHop(8)));
    }
}
