//! TCAM device model for the CLUE reproduction.
//!
//! The paper's evaluation runs on real linecard TCAMs; this crate
//! replaces them with a cycle-cost-accurate software model (see
//! `DESIGN.md` §1 for the substitution argument):
//!
//! * [`TernaryEntry`] / [`SlotArray`] — the word array plus its software
//!   mirror, counting every write, move, and erase;
//! * [`TcamTable`] — the policy trait with three layouts:
//!   [`UnorderedTcam`] (CLUE, O(1) updates, needs non-overlap),
//!   [`PrefixLengthOrderedTcam`] (classical ≤ 32-shift layout, charged
//!   to CLPL), and [`FullyOrderedTcam`] (naive O(n) baseline);
//! * [`TcamTiming`] / [`PowerStats`] — the 24 ns-per-operation cost model
//!   of the paper's CYNSE70256 and per-search activation accounting.
//!
//! # Examples
//!
//! ```
//! use clue_fib::{NextHop, Route};
//! use clue_tcam::{TcamTable, TcamTiming, UnorderedTcam};
//!
//! let mut tcam = UnorderedTcam::new(1024);
//! let cost = tcam.insert(Route::new("10.0.0.0/8".parse()?, NextHop(3)))?;
//! // CLUE's headline: one slot operation = 24 ns per update.
//! assert_eq!(TcamTiming::default().cost_ns(cost), 24.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cao;
mod entry;
mod slots;
mod tables;
mod timing;

pub use cao::CaoTcam;
pub use entry::TernaryEntry;
pub use slots::{SlotArray, TcamStats};
pub use tables::{
    load, FullyOrderedTcam, PrefixLengthOrderedTcam, TcamFullError, TcamTable, UnorderedTcam,
    UpdateCost,
};
pub use timing::{PowerStats, TcamTiming};
