//! Ternary entries: the unit a TCAM stores.

use clue_fib::{mask, NextHop, Prefix, Route};

/// One TCAM word: value/mask pair plus the associated action read from
/// the attached SRAM on a match.
///
/// Routing entries always use prefix-form masks; the general value/mask
/// representation is kept because that is what the hardware stores (and
/// what a packet-classification extension would need).
///
/// # Examples
///
/// ```
/// use clue_fib::{NextHop, Route};
/// use clue_tcam::TernaryEntry;
///
/// let e = TernaryEntry::from_route(Route::new("10.0.0.0/8".parse()?, NextHop(1)));
/// assert!(e.matches(0x0A01_0203));
/// assert!(!e.matches(0x0B01_0203));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TernaryEntry {
    /// Cared-about bit values.
    pub value: u32,
    /// Bit positions that participate in the match (1 = compare).
    pub mask: u32,
    /// Action returned on a match.
    pub action: NextHop,
}

impl TernaryEntry {
    /// Builds an entry from a route.
    #[must_use]
    pub fn from_route(route: Route) -> Self {
        TernaryEntry {
            value: route.prefix.bits(),
            mask: mask(route.prefix.len()),
            action: route.next_hop,
        }
    }

    /// Whether `addr` matches this entry.
    #[must_use]
    pub fn matches(self, addr: u32) -> bool {
        (addr & self.mask) == self.value
    }

    /// Interprets the entry as a prefix, if the mask is prefix-form
    /// (contiguous leading ones).
    #[must_use]
    pub fn prefix(self) -> Option<Prefix> {
        let len = self.mask.leading_ones() as u8;
        (mask(len) == self.mask).then(|| Prefix::new(self.value, len))
    }

    /// Converts back to a route (prefix-form masks only).
    #[must_use]
    pub fn route(self) -> Option<Route> {
        self.prefix().map(|p| Route::new(p, self.action))
    }
}

impl From<Route> for TernaryEntry {
    fn from(route: Route) -> Self {
        TernaryEntry::from_route(route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    #[test]
    fn round_trip_through_route() {
        let r = route("192.168.0.0/16", 5);
        let e = TernaryEntry::from_route(r);
        assert_eq!(e.route(), Some(r));
        assert_eq!(e.prefix(), Some(r.prefix));
    }

    #[test]
    fn match_respects_mask() {
        let e = TernaryEntry::from_route(route("10.0.0.0/8", 1));
        assert!(e.matches(0x0AFF_FFFF));
        assert!(!e.matches(0x0B00_0000));
        let default = TernaryEntry::from_route(route("0.0.0.0/0", 1));
        assert!(default.matches(0));
        assert!(default.matches(u32::MAX));
    }

    #[test]
    fn non_prefix_mask_has_no_prefix_view() {
        let e = TernaryEntry {
            value: 0,
            mask: 0x0F0F_0000,
            action: NextHop(1),
        };
        assert_eq!(e.prefix(), None);
        assert_eq!(e.route(), None);
        assert!(e.matches(0xF0F0_FFFF));
    }

    #[test]
    fn host_entry_matches_exactly_one_address() {
        let e = TernaryEntry::from_route(route("1.2.3.4/32", 9));
        assert!(e.matches(0x0102_0304));
        assert!(!e.matches(0x0102_0305));
    }
}
