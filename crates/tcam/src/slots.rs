//! The slot array: physical storage shared by every layout policy.
//!
//! [`SlotArray`] models the TCAM's word array plus the software mirror a
//! control plane keeps (prefix → slot). All writes and entry moves are
//! counted — the paper's TTF2 is exactly `moves × 24 ns` — and the mirror
//! gives the simulator O(1) lookups instead of scanning 256 K slots per
//! packet, without changing any of the accounted costs.

use std::collections::HashMap;

use clue_fib::{mask, NextHop, Prefix, Route};

use crate::entry::TernaryEntry;

/// Cumulative operation counters for one TCAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcamStats {
    /// Slot writes of brand-new content (placing an inserted entry).
    pub writes: u64,
    /// Entry relocations (the "shifts" of the domino effect).
    pub moves: u64,
    /// Entries erased.
    pub erases: u64,
}

impl TcamStats {
    /// Total slot operations (each costs one TCAM write cycle).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.writes + self.moves + self.erases
    }
}

/// The physical slot array of one TCAM, with a software mirror.
#[derive(Debug, Clone)]
pub struct SlotArray {
    slots: Vec<Option<TernaryEntry>>,
    /// Prefix → slot index (the control plane's shadow copy).
    mirror: HashMap<Prefix, usize>,
    /// How many stored entries exist per prefix length (speeds up LPM).
    len_histogram: [u32; 33],
    stats: TcamStats,
}

impl SlotArray {
    /// Creates an array with `capacity` slots, all empty.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlotArray {
            slots: vec![None; capacity],
            mirror: HashMap::new(),
            len_histogram: [0; 33],
            stats: TcamStats::default(),
        }
    }

    /// Loads a route snapshot into consecutive slots of a fresh array
    /// sized to fit exactly (the lookup-plane build path: content is
    /// placed once and never updated in place).
    ///
    /// # Panics
    ///
    /// Panics on duplicate prefixes.
    #[must_use]
    pub fn from_routes(routes: &[Route]) -> Self {
        let mut slots = SlotArray::new(routes.len().max(1));
        for (i, &r) in routes.iter().enumerate() {
            slots.write(i, r);
        }
        slots
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mirror.is_empty()
    }

    /// Cumulative operation counters.
    #[must_use]
    pub fn stats(&self) -> TcamStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = TcamStats::default();
    }

    /// The entry stored at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn entry(&self, slot: usize) -> Option<TernaryEntry> {
        self.slots[slot]
    }

    /// The slot index of `prefix`, if stored.
    #[must_use]
    pub fn slot_of(&self, prefix: Prefix) -> Option<usize> {
        self.mirror.get(&prefix).copied()
    }

    /// Writes a brand-new route into an empty slot (counted as a write).
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or the prefix is already stored —
    /// layout policies must never double-place an entry.
    pub fn write(&mut self, slot: usize, route: Route) {
        assert!(self.slots[slot].is_none(), "slot {slot} already occupied");
        let entry = TernaryEntry::from_route(route);
        let prev = self.mirror.insert(route.prefix, slot);
        assert!(prev.is_none(), "prefix {} already stored", route.prefix);
        self.slots[slot] = Some(entry);
        self.len_histogram[route.prefix.len() as usize] += 1;
        self.stats.writes += 1;
    }

    /// Rewrites the action of the entry holding `prefix` in place
    /// (counted as a write; no entry movement).
    ///
    /// Returns `false` if the prefix is not stored.
    pub fn rewrite_action(&mut self, prefix: Prefix, action: NextHop) -> bool {
        let Some(&slot) = self.mirror.get(&prefix) else {
            return false;
        };
        let entry = self.slots[slot].as_mut().expect("mirror points at entry");
        entry.action = action;
        self.stats.writes += 1;
        true
    }

    /// Erases the entry at `slot` (counted as an erase) and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn erase(&mut self, slot: usize) -> TernaryEntry {
        let entry = self.slots[slot].take().expect("erase of empty slot");
        let prefix = entry.prefix().expect("routing entries are prefixes");
        self.mirror.remove(&prefix);
        self.len_histogram[prefix.len() as usize] -= 1;
        self.stats.erases += 1;
        entry
    }

    /// Moves the entry in `from` to the empty slot `to` (counted as one
    /// move — the hardware cost the domino effect multiplies).
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty or `to` is occupied.
    pub fn relocate(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        assert!(self.slots[to].is_none(), "relocate into occupied slot {to}");
        let entry = self.slots[from].take().expect("relocate of empty slot");
        let prefix = entry.prefix().expect("routing entries are prefixes");
        self.slots[to] = Some(entry);
        *self.mirror.get_mut(&prefix).expect("mirror tracks entry") = to;
        self.stats.moves += 1;
    }

    /// Longest-prefix match over the stored entries, via the mirror.
    ///
    /// Functionally identical to a full ternary search plus priority
    /// encoding; O(number of distinct lengths) instead of O(capacity).
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<(Prefix, NextHop)> {
        for len in (0..=32u8).rev() {
            if self.len_histogram[len as usize] == 0 {
                continue;
            }
            let p = Prefix::new(addr & mask(len), len);
            if let Some(&slot) = self.mirror.get(&p) {
                let e = self.slots[slot].expect("mirror points at entry");
                return Some((p, e.action));
            }
        }
        None
    }

    /// Any-match lookup: valid only when the stored entries are
    /// non-overlapping (at most one can match) — CLUE's mode, where the
    /// priority encoder has been removed.
    #[must_use]
    pub fn lookup_any(&self, addr: u32) -> Option<(Prefix, NextHop)> {
        // With non-overlapping content LPM degenerates to the unique
        // match, so the mirror walk returns exactly what the
        // encoder-free hardware would.
        self.lookup(addr)
    }

    /// Iterates stored routes in slot order.
    pub fn routes(&self) -> impl Iterator<Item = Route> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.and_then(TernaryEntry::route))
    }

    /// Debug check: mirror and slots agree.
    #[must_use]
    pub fn mirror_consistent(&self) -> bool {
        let stored = self.slots.iter().flatten().count();
        stored == self.mirror.len()
            && self
                .mirror
                .iter()
                .all(|(&p, &slot)| self.slots[slot].is_some_and(|e| e.prefix() == Some(p)))
            && (0..=32).all(|l| {
                self.len_histogram[l] as usize
                    == self.mirror.keys().filter(|p| p.len() as usize == l).count()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    #[test]
    fn write_lookup_erase_cycle() {
        let mut arr = SlotArray::new(8);
        arr.write(3, route("10.0.0.0/8", 1));
        assert_eq!(arr.len(), 1);
        assert_eq!(arr.lookup(0x0A00_0001).map(|(_, a)| a), Some(NextHop(1)));
        assert_eq!(arr.slot_of("10.0.0.0/8".parse().unwrap()), Some(3));
        let e = arr.erase(3);
        assert_eq!(e.action, NextHop(1));
        assert!(arr.is_empty());
        assert_eq!(arr.lookup(0x0A00_0001), None);
        assert_eq!(
            arr.stats(),
            TcamStats {
                writes: 1,
                moves: 0,
                erases: 1
            }
        );
        assert!(arr.mirror_consistent());
    }

    #[test]
    fn lpm_picks_longest() {
        let mut arr = SlotArray::new(8);
        arr.write(0, route("10.0.0.0/8", 1));
        arr.write(1, route("10.1.0.0/16", 2));
        assert_eq!(arr.lookup(0x0A01_0001).map(|(_, a)| a), Some(NextHop(2)));
        assert_eq!(arr.lookup(0x0A02_0001).map(|(_, a)| a), Some(NextHop(1)));
    }

    #[test]
    fn relocate_counts_moves_and_keeps_mirror() {
        let mut arr = SlotArray::new(8);
        arr.write(0, route("10.0.0.0/8", 1));
        arr.relocate(0, 5);
        assert_eq!(arr.slot_of("10.0.0.0/8".parse().unwrap()), Some(5));
        assert_eq!(arr.stats().moves, 1);
        // Self-relocation is free.
        arr.relocate(5, 5);
        assert_eq!(arr.stats().moves, 1);
        assert!(arr.mirror_consistent());
    }

    #[test]
    fn rewrite_action_in_place() {
        let mut arr = SlotArray::new(4);
        arr.write(0, route("10.0.0.0/8", 1));
        assert!(arr.rewrite_action("10.0.0.0/8".parse().unwrap(), NextHop(7)));
        assert_eq!(arr.lookup(0x0A00_0001).map(|(_, a)| a), Some(NextHop(7)));
        assert!(!arr.rewrite_action("11.0.0.0/8".parse().unwrap(), NextHop(7)));
        assert_eq!(arr.stats().writes, 2);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_write_panics() {
        let mut arr = SlotArray::new(4);
        arr.write(0, route("10.0.0.0/8", 1));
        arr.write(0, route("11.0.0.0/8", 2));
    }

    #[test]
    #[should_panic(expected = "relocate into occupied")]
    fn relocate_into_occupied_panics() {
        let mut arr = SlotArray::new(4);
        arr.write(0, route("10.0.0.0/8", 1));
        arr.write(1, route("11.0.0.0/8", 2));
        arr.relocate(0, 1);
    }

    #[test]
    fn routes_iterates_in_slot_order() {
        let mut arr = SlotArray::new(8);
        arr.write(5, route("11.0.0.0/8", 2));
        arr.write(2, route("10.0.0.0/8", 1));
        let got: Vec<Route> = arr.routes().collect();
        assert_eq!(got, vec![route("10.0.0.0/8", 1), route("11.0.0.0/8", 2)]);
    }
}
