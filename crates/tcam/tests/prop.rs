//! Property tests: every layout policy must behave like a map with LPM
//! lookup, stay internally consistent, and respect its cost bound.

use std::collections::BTreeMap;

use clue_fib::{NextHop, Prefix, Route};
use clue_tcam::{CaoTcam, FullyOrderedTcam, PrefixLengthOrderedTcam, TcamTable, UnorderedTcam};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Route),
    Delete(Prefix),
}

fn arb_ops(max_len: u8) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<u32>(), 0u8..=max_len, 0u16..4, any::<bool>()), 1..80).prop_map(
        |v| {
            v.into_iter()
                .map(|(bits, len, nh, ins)| {
                    let p = Prefix::new(bits, len);
                    if ins {
                        Op::Insert(Route::new(p, NextHop(nh)))
                    } else {
                        Op::Delete(p)
                    }
                })
                .collect()
        },
    )
}

fn reference_lpm(model: &BTreeMap<Prefix, NextHop>, addr: u32) -> Option<NextHop> {
    model
        .iter()
        .filter(|(p, _)| p.contains_addr(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, &nh)| nh)
}

/// Drives a policy through `ops`, checking per-op cost with `max_cost`
/// and final behaviour against the map model.
fn check_policy<T: TcamTable>(
    table: &mut T,
    ops: &[Op],
    probes: &[u32],
    max_cost: impl Fn(&T) -> u64,
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<Prefix, NextHop> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(r) => {
                let cost = table.insert(r).expect("capacity sized for the op count");
                model.insert(r.prefix, r.next_hop);
                prop_assert!(
                    cost.total_ops() <= max_cost(table),
                    "insert cost {} over bound {}",
                    cost.total_ops(),
                    max_cost(table)
                );
            }
            Op::Delete(p) => {
                let cost = table.delete(p);
                let expect = model.remove(&p);
                prop_assert_eq!(cost.is_some(), expect.is_some());
                if let Some(c) = cost {
                    prop_assert!(c.total_ops() <= max_cost(table));
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }
    // Stored routes match the model exactly.
    let mut got: Vec<Route> = table.routes();
    got.sort();
    let want: Vec<Route> = model.iter().map(|(&p, &nh)| Route::new(p, nh)).collect();
    prop_assert_eq!(got, want);
    // LPM lookups agree with the reference.
    for &addr in probes {
        prop_assert_eq!(table.lookup(addr), reference_lpm(&model, addr));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plo_behaves_like_model(ops in arb_ops(32), probes in prop::collection::vec(any::<u32>(), 12)) {
        let mut t = PrefixLengthOrderedTcam::new(128);
        // PLO bound: one move per length group (≤ 33) + write + erase + 1
        // in-group swap.
        check_policy(&mut t, &ops, &probes, |_| 36)?;
    }

    #[test]
    fn naive_behaves_like_model(ops in arb_ops(32), probes in prop::collection::vec(any::<u32>(), 12)) {
        let mut t = FullyOrderedTcam::new(128);
        // Naive bound: shifts everything — at most len() moves + bookkeeping.
        check_policy(&mut t, &ops, &probes, |t| t.len() as u64 + 2)?;
    }

    #[test]
    fn unordered_behaves_like_model_on_disjoint_content(
        ops in arb_ops(8).prop_map(|ops| {
            // Restrict to one fixed length so content never overlaps —
            // the precondition for the encoder-free layout.
            ops.into_iter().map(|op| match op {
                Op::Insert(r) => Op::Insert(Route::new(
                    Prefix::new(r.prefix.bits(), 8), r.next_hop)),
                Op::Delete(p) => Op::Delete(Prefix::new(p.bits(), 8)),
            }).collect::<Vec<_>>()
        }),
        probes in prop::collection::vec(any::<u32>(), 12),
    ) {
        let mut t = UnorderedTcam::new(128);
        // CLUE bound: O(1) — never more than two slot operations.
        check_policy(&mut t, &ops, &probes, |_| 2)?;
    }

    #[test]
    fn cao_behaves_like_model(ops in arb_ops(32), probes in prop::collection::vec(any::<u32>(), 12)) {
        let mut t = CaoTcam::new(128);
        // CAO bound: one move per chain level per direction, plus
        // bookkeeping — far below the array size.
        check_policy(&mut t, &ops, &probes, |_| 70)?;
        prop_assert!(t.chain_order_holds());
    }

    /// All ordered policies agree with each other on identical content.
    #[test]
    fn policies_agree(ops in arb_ops(24), probes in prop::collection::vec(any::<u32>(), 16)) {
        // Use only non-overlapping content (single length) so Unordered
        // is applicable too.
        let mut plo = PrefixLengthOrderedTcam::new(128);
        let mut naive = FullyOrderedTcam::new(128);
        let mut cao = CaoTcam::new(128);
        for op in &ops {
            match *op {
                Op::Insert(r) => {
                    plo.insert(r).unwrap();
                    naive.insert(r).unwrap();
                    cao.insert(r).unwrap();
                }
                Op::Delete(p) => {
                    let a = plo.delete(p).is_some();
                    prop_assert_eq!(a, naive.delete(p).is_some());
                    prop_assert_eq!(a, cao.delete(p).is_some());
                }
            }
        }
        for &addr in &probes {
            prop_assert_eq!(plo.lookup(addr), naive.lookup(addr));
            prop_assert_eq!(plo.lookup(addr), cao.lookup(addr));
        }
    }
}
