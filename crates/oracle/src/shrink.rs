//! Greedy update-trace minimization and the reproducer file format.
//!
//! When a conformance check diverges on a 5 000-update trace, the
//! interesting part is usually 1–3 updates. [`shrink_trace`] is a
//! ddmin-style greedy minimizer: it repeatedly tries dropping chunks
//! (halving the chunk size down to single updates) and keeps any
//! removal after which the check *still fails*. The result together
//! with the initial table is serialized as a [`Reproducer`] — a plain
//! text file that `clue check --replay` (or a unit test) can load and
//! re-run deterministically.

use std::fmt::Write as _;

use clue_fib::{RouteTable, Update};

/// Minimizes `trace` while `still_fails` keeps returning `true`.
///
/// `still_fails` must be deterministic and must return `true` for the
/// full input trace; the returned trace is 1-minimal with respect to
/// removing contiguous chunks (removing any single remaining update
/// makes the failure disappear).
pub fn shrink_trace(
    trace: &[Update],
    mut still_fails: impl FnMut(&[Update]) -> bool,
) -> Vec<Update> {
    let mut current: Vec<Update> = trace.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if still_fails(&candidate) {
                current = candidate;
                // Keep `i`: the next chunk slid into this position.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            return current;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// A self-contained failing case: the initial table plus the
/// (minimized) update trace that makes a check diverge.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Human-oriented context (divergence message, seed, config); kept
    /// in `#` comments in the file.
    pub note: String,
    /// The initial routing table.
    pub table: RouteTable,
    /// The update trace to replay on it.
    pub trace: Vec<Update>,
}

impl Reproducer {
    /// Serializes to the reproducer text format:
    ///
    /// ```text
    /// # clue reproducer
    /// # <note lines>
    /// [table]
    /// 10.0.0.0/8 1
    /// [trace]
    /// A 10.1.0.0/16 2
    /// W 10.0.0.0/8
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# clue reproducer\n");
        for line in self.note.lines() {
            let _ = writeln!(out, "# {line}");
        }
        out.push_str("[table]\n");
        out.push_str(&self.table.to_text());
        out.push_str("[trace]\n");
        for u in &self.trace {
            let _ = writeln!(out, "{u}");
        }
        out
    }

    /// Parses the text format written by [`Reproducer::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        #[derive(PartialEq)]
        enum Section {
            Preamble,
            Table,
            Trace,
        }
        let mut section = Section::Preamble;
        let mut note = String::new();
        let mut table_text = String::new();
        let mut trace = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim();
                if section == Section::Preamble && comment != "clue reproducer" {
                    if !note.is_empty() {
                        note.push('\n');
                    }
                    note.push_str(comment);
                }
                continue;
            }
            match line {
                "[table]" => section = Section::Table,
                "[trace]" => section = Section::Trace,
                _ => match section {
                    Section::Preamble => {
                        return Err(format!("line {}: expected [table]", lineno + 1));
                    }
                    Section::Table => {
                        table_text.push_str(line);
                        table_text.push('\n');
                    }
                    Section::Trace => {
                        let u: Update = line
                            .parse()
                            .map_err(|_| format!("line {}: bad update {line:?}", lineno + 1))?;
                        trace.push(u);
                    }
                },
            }
        }
        let table = RouteTable::from_text(&table_text).map_err(|e| format!("table: {e}"))?;
        Ok(Reproducer { note, table, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::{NextHop, Prefix};

    fn upd(i: u32) -> Update {
        Update::Announce {
            prefix: Prefix::new(i << 16, 16),
            next_hop: NextHop((i % 5) as u16),
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let trace: Vec<Update> = (0..100).map(upd).collect();
        let culprit = upd(42);
        let minimized = shrink_trace(&trace, |t| t.contains(&culprit));
        assert_eq!(minimized, vec![culprit]);
    }

    #[test]
    fn shrinks_scattered_pair_to_exactly_two() {
        let trace: Vec<Update> = (0..64).map(upd).collect();
        let (a, b) = (upd(3), upd(57));
        let minimized = shrink_trace(&trace, |t| t.contains(&a) && t.contains(&b));
        assert_eq!(minimized, vec![a, b]);
    }

    #[test]
    fn order_dependent_failure_keeps_order() {
        // Fails only when a withdraw follows the announce of the same
        // prefix — shrinking must preserve the relative order.
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let announce = Update::Announce {
            prefix: p,
            next_hop: NextHop(1),
        };
        let withdraw = Update::Withdraw { prefix: p };
        let mut trace: Vec<Update> = (0..20).map(upd).collect();
        trace.insert(5, announce);
        trace.insert(15, withdraw);
        let fails = |t: &[Update]| {
            let ia = t.iter().position(|&u| u == announce);
            let iw = t.iter().position(|&u| u == withdraw);
            matches!((ia, iw), (Some(a), Some(w)) if a < w)
        };
        let minimized = shrink_trace(&trace, fails);
        assert_eq!(minimized, vec![announce, withdraw]);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(shrink_trace(&[], |_| true).is_empty());
    }

    #[test]
    fn reproducer_round_trips() {
        let mut table = RouteTable::new();
        table.insert("10.0.0.0/8".parse().unwrap(), NextHop(1));
        table.insert("192.168.0.0/16".parse().unwrap(), NextHop(2));
        let repro = Reproducer {
            note: "seed=7 updates=5000\nlookup divergence at 10.0.0.0".to_owned(),
            table,
            trace: vec![
                Update::Announce {
                    prefix: "10.1.0.0/16".parse().unwrap(),
                    next_hop: NextHop(3),
                },
                Update::Withdraw {
                    prefix: "10.0.0.0/8".parse().unwrap(),
                },
            ],
        };
        let text = repro.to_text();
        let parsed = Reproducer::from_text(&text).expect("round trip parses");
        assert_eq!(parsed, repro);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Reproducer::from_text("not a section\n").is_err());
        assert!(Reproducer::from_text("[table]\n10.0.0.0/8 1\n[trace]\nX nope\n").is_err());
    }

    #[test]
    fn empty_reproducer_round_trips() {
        let repro = Reproducer {
            note: String::new(),
            table: RouteTable::new(),
            trace: Vec::new(),
        };
        let parsed = Reproducer::from_text(&repro.to_text()).unwrap();
        assert_eq!(parsed, repro);
    }
}
