//! `clue-oracle` — an independent reference model and differential
//! conformance harness for the whole CLUE pipeline.
//!
//! Every correctness claim the rest of the workspace makes — ONRTC
//! semantic equivalence, O(1) non-overlapping TCAM update,
//! zero-redundancy even partitioning, data-plane DRed insertion, the
//! router runtime's epoch handoff — is a claim *about* a compressed,
//! partitioned, concurrent structure. The only trustworthy way to
//! falsify such claims end-to-end is to compare against a model too
//! simple to share any bugs with the thing under test. This crate
//! provides exactly that:
//!
//! * [`model::Oracle`] — a deliberately naive longest-prefix-match
//!   model: a flat route list, linear scans, sequential update
//!   application, no compression, no partitioning, no tries;
//! * [`probes`] — adversarial probe-set construction (prefix boundary
//!   addresses ±1, region midpoints, covered/uncovered gap edges,
//!   seeded random fill);
//! * [`harness`] — [`harness::run_check`], which drives the real stack
//!   (trie → ONRTC → partition → TCAM → DRed → router runtime) and the
//!   oracle with one seeded workload, asserting lookup-for-lookup
//!   agreement and structural invariants after every update batch, with
//!   optional fault injection ([`clue_router::FaultPlan`]) in the
//!   router phase;
//! * [`recovery`] — the crash-consistency phase: the workload journaled
//!   through `clue-store` with seeded crash points, journal-tail
//!   corruption, and resumed-service continuation, each recovery
//!   compared against the oracle at the exact preserved trace prefix;
//! * [`cluster`] — the sharded-deployment phase: the workload through a
//!   `clue-cluster` proxy over N shard primaries with warm standbys, a
//!   primary killed mid-burst and its standby promoted, asserting zero
//!   lost acks and per-shard bit-identical convergence;
//! * [`scenario`] — the adversarial-scenario phase: named `clue-trace`
//!   workloads (update storms, withdraw floods, flap storms, skewed
//!   lookups, MRT replays) checked sequentially against the oracle on
//!   every backend, then replayed live over the wire — single-node per
//!   backend and optionally sharded — asserting probe agreement and
//!   zero lost acks;
//! * [`shrink`] — greedy update-trace minimization and the reproducer
//!   file format a failing `clue check` run emits.
//!
//! The CLI front end is `clue check`; the `tests/` directory of this
//! crate holds the `#[test]` entry points.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod harness;
pub mod model;
pub mod netcheck;
pub mod probes;
pub mod recovery;
pub mod scenario;
pub mod shrink;

pub use cluster::{check_cluster_phase, ClusterOutcome};
pub use harness::{run_check, CheckConfig, CheckFailure, CheckReport, Divergence, Stage};
pub use model::Oracle;
pub use netcheck::{check_net_phase, NetOutcome};
pub use recovery::{check_recovery_phase, RecoveryOutcome};
pub use scenario::{run_scenario_check, ScenarioOutcome};
pub use shrink::{shrink_trace, Reproducer};
