//! Adversarial probe-set construction.
//!
//! Random addresses almost never land on the boundaries where
//! compression and partitioning bugs live: the first/last address of a
//! prefix, the address one step *outside* it (a covered/uncovered gap
//! edge, where an off-by-one in a region computation flips the match),
//! and the cut points between partitions. A probe set therefore
//! combines:
//!
//! * the five boundary probes of every *recently touched* prefix
//!   (low, high, low − 1, high + 1, midpoint — wrapping at the address
//!   space edges);
//! * the same probes for a seeded rotating sample of the standing
//!   table, so old regions keep being re-checked as the table churns;
//! * a seeded uniform-random fill for everything in between.

use clue_fib::Prefix;

/// Deterministic xorshift64* used for probe sampling — deliberately
/// not shared with any workload generator so probe choice and workload
/// stay independent.
#[derive(Debug, Clone)]
pub struct ProbeRng {
    state: u64,
}

impl ProbeRng {
    /// Creates the RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ProbeRng {
            state: seed ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The five adversarial addresses of one prefix: first, last, one
/// below, one above (wrapping), and the midpoint.
#[must_use]
pub fn boundary_probes(prefix: Prefix) -> [u32; 5] {
    let lo = prefix.low();
    let hi = prefix.high();
    [
        lo,
        hi,
        lo.wrapping_sub(1),
        hi.wrapping_add(1),
        lo + (hi - lo) / 2,
    ]
}

/// Builds one batch's probe set: boundary probes for every touched
/// prefix, boundary probes for a seeded `sample`-sized rotation of the
/// standing prefixes, and `random` uniform addresses. Sorted and
/// deduplicated.
#[must_use]
pub fn probe_set(
    standing: &[Prefix],
    touched: &[Prefix],
    seed: u64,
    sample: usize,
    random: usize,
) -> Vec<u32> {
    let mut rng = ProbeRng::new(seed);
    let mut out: Vec<u32> = Vec::with_capacity((touched.len() + sample) * 5 + random);
    for &p in touched {
        out.extend_from_slice(&boundary_probes(p));
    }
    if !standing.is_empty() {
        // A random starting point plus a stride coprime to most sizes
        // rotates through the whole table across batches.
        let start = rng.below(standing.len());
        for i in 0..sample.min(standing.len()) {
            let p = standing[(start + i * 7 + i) % standing.len()];
            out.extend_from_slice(&boundary_probes(p));
        }
    }
    for _ in 0..random {
        out.push(rng.next_u64() as u32);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_probes_bracket_the_prefix() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let probes = boundary_probes(p);
        assert!(probes.contains(&0x0A00_0000), "low");
        assert!(probes.contains(&0x0AFF_FFFF), "high");
        assert!(probes.contains(&0x09FF_FFFF), "low - 1 (uncovered side)");
        assert!(probes.contains(&0x0B00_0000), "high + 1 (uncovered side)");
        assert_eq!(probes.iter().filter(|a| p.contains_addr(**a)).count(), 3);
    }

    #[test]
    fn boundary_probes_wrap_at_address_space_edges() {
        let root = Prefix::root();
        let probes = boundary_probes(root);
        assert!(probes.contains(&0));
        assert!(probes.contains(&u32::MAX));
        // low-1 and high+1 wrap instead of under/overflowing.
        assert_eq!(probes[2], u32::MAX);
        assert_eq!(probes[3], 0);
    }

    #[test]
    fn probe_set_is_deterministic_and_deduped() {
        let standing: Vec<Prefix> = (0..50u32).map(|i| Prefix::new(i << 20, 12)).collect();
        let touched = [standing[3], standing[7]];
        let a = probe_set(&standing, &touched, 11, 16, 64);
        let b = probe_set(&standing, &touched, 11, 16, 64);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.dedup();
        assert_eq!(a, c, "already deduplicated");
        assert!(a.len() >= 2 * 5, "at least the touched boundaries survive");
    }

    #[test]
    fn probe_set_covers_touched_boundaries() {
        let touched = ["10.0.0.0/8".parse::<Prefix>().unwrap()];
        let set = probe_set(&[], &touched, 1, 8, 0);
        for a in boundary_probes(touched[0]) {
            assert!(set.contains(&a), "missing probe {a:#x}");
        }
    }

    #[test]
    fn empty_everything_is_fine() {
        assert!(probe_set(&[], &[], 5, 10, 0).is_empty());
        assert_eq!(probe_set(&[], &[], 5, 0, 3).len(), 3);
    }
}
