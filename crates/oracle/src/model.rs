//! The naive reference model: flat longest-prefix match.
//!
//! This is the anchor of the differential harness, so it must be too
//! simple to be wrong in the same way as anything it checks: a plain
//! `Vec<Route>`, linear scans for lookup, and sequential update
//! application. No trie, no compression, no partitioning, no sharing
//! of code with the structures under test beyond the `Prefix`
//! arithmetic itself.

use clue_fib::{NextHop, Prefix, Route, RouteTable, Update};

/// A flat-scan LPM model of a routing table.
///
/// # Examples
///
/// ```
/// use clue_fib::{NextHop, RouteTable, Update};
/// use clue_oracle::Oracle;
///
/// let mut table = RouteTable::new();
/// table.insert("10.0.0.0/8".parse()?, NextHop(1));
/// table.insert("10.1.0.0/16".parse()?, NextHop(2));
///
/// let mut oracle = Oracle::new(&table);
/// assert_eq!(oracle.lookup(0x0A01_0000), Some(NextHop(2)));
/// oracle.apply(Update::Withdraw { prefix: "10.1.0.0/16".parse()? });
/// assert_eq!(oracle.lookup(0x0A01_0000), Some(NextHop(1)));
/// # Ok::<(), clue_fib::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    routes: Vec<Route>,
}

impl Oracle {
    /// Builds the model from a routing table.
    #[must_use]
    pub fn new(table: &RouteTable) -> Self {
        Oracle {
            routes: table.iter().collect(),
        }
    }

    /// Number of routes held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the model holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Longest-prefix match by linear scan over every route.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<NextHop> {
        let mut best: Option<Route> = None;
        for &r in &self.routes {
            if r.prefix.contains_addr(addr) && best.is_none_or(|b| r.prefix.len() > b.prefix.len())
            {
                best = Some(r);
            }
        }
        best.map(|r| r.next_hop)
    }

    /// Applies one update sequentially: an announce replaces or appends
    /// the route for its prefix; a withdraw removes it.
    pub fn apply(&mut self, update: Update) {
        match update {
            Update::Announce { prefix, next_hop } => {
                for r in &mut self.routes {
                    if r.prefix == prefix {
                        r.next_hop = next_hop;
                        return;
                    }
                }
                self.routes.push(Route::new(prefix, next_hop));
            }
            Update::Withdraw { prefix } => {
                self.routes.retain(|r| r.prefix != prefix);
            }
        }
    }

    /// The prefixes currently held (unordered).
    #[must_use]
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.routes.iter().map(|r| r.prefix).collect()
    }

    /// Exports the model's state as a [`RouteTable`].
    #[must_use]
    pub fn table(&self) -> RouteTable {
        self.routes.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(s: &str, nh: u16) -> (Prefix, NextHop) {
        (s.parse().unwrap(), NextHop(nh))
    }

    fn table(routes: &[(&str, u16)]) -> RouteTable {
        routes.iter().map(|&(p, nh)| route(p, nh)).collect()
    }

    #[test]
    fn longest_match_wins() {
        let o = Oracle::new(&table(&[
            ("0.0.0.0/0", 9),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
        ]));
        assert_eq!(o.lookup(0x0A01_0200), Some(NextHop(3)));
        assert_eq!(o.lookup(0x0A01_0300), Some(NextHop(2)));
        assert_eq!(o.lookup(0x0A02_0000), Some(NextHop(1)));
        assert_eq!(o.lookup(0x0B00_0000), Some(NextHop(9)));
    }

    #[test]
    fn empty_model_matches_nothing() {
        let o = Oracle::new(&RouteTable::new());
        assert!(o.is_empty());
        assert_eq!(o.lookup(0), None);
        assert_eq!(o.lookup(u32::MAX), None);
    }

    #[test]
    fn no_default_route_means_misses_exist() {
        let o = Oracle::new(&table(&[("10.0.0.0/8", 1)]));
        assert_eq!(o.lookup(0x0B00_0000), None);
        assert_eq!(o.lookup(0x09FF_FFFF), None);
        assert_eq!(o.lookup(0x0A00_0000), Some(NextHop(1)));
        assert_eq!(o.lookup(0x0AFF_FFFF), Some(NextHop(1)));
    }

    #[test]
    fn announce_replaces_and_withdraw_removes() {
        let mut o = Oracle::new(&table(&[("10.0.0.0/8", 1)]));
        o.apply(Update::Announce {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: NextHop(7),
        });
        assert_eq!(o.len(), 1, "re-announce must not duplicate");
        assert_eq!(o.lookup(0x0A00_0001), Some(NextHop(7)));
        o.apply(Update::Withdraw {
            prefix: "10.0.0.0/8".parse().unwrap(),
        });
        assert!(o.is_empty());
        assert_eq!(o.lookup(0x0A00_0001), None);
        // Withdrawing an absent prefix is a no-op.
        o.apply(Update::Withdraw {
            prefix: "10.0.0.0/8".parse().unwrap(),
        });
        assert!(o.is_empty());
    }

    #[test]
    fn table_round_trip() {
        let t = table(&[("10.0.0.0/8", 1), ("192.168.0.0/16", 2)]);
        let o = Oracle::new(&t);
        assert_eq!(o.table(), t);
    }

    #[test]
    fn sequential_apply_equals_route_table_apply() {
        let t = table(&[("10.0.0.0/8", 1), ("10.128.0.0/9", 2)]);
        let updates = [
            Update::Announce {
                prefix: "10.64.0.0/10".parse().unwrap(),
                next_hop: NextHop(3),
            },
            Update::Withdraw {
                prefix: "10.0.0.0/8".parse().unwrap(),
            },
            Update::Announce {
                prefix: "10.128.0.0/9".parse().unwrap(),
                next_hop: NextHop(4),
            },
        ];
        let mut o = Oracle::new(&t);
        let mut reference = t.clone();
        for &u in &updates {
            o.apply(u);
            reference.apply(u);
        }
        assert_eq!(o.table(), reference);
    }
}
