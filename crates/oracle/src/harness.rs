//! The differential conformance harness.
//!
//! [`run_check`] drives the real CLUE stack and the naive
//! [`Oracle`](crate::Oracle) with the same seeded workload in two
//! phases:
//!
//! 1. **Sequential phase** ([`check_trace`]) — applies the update trace
//!    batch-by-batch through [`CluePipeline`] (incremental ONRTC trie →
//!    unordered TCAM → DReds) and, after every batch, asserts
//!    * lookup-for-lookup agreement between the oracle and the
//!      compressed trie on an adversarial probe set
//!      ([`crate::probes`]);
//!    * the compressed table is non-overlapping and equals scratch
//!      recompression of the oracle's table;
//!    * the TCAM holds exactly the compressed entries;
//!    * the even-range partition covers the table exactly once (zero
//!      redundancy, no route split across a cut);
//!    * every DRed entry is live in the compressed table;
//!    * each reported TTF sample is consistent with the entry
//!      operations the diff actually performed.
//! 2. **Router phase** ([`check_router_phase`]) — runs the concurrent
//!    `clue-router` runtime, first packets-only (lookup agreement under
//!    thread interleaving), then packets racing the full update stream,
//!    optionally under a [`FaultPlan`], and asserts packet conservation
//!    plus convergence of the final FIB (original and compressed forms)
//!    to the oracle's sequential final state.
//!
//! On divergence the caller gets a [`CheckFailure`] carrying the full
//! workload; [`minimize_failure`] shrinks it to a small
//! [`Reproducer`].

use std::fmt;

use clue_compress::onrtc;
use clue_core::lookup::{plane_from_table, BackendKind};
use clue_core::update_pipeline::CluePipeline;
use clue_fib::gen::FibGen;
use clue_fib::{NextHop, Prefix, RouteTable, Update};
use clue_net::Transport;
use clue_partition::{EvenRangePartition, Indexer};
use clue_router::{FaultPlan, RouterConfig};
use clue_tcam::TcamTiming;
use clue_traffic::{PacketGen, UpdateGen};

use crate::model::Oracle;
use crate::probes::{probe_set, ProbeRng};
use crate::shrink::{shrink_trace, Reproducer};

/// Workload-independent salts so the update, packet, probe, and warm-up
/// streams derived from one user seed stay decorrelated.
const UPDATE_SALT: u64 = 0xA5A5_0001;
pub(crate) const PACKET_SALT: u64 = 0xA5A5_0002;
const PROBE_SALT: u64 = 0xA5A5_0003;
const WARM_SALT: u64 = 0xA5A5_0004;

/// Configuration of one conformance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Master seed; every derived stream (FIB, updates, packets,
    /// probes) is salted from it.
    pub seed: u64,
    /// Initial FIB size.
    pub routes: usize,
    /// Update-trace length.
    pub updates: usize,
    /// Updates per check batch (and the router's batch size).
    pub batch: usize,
    /// TCAM chip / router worker count.
    pub chips: usize,
    /// Per-chip DRed capacity.
    pub dred_capacity: usize,
    /// Packet count for the router phase.
    pub packets: usize,
    /// Standing-table prefixes boundary-probed per batch.
    pub probe_sample: usize,
    /// Random probes per batch.
    pub probe_random: usize,
    /// Fault plan for the router phase (None = clean run).
    pub faults: Option<FaultPlan>,
    /// Also run the networked phase: the same workload over loopback
    /// TCP through `clue-net`, faults injected client-side.
    pub net: bool,
    /// Also run the recovery phase: the same workload journaled through
    /// `clue-store` with seeded crash points, tail corruption, and
    /// resumed-service continuation (see [`crate::recovery`]).
    pub recovery: bool,
    /// Shard count for the cluster phase (see [`crate::cluster`]): with
    /// 2 or more shards the workload additionally runs through a
    /// sharded proxy/standby deployment with a mid-burst primary kill.
    /// 1 (the default) skips the phase.
    pub shards: usize,
    /// Lookup backend the live phases (router, net, recovery) publish
    /// their epochs with. The sequential phase always probes *all*
    /// backends against the oracle, so a divergence is attributed to
    /// the specific backend that disagreed.
    pub backend: BackendKind,
    /// Serving transport the networked phases (net, cluster) run their
    /// servers and proxy with; the workload and every assertion are
    /// transport-independent.
    pub transport: Transport,
}

impl CheckConfig {
    /// Defaults sized for `clue check`: a 2 000-route FIB, batches of
    /// 64, 4 chips, 20 000 router packets.
    #[must_use]
    pub fn new(seed: u64, updates: usize) -> Self {
        CheckConfig {
            seed,
            routes: 2_000,
            updates,
            batch: 64,
            chips: 4,
            dred_capacity: 256,
            packets: 20_000,
            probe_sample: 48,
            probe_random: 128,
            faults: None,
            net: false,
            recovery: false,
            shards: 1,
            backend: BackendKind::default(),
            transport: Transport::default(),
        }
    }
}

/// Which lookup path disagreed with the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The sequential phase's compressed trie (ONRTC output).
    Compressed,
    /// A named lookup backend built from the compressed table (the
    /// sequential phase probes every [`BackendKind`]), so a shrunken
    /// trace is attributable to the backend that disagreed.
    Backend(BackendKind),
    /// The concurrent router runtime's per-packet results.
    Router,
    /// The networked path (loopback TCP through `clue-net`).
    Net,
    /// State recovered from a `clue-store` data dir after a crash.
    Recovery,
    /// The sharded cluster path (proxy fan-out over `clue-cluster`).
    Cluster,
    /// The scenario phase (`clue-trace` workloads replayed live over
    /// the wire; see [`crate::scenario`]).
    Scenario,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Compressed => write!(f, "compressed trie"),
            Stage::Backend(kind) => write!(f, "{kind} backend"),
            Stage::Router => write!(f, "router runtime"),
            Stage::Net => write!(f, "networked path"),
            Stage::Recovery => write!(f, "recovered state"),
            Stage::Cluster => write!(f, "sharded cluster"),
            Stage::Scenario => write!(f, "scenario replay"),
        }
    }
}

/// A conformance violation, with enough context to print and to pick
/// the right shrinking predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A probe address resolved differently from the oracle.
    Lookup {
        /// Which real lookup path disagreed.
        stage: Stage,
        /// Update batch after which the disagreement was observed
        /// (0-based; sequential phase only, 0 for the router phase).
        batch: usize,
        /// The probed address.
        addr: u32,
        /// What the oracle answers.
        expected: Option<NextHop>,
        /// What the stack answered.
        got: Option<NextHop>,
    },
    /// A structural invariant broke after a batch.
    Invariant {
        /// Update batch after which the invariant was checked.
        batch: usize,
        /// Description of the violated invariant.
        what: String,
    },
    /// The router phase failed wholesale (conservation or final-state
    /// convergence).
    Router {
        /// Description of the violation.
        what: String,
    },
}

impl Divergence {
    /// Whether this divergence came from the concurrent router phase or
    /// the networked phase layered on it (and must therefore be shrunk
    /// against the router phase — a net-phase divergence almost always
    /// reproduces in-process, since the wire bridges into the same
    /// runtime; when it does not, [`minimize_failure`] keeps the trace
    /// at full length instead of shrinking into nothing).
    #[must_use]
    pub fn is_router_phase(&self) -> bool {
        matches!(
            self,
            Divergence::Router { .. }
                | Divergence::Lookup {
                    stage: Stage::Router | Stage::Net | Stage::Cluster | Stage::Scenario,
                    ..
                }
        )
    }
}

fn dotted(addr: u32) -> String {
    let o = addr.to_be_bytes();
    format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3])
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Lookup {
                stage,
                batch,
                addr,
                expected,
                got,
            } => write!(
                f,
                "lookup divergence ({stage}, batch {batch}): addr {} -> {got:?}, oracle says {expected:?}",
                dotted(*addr)
            ),
            Divergence::Invariant { batch, what } => {
                write!(f, "invariant violation (batch {batch}): {what}")
            }
            Divergence::Router { what } => write!(f, "router phase: {what}"),
        }
    }
}

/// A failed check: the divergence plus the workload that produced it.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// What went wrong.
    pub divergence: Divergence,
    /// The initial table the workload started from.
    pub table: RouteTable,
    /// The full update trace (pre-minimization).
    pub trace: Vec<Update>,
}

/// Statistics of a passing check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Update batches verified in the sequential phase.
    pub batches: usize,
    /// Probe lookups compared against the oracle.
    pub probes: u64,
    /// Updates applied.
    pub applied: usize,
    /// Epochs the router runtime published in the racing run.
    pub router_epochs: u64,
    /// Router-phase packet lookups (both runs).
    pub router_lookups: usize,
    /// Net-phase packet lookups over loopback TCP (0 when the net phase
    /// was not requested).
    pub net_lookups: usize,
    /// Net-phase client reconnects (0 on a healthy loopback).
    pub net_reconnects: u64,
    /// Recovery-phase crash points exercised (0 when the recovery phase
    /// was not requested).
    pub recovery_crashes: usize,
    /// Journal records replayed across all recovery-phase reopens.
    pub recovery_replayed: u64,
    /// Recovery-phase boundary probes compared against the oracle.
    pub recovery_probes: u64,
    /// Shards the cluster phase ran with (0 when skipped).
    pub cluster_shards: usize,
    /// Cluster-phase packet lookups through the proxy (0 when skipped).
    pub cluster_lookups: usize,
    /// Cluster-phase failovers performed (0 when skipped, else ≥ 1).
    pub cluster_failovers: u64,
    /// Cluster-phase post-burst probes compared against the oracle.
    pub cluster_probes: u64,
    /// Whether fault injection was active.
    pub faulted: bool,
}

/// Outcome of the sequential phase.
#[derive(Debug, Clone, Copy)]
pub struct SequentialOutcome {
    /// Batches checked.
    pub batches: usize,
    /// Probe lookups compared.
    pub probes: u64,
}

/// Outcome of the router phase.
#[derive(Debug, Clone, Copy)]
pub struct RouterOutcome {
    /// Epochs published while racing the update stream.
    pub epochs: u64,
    /// Packet lookups performed across both runs.
    pub lookups: usize,
}

/// Runs the full conformance check for `cfg`'s seeded workload.
///
/// # Errors
///
/// Returns the first [`CheckFailure`] observed; pass it to
/// [`minimize_failure`] for a reproducer.
///
/// # Panics
///
/// Panics if `cfg` is degenerate (zero routes, batch, chips, or DRed
/// capacity).
pub fn run_check(cfg: &CheckConfig) -> Result<CheckReport, Box<CheckFailure>> {
    assert!(
        cfg.routes > 0 && cfg.batch > 0 && cfg.chips > 0 && cfg.dred_capacity > 0,
        "check config sizes must be positive"
    );
    let table = FibGen::new(cfg.seed).routes(cfg.routes).generate();
    let trace = if cfg.updates > 0 {
        UpdateGen::new(cfg.seed ^ UPDATE_SALT).generate(&table, cfg.updates)
    } else {
        Vec::new()
    };

    let seq = check_trace(&table, &trace, cfg).map_err(|divergence| {
        Box::new(CheckFailure {
            divergence,
            table: table.clone(),
            trace: trace.clone(),
        })
    })?;
    let router = check_router_phase(&table, &trace, cfg).map_err(|divergence| {
        Box::new(CheckFailure {
            divergence,
            table: table.clone(),
            trace: trace.clone(),
        })
    })?;
    let net = if cfg.net {
        Some(
            crate::netcheck::check_net_phase(&table, &trace, cfg).map_err(|divergence| {
                Box::new(CheckFailure {
                    divergence,
                    table: table.clone(),
                    trace: trace.clone(),
                })
            })?,
        )
    } else {
        None
    };
    let recovery = if cfg.recovery {
        Some(
            crate::recovery::check_recovery_phase(&table, &trace, cfg).map_err(|divergence| {
                Box::new(CheckFailure {
                    divergence,
                    table: table.clone(),
                    trace: trace.clone(),
                })
            })?,
        )
    } else {
        None
    };
    let cluster = if cfg.shards > 1 {
        Some(
            crate::cluster::check_cluster_phase(&table, &trace, cfg).map_err(|divergence| {
                Box::new(CheckFailure {
                    divergence,
                    table: table.clone(),
                    trace: trace.clone(),
                })
            })?,
        )
    } else {
        None
    };

    Ok(CheckReport {
        batches: seq.batches,
        probes: seq.probes,
        applied: trace.len(),
        router_epochs: router.epochs,
        router_lookups: router.lookups,
        net_lookups: net.map_or(0, |n| n.lookups),
        net_reconnects: net.map_or(0, |n| n.reconnects),
        recovery_crashes: recovery.map_or(0, |r| r.crash_points),
        recovery_replayed: recovery.map_or(0, |r| r.replayed),
        recovery_probes: recovery.map_or(0, |r| r.probes),
        cluster_shards: cluster.map_or(0, |c| c.shards),
        cluster_lookups: cluster.map_or(0, |c| c.lookups),
        cluster_failovers: cluster.map_or(0, |c| c.failovers),
        cluster_probes: cluster.map_or(0, |c| c.probes),
        faulted: cfg.faults.is_some(),
    })
}

/// The sequential differential phase: oracle vs. `CluePipeline`, with
/// per-batch probes and structural invariants.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_trace(
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
) -> Result<SequentialOutcome, Divergence> {
    // The probe loop below compiles every BackendKind, including the
    // registry-injected tiled plane.
    clue_tile::install();
    let mut oracle = Oracle::new(table);
    let headroom = table.len() + trace.len() + 64;
    let mut pipeline = CluePipeline::new(table, cfg.chips, cfg.dred_capacity, headroom);
    // Warm the DReds from seeded addresses so the liveness invariant
    // has real subjects from the first batch on.
    let mut warm_rng = ProbeRng::new(cfg.seed ^ WARM_SALT);
    let warm: Vec<u32> = (0..256).map(|_| warm_rng.next_u64() as u32).collect();
    pipeline.warm(&warm);

    let timing = TcamTiming::default();
    let mut probes_run = 0u64;
    let mut batches = 0usize;

    for (bi, batch) in trace.chunks(cfg.batch).enumerate() {
        let mut touched: Vec<Prefix> = Vec::with_capacity(batch.len());
        for &u in batch {
            oracle.apply(u);
            let (sample, diff) = pipeline.apply_with_diff(u);
            touched.push(u.prefix());
            ttf_consistency(bi, &sample, &diff, &timing, cfg.chips)?;
        }
        batches += 1;

        structural_invariants(bi, &oracle, &pipeline, cfg)?;

        // Lookup-for-lookup agreement on the adversarial probe set.
        let standing = oracle.prefixes();
        let addrs = probe_set(
            &standing,
            &touched,
            cfg.seed ^ PROBE_SALT ^ (bi as u64),
            cfg.probe_sample,
            cfg.probe_random,
        );
        let compressed_trie = pipeline.fib().compressed();
        // Every lookup backend, compiled from the same post-batch
        // compressed table, must answer each probe identically — the
        // differential harness verifies all of them in one pass, and a
        // disagreement names the backend that produced it.
        let compressed_table = pipeline.fib().compressed_table();
        let planes: Vec<_> = BackendKind::ALL
            .iter()
            .map(|&k| plane_from_table(k, &compressed_table))
            .collect();
        for addr in addrs {
            probes_run += 1;
            let expected = oracle.lookup(addr);
            let got = compressed_trie.lookup(addr).map(|(_, &nh)| nh);
            if got != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Compressed,
                    batch: bi,
                    addr,
                    expected,
                    got,
                });
            }
            for plane in &planes {
                probes_run += 1;
                let got = plane.next_hop(addr);
                if got != expected {
                    return Err(Divergence::Lookup {
                        stage: Stage::Backend(plane.kind()),
                        batch: bi,
                        addr,
                        expected,
                        got,
                    });
                }
            }
        }
    }

    Ok(SequentialOutcome {
        batches,
        probes: probes_run,
    })
}

/// Checks one update's reported TTF against the entry operations its
/// diff performed (unordered-TCAM cost model: inserts and in-place
/// rewrites cost one write; a delete costs an erase plus at most one
/// relocation; DRed sync pays one search per delete/modify plus one
/// write per chip that actually held the entry).
fn ttf_consistency(
    batch: usize,
    sample: &clue_core::update_pipeline::TtfSample,
    diff: &clue_compress::TableDiff,
    timing: &TcamTiming,
    chips: usize,
) -> Result<(), Divergence> {
    const EPS: f64 = 1e-6;
    let ops = diff.op_count() as f64;
    let deletes = diff.deletes.len() as f64;
    let searches = (diff.deletes.len() + diff.modifies.len()) as f64;

    let ttf2_lo = ops * timing.write_ns;
    let ttf2_hi = (ops + deletes) * timing.write_ns;
    if sample.ttf2_ns < ttf2_lo - EPS || sample.ttf2_ns > ttf2_hi + EPS {
        return Err(Divergence::Invariant {
            batch,
            what: format!(
                "TTF2 {} ns inconsistent with diff ({} ops, {} deletes): expected [{ttf2_lo}, {ttf2_hi}]",
                sample.ttf2_ns, ops, deletes
            ),
        });
    }
    let ttf3_lo = searches * timing.search_ns;
    let ttf3_hi = searches * (timing.search_ns + chips as f64 * timing.write_ns);
    if sample.ttf3_ns < ttf3_lo - EPS || sample.ttf3_ns > ttf3_hi + EPS {
        return Err(Divergence::Invariant {
            batch,
            what: format!(
                "TTF3 {} ns inconsistent with {} DRed searches over {chips} chips: expected [{ttf3_lo}, {ttf3_hi}]",
                sample.ttf3_ns, searches
            ),
        });
    }
    if sample.ttf1_ns < 0.0 {
        return Err(Divergence::Invariant {
            batch,
            what: format!("negative TTF1 {} ns", sample.ttf1_ns),
        });
    }
    Ok(())
}

/// Post-batch structural invariants over the pipeline's state.
fn structural_invariants(
    batch: usize,
    oracle: &Oracle,
    pipeline: &CluePipeline,
    cfg: &CheckConfig,
) -> Result<(), Divergence> {
    let inv = |what: String| Divergence::Invariant { batch, what };

    let compressed = pipeline.fib().compressed_table();
    if !compressed.is_non_overlapping() {
        return Err(inv("compressed table has overlapping entries".into()));
    }
    let scratch = onrtc(&oracle.table());
    if compressed != scratch {
        return Err(inv(format!(
            "incremental compressed table ({} entries) differs from scratch recompression ({} entries)",
            compressed.len(),
            scratch.len()
        )));
    }
    if !pipeline.tcam_synced() {
        return Err(inv("TCAM contents differ from the compressed table".into()));
    }

    // Even-range partition: covers the compressed table exactly once.
    if !compressed.is_empty() {
        let parts = EvenRangePartition::split(&compressed, cfg.chips);
        let total: usize = parts.buckets().iter().map(Vec::len).sum();
        if total != compressed.len() {
            return Err(inv(format!(
                "partition holds {total} routes for a {}-entry table (redundancy must be zero)",
                compressed.len()
            )));
        }
        let index = parts.index();
        for (b, bucket) in parts.buckets().iter().enumerate() {
            for r in bucket {
                let lo = index.bucket_of(r.prefix.low());
                let hi = index.bucket_of(r.prefix.high());
                if lo != b || hi != b {
                    return Err(inv(format!(
                        "route {} sits in bucket {b} but indexes to [{lo}, {hi}]",
                        r.prefix
                    )));
                }
            }
        }
    }

    // DRed liveness: every cached entry must still be a compressed-table
    // route with the current next hop (the delete-if-present rule).
    let compressed_trie = pipeline.fib().compressed();
    for (chip, dred) in pipeline.dreds().iter().enumerate() {
        for r in dred.iter() {
            if compressed_trie.get(r.prefix) != Some(&r.next_hop) {
                return Err(inv(format!(
                    "DRed {chip} holds stale entry {} -> {:?}",
                    r.prefix, r.next_hop
                )));
            }
        }
    }
    Ok(())
}

/// The concurrent router phase: packets-only lookup agreement, then a
/// full race of packets against the update stream (optionally under the
/// configured fault plan) with convergence to the oracle's final state.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_router_phase(
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
) -> Result<RouterOutcome, Divergence> {
    let rcfg = RouterConfig {
        workers: cfg.chips,
        dred_capacity: cfg.dred_capacity,
        batch_size: cfg.batch,
        faults: cfg.faults,
        backend: cfg.backend,
        ..RouterConfig::default()
    };
    let packets = if cfg.packets > 0 {
        PacketGen::new(cfg.seed ^ PACKET_SALT).generate(table, cfg.packets)
    } else {
        Vec::new()
    };

    // Run 1: no updates racing — every result must equal the oracle.
    let oracle0 = Oracle::new(table);
    let report = clue_router::run(table, &packets, &[], &rcfg);
    if !report.packets_conserved() {
        return Err(Divergence::Router {
            what: format!(
                "packets-only run lost traffic: {} arrivals, {} completions",
                report.snapshot.arrivals, report.snapshot.completions
            ),
        });
    }
    for (&addr, &got) in packets.iter().zip(&report.results) {
        let expected = oracle0.lookup(addr);
        if got != expected {
            return Err(Divergence::Lookup {
                stage: Stage::Router,
                batch: 0,
                addr,
                expected,
                got,
            });
        }
    }

    // Run 2: race the full update stream; the runtime must converge to
    // the oracle's sequential final state despite batching, coalescing,
    // epoch handoff, and any injected faults.
    let report = clue_router::run(table, &packets, trace, &rcfg);
    if !report.packets_conserved() {
        return Err(Divergence::Router {
            what: format!(
                "racing run lost traffic: {} arrivals, {} completions",
                report.snapshot.arrivals, report.snapshot.completions
            ),
        });
    }
    if report.snapshot.updates_received != trace.len() as u64 {
        return Err(Divergence::Router {
            what: format!(
                "ingress lost updates under Block policy: {} of {} received",
                report.snapshot.updates_received,
                trace.len()
            ),
        });
    }
    let mut oracle = oracle0;
    for &u in trace {
        oracle.apply(u);
    }
    let want = oracle.table();
    if report.final_table != want {
        return Err(Divergence::Router {
            what: format!(
                "final FIB diverged from sequential application: {} routes vs oracle's {}",
                report.final_table.len(),
                want.len()
            ),
        });
    }
    let want_compressed = onrtc(&want);
    if report.final_compressed != want_compressed {
        return Err(Divergence::Router {
            what: format!(
                "final compressed table diverged: {} entries vs scratch recompression's {}",
                report.final_compressed.len(),
                want_compressed.len()
            ),
        });
    }

    Ok(RouterOutcome {
        epochs: report.snapshot.epochs,
        lookups: packets.len() * 2,
    })
}

/// Shrinks a failure's trace with the phase that produced it and wraps
/// the result as a [`Reproducer`].
///
/// The shrinking predicate accepts *any* divergence (not just an
/// identical one), which is standard ddmin practice — the minimized
/// trace provokes *a* conformance failure, usually the original.
#[must_use]
pub fn minimize_failure(failure: &CheckFailure, cfg: &CheckConfig) -> Reproducer {
    let table = &failure.table;
    let router_phase = failure.divergence.is_router_phase();
    let still_fails = |t: &[Update]| {
        if router_phase {
            check_router_phase(table, t, cfg).is_err()
        } else {
            check_trace(table, t, cfg).is_err()
        }
    };
    // A non-reproducing failure (possible only for flaky concurrency
    // bugs) is kept at full length rather than shrunk into nothing.
    let minimized = if still_fails(&failure.trace) {
        shrink_trace(&failure.trace, still_fails)
    } else {
        failure.trace.clone()
    };
    Reproducer {
        note: format!(
            "divergence: {}\nseed={} routes={} updates={} batch={} chips={} dred={} \
             faults={} backend={}",
            failure.divergence,
            cfg.seed,
            cfg.routes,
            cfg.updates,
            cfg.batch,
            cfg.chips,
            cfg.dred_capacity,
            cfg.faults
                .map_or_else(|| "off".to_owned(), |f| format!("on(seed={})", f.seed)),
            cfg.backend,
        ),
        table: table.clone(),
        trace: minimized,
    }
}

/// Replays a reproducer through both phases.
///
/// # Errors
///
/// Returns the divergence the reproducer still provokes, if any.
pub fn replay(repro: &Reproducer, cfg: &CheckConfig) -> Result<(), Divergence> {
    check_trace(&repro.table, &repro.trace, cfg)?;
    if !repro.table.is_empty() {
        check_router_phase(&repro.table, &repro.trace, cfg)?;
    }
    Ok(())
}
