//! The cluster conformance phase: the seeded workload through a real
//! sharded deployment — proxy, N shard primaries with durable stores,
//! one warm standby per shard — with a primary killed *mid-burst* and
//! its standby promoted.
//!
//! What this adds on top of the net phase: shard-map fan-out (a prefix
//! spanning a cut must reach every intersecting shard), WAL-shipping
//! replication, and failover, all of which must be invisible to the
//! client. Asserted against the flat-scan oracle:
//!
//! * quiescent lookups through the proxy agree address-for-address;
//! * the racing burst loses **zero acknowledged updates** across the
//!   kill/promote (accepted == trace length, dropped == 0);
//! * post-burst adversarial boundary probes agree with the oracle's
//!   sequential final state;
//! * every shard's final table — drained primary, promoted standby,
//!   and surviving replicas alike — is **bit-identical** to the
//!   oracle's final table filtered to that shard's address range.

use std::fs;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use clue_cluster::{
    Primary, PrimaryConfig, Proxy, ProxyConfig, ReplConfig, ShardMap, ShardSpec, Standby,
    StandbyConfig, StandbyOutcome,
};
use clue_fib::{RouteTable, Update};
use clue_net::{ClientConfig, Connection};
use clue_store::StoreConfig;
use clue_traffic::PacketGen;

use crate::harness::{CheckConfig, Divergence, Stage, PACKET_SALT};
use crate::model::Oracle;
use crate::probes::probe_set;

/// Probe-set salt for the post-burst cluster probes (decorrelated from
/// the sequential phase's per-batch probes).
const CLUSTER_PROBE_SALT: u64 = 0xA5A5_0005;

/// Outcome of the cluster phase.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOutcome {
    /// Shards the phase ran with.
    pub shards: usize,
    /// Packet lookups answered through the proxy (both runs).
    pub lookups: usize,
    /// Failovers the proxy completed (always ≥ 1: the phase kills a
    /// primary).
    pub failovers: u64,
    /// Post-burst boundary probes compared against the oracle.
    pub probes: u64,
}

fn cl_div(what: impl std::fmt::Display) -> Divergence {
    Divergence::Router {
        what: format!("cluster phase: {what}"),
    }
}

fn phase_dir(seed: u64, shard: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "clue-cluster-check-{seed}-{shard}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn client_cfg(addr: String) -> ClientConfig {
    ClientConfig {
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::to_addr(addr)
    }
}

/// Drives `trace` and the seeded packet stream through a sharded
/// cluster, kills shard 0's primary halfway through the update burst,
/// and asserts zero lost acks plus per-shard bit-identical convergence
/// to the oracle's sequential final state.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; infrastructure failures
/// (bind, store, replication sync) are reported as router-phase
/// divergences, since the phase could not faithfully run the workload.
pub fn check_cluster_phase(
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
) -> Result<ClusterOutcome, Divergence> {
    assert!(cfg.shards >= 2, "cluster phase needs at least 2 shards");

    // Cuts first (against placeholder endpoints): each shard seeds its
    // store with exactly its filtered slice of the initial table.
    let placeholder = ShardMap::derive(table, vec![ShardSpec::primary_only("x:0"); cfg.shards])
        .map_err(|e| cl_div(format!("deriving shard map: {e}")))?;

    let pcfg = PrimaryConfig {
        store: StoreConfig {
            fsync: false,
            snapshot_every: 64,
            ..StoreConfig::default()
        },
        repl: ReplConfig {
            idle_poll: Duration::from_millis(10),
            ..ReplConfig::default()
        },
        sync_timeout: Duration::from_secs(5),
        server: clue_net::ServerConfig {
            transport: cfg.transport,
            ..clue_net::ServerConfig::default()
        },
    };
    let mut dirs = Vec::new();
    let mut primaries: Vec<Option<Primary>> = Vec::new();
    let mut standbys = Vec::new();
    let mut specs = Vec::new();
    for i in 0..cfg.shards {
        let dir = phase_dir(cfg.seed, i);
        let shard_fib = placeholder.filter_table(table, i);
        let primary = Primary::start(&dir, Some(&shard_fib), &pcfg)
            .map_err(|e| cl_div(format!("booting shard {i}: {e}")))?;
        let standby = Standby::start(StandbyConfig {
            primary_repl: primary.repl_addr().to_string(),
            idle_poll: Duration::from_millis(5),
            reconnect_backoff: Duration::from_millis(20),
            ..StandbyConfig::default()
        })
        .map_err(|e| cl_div(format!("booting shard {i} standby: {e}")))?;
        specs.push(ShardSpec::with_standby(
            primary.local_addr().to_string(),
            standby.local_addr().to_string(),
        ));
        dirs.push(dir);
        primaries.push(Some(primary));
        standbys.push(standby);
    }
    let map = ShardMap::from_cuts(placeholder.cuts().to_vec(), specs)
        .map_err(|e| cl_div(format!("assembling shard map: {e}")))?;

    // Every standby must be in its primary's synchronous set before the
    // burst: from the first ack on, "acked" means "survives promotion".
    let deadline = Instant::now() + Duration::from_secs(15);
    for (i, p) in primaries.iter().flatten().enumerate() {
        while p.repl_stats().synced != 1 {
            if Instant::now() >= deadline {
                return Err(cl_div(format!("shard {i} standby never synced")));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let mut proxy_cfg = ProxyConfig::new(map.clone());
    proxy_cfg.heartbeat_every = Duration::from_millis(100);
    proxy_cfg.transport = cfg.transport;
    let proxy = Proxy::start(proxy_cfg).map_err(|e| cl_div(format!("starting proxy: {e}")))?;
    let addr = proxy.local_addr().to_string();

    let packets = if cfg.packets > 0 {
        PacketGen::new(cfg.seed ^ PACKET_SALT).generate(table, cfg.packets)
    } else {
        Vec::new()
    };

    // Run 1: quiescent cluster — every proxied answer must equal the
    // oracle, which proves lookup routing (cuts, shard_of) is sound.
    let oracle0 = Oracle::new(table);
    let mut conn = Connection::connect(client_cfg(addr.clone())).map_err(cl_div)?;
    for batch in packets.chunks(512) {
        let got = conn.lookup(batch).map_err(cl_div)?;
        for (&a, &g) in batch.iter().zip(&got) {
            let expected = oracle0.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Cluster,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    conn.close().map_err(cl_div)?;

    // Run 2: the update burst racing a second packet pass, with shard
    // 0's primary killed once half the trace is in flight. The client
    // keeps its ordinary seq/ack discipline; failover must be invisible
    // apart from latency.
    let half = trace.len() / 2;
    let (kill_tx, kill_rx) = mpsc::channel::<()>();
    let (update_res, lookup_res) = std::thread::scope(|s| {
        let update_handle = s.spawn(|| -> Result<clue_net::ClientReport, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut sent = 0usize;
            let mut signalled = false;
            for batch in trace.chunks(cfg.batch) {
                conn.send_updates(batch)?;
                sent += batch.len();
                if !signalled && sent >= half {
                    signalled = true;
                    let _ = kill_tx.send(());
                }
            }
            conn.flush_acks()?;
            conn.close()
        });
        let lookup_handle = s.spawn(|| -> Result<usize, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut answered = 0usize;
            for batch in packets.chunks(512) {
                answered += conn.lookup(batch)?.len();
            }
            conn.close()?;
            Ok(answered)
        });
        // The kill, mid-burst, from the orchestrating thread.
        if kill_rx.recv().is_ok() {
            drop(primaries[0].take());
        }
        (
            update_handle.join().expect("cluster update thread exits"),
            lookup_handle.join().expect("cluster lookup thread exits"),
        )
    });
    let update_report = update_res.map_err(cl_div)?;
    let answered = lookup_res.map_err(cl_div)?;

    // Zero lost acks across the failover.
    if update_report.dropped != 0 {
        return Err(cl_div(format!(
            "{} updates dropped under Block policy",
            update_report.dropped
        )));
    }
    if update_report.accepted != trace.len() as u64 {
        return Err(cl_div(format!(
            "lost acks across failover: {} of {} updates acked",
            update_report.accepted,
            trace.len()
        )));
    }
    if answered != packets.len() {
        return Err(cl_div(format!(
            "racing run answered {answered} of {} lookups",
            packets.len()
        )));
    }
    if proxy.failovers() != 1 {
        return Err(cl_div(format!(
            "expected exactly 1 failover, proxy performed {}",
            proxy.failovers()
        )));
    }
    if !standbys[0].is_promoted() {
        return Err(cl_div("shard 0's standby was never promoted"));
    }

    // Post-burst adversarial probes through the (partly promoted)
    // cluster against the oracle's sequential final state.
    let mut oracle = oracle0;
    for &u in trace {
        oracle.apply(u);
    }
    let standing = oracle.prefixes();
    let probe_addrs = probe_set(
        &standing,
        &[],
        cfg.seed ^ CLUSTER_PROBE_SALT,
        cfg.probe_sample * 4,
        cfg.probe_random * 4,
    );
    let mut probes_run = 0u64;
    let mut conn = Connection::connect(client_cfg(addr.clone())).map_err(cl_div)?;
    for batch in probe_addrs.chunks(512) {
        let got = conn.lookup(batch).map_err(cl_div)?;
        for (&a, &g) in batch.iter().zip(&got) {
            probes_run += 1;
            let expected = oracle.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Cluster,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    conn.close().map_err(cl_div)?;
    proxy.stop();

    // Per-shard bit-identical convergence: every node's final table —
    // drained primaries, the promoted standby, and the surviving warm
    // replicas — equals the oracle's final table filtered to the
    // shard's range.
    let want = oracle.table();
    for (i, primary) in primaries.iter_mut().enumerate() {
        let Some(primary) = primary.take() else {
            continue; // shard 0's primary died mid-burst by design
        };
        let report = primary
            .stop()
            .map_err(|e| cl_div(format!("draining shard {i} primary: {e}")))?;
        let expect = map.filter_table(&want, i);
        if report.final_table != expect {
            return Err(cl_div(format!(
                "shard {i} primary final table diverged: {} routes vs filtered oracle's {}",
                report.final_table.len(),
                expect.len()
            )));
        }
    }
    for (i, standby) in standbys.into_iter().enumerate() {
        let expect = map.filter_table(&want, i);
        match standby
            .stop()
            .map_err(|e| cl_div(format!("stopping shard {i} standby: {e}")))?
        {
            StandbyOutcome::Promoted(report) => {
                if i != 0 {
                    return Err(cl_div(format!("shard {i} standby promoted unexpectedly")));
                }
                if report.final_table != expect {
                    return Err(cl_div(format!(
                        "promoted shard {i} final table diverged: {} routes vs filtered oracle's {}",
                        report.final_table.len(),
                        expect.len()
                    )));
                }
            }
            StandbyOutcome::Standby(state) => {
                if i == 0 {
                    return Err(cl_div("shard 0's standby lost its promotion"));
                }
                if state.table != expect {
                    return Err(cl_div(format!(
                        "shard {i} replica diverged: {} routes vs filtered oracle's {}",
                        state.table.len(),
                        expect.len()
                    )));
                }
            }
        }
    }
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }

    Ok(ClusterOutcome {
        shards: cfg.shards,
        lookups: packets.len() * 2,
        failovers: 1,
        probes: probes_run,
    })
}
