//! The recovery conformance phase: crash-consistency of `clue-store`
//! under the same seeded workloads as the other phases.
//!
//! Three sub-phases, each against a real data directory on disk:
//!
//! * **Clean durability** — a journaled [`RouterService`] runs the full
//!   trace with per-update sequence tags and drains; a fresh
//!   [`Store::open`] must then recover the final state with *zero*
//!   journal replay (the drain checkpoint covers everything), the full
//!   sequence high-water, and lookup agreement with the oracle on an
//!   adversarial boundary-probe set.
//! * **Seeded crash points** — the service is killed (drain checkpoint
//!   suppressed) at seed-derived offsets into the trace, optionally
//!   with the journal tail torn or bit-flipped afterwards. Recovery
//!   must never panic, must flag corruption as a truncated scan, must
//!   replay only the post-snapshot tail, and must land on state equal
//!   to the sequential oracle at *exactly* the trace prefix the journal
//!   preserved (`raw_applied`).
//! * **Continuation** — a service booted from recovered state via
//!   [`RouterService::start_recovered`] resumes the trace from the
//!   recovered offset and must converge to the same final table as an
//!   uninterrupted run, after which a clean reopen replays nothing.
//!
//! Divergences are reported as [`Divergence::Router`] (wholesale state
//! mismatches) or [`Divergence::Lookup`] with [`Stage::Recovery`]
//! (probe disagreement against the recovered compressed table).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use clue_compress::onrtc;
use clue_fib::{Prefix, RouteTable, Update};
use clue_router::{
    CheckpointView, JournalBatch, RouterConfig, RouterService, SubmitOutcome, UpdateJournal,
};
use clue_store::{Store, StoreConfig};

use crate::harness::{CheckConfig, Divergence, Stage};
use crate::model::Oracle;
use crate::probes::probe_set;

/// Salt decorrelating recovery probes from every other derived stream.
const RECOVERY_PROBE_SALT: u64 = 0xA5A5_0005;

/// Outcome of the recovery phase.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOutcome {
    /// Crash points exercised (corruption variants included).
    pub crash_points: usize,
    /// Journal records replayed across all recoveries.
    pub replayed: u64,
    /// Boundary probes compared against the oracle.
    pub probes: u64,
}

/// How the journal tail is mangled after a simulated crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TailDamage {
    /// Crash only: every journaled record is intact.
    None,
    /// The final record is torn mid-write (suffix truncated).
    Torn,
    /// A byte near the end of the final record is bit-flipped.
    Flipped,
}

fn rec_div(what: impl std::fmt::Display) -> Divergence {
    Divergence::Router {
        what: format!("recovery phase: {what}"),
    }
}

fn io_div(what: &str, e: &io::Error) -> Divergence {
    rec_div(format!("{what}: {e}"))
}

/// A store whose drain "crashes": appends and mid-run checkpoints are
/// real, but the drain-time checkpoint never happens, leaving the WAL
/// tail on disk exactly as a killed process would.
struct CrashStore(Store);

impl UpdateJournal for CrashStore {
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()> {
        self.0.append(batch)
    }
    fn wants_checkpoint(&self) -> bool {
        self.0.wants_checkpoint()
    }
    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        self.0.checkpoint(view)
    }
    fn on_drain(&mut self, _view: &CheckpointView<'_>) -> io::Result<()> {
        Ok(())
    }
}

fn phase_dir(cfg: &CheckConfig, tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "clue-oracle-recov-{}-{:x}-{tag}",
        std::process::id(),
        cfg.seed,
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn router_cfg(cfg: &CheckConfig) -> RouterConfig {
    RouterConfig {
        workers: cfg.chips,
        dred_capacity: cfg.dred_capacity,
        batch_size: cfg.batch,
        backend: cfg.backend,
        ..RouterConfig::default()
    }
}

/// Runs a journaled service over `trace[..upto]` in a fresh `dir` with
/// sequence tags `1..=upto`; `crash` suppresses the drain checkpoint.
fn run_journaled(
    dir: &Path,
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
    scfg: StoreConfig,
    crash: bool,
) -> Result<(), Divergence> {
    let (mut store, recovery) =
        Store::open(dir, scfg).map_err(|e| io_div("opening fresh data dir", &e))?;
    if recovery.is_some() {
        return Err(rec_div("fresh data dir unexpectedly held state"));
    }
    store
        .init_from_table(table, cfg.chips)
        .map_err(|e| io_div("seeding base snapshot", &e))?;
    let journal: Box<dyn UpdateJournal> = if crash {
        Box::new(CrashStore(store))
    } else {
        Box::new(store)
    };
    let svc = RouterService::start_with_journal(table, &router_cfg(cfg), journal);
    for (i, &u) in trace.iter().enumerate() {
        if svc.submit_update_tagged(u, i as u64 + 1) != SubmitOutcome::Accepted {
            return Err(rec_div(format!("update {i} rejected under Block policy")));
        }
    }
    let report = svc.drain();
    if report.snapshot.journal_errors != 0 {
        return Err(rec_div(format!(
            "{} journal errors while writing the data dir",
            report.snapshot.journal_errors
        )));
    }
    Ok(())
}

fn newest_segment(dir: &Path) -> Option<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".clog"))
        })
        .collect();
    segs.sort();
    segs.pop()
}

fn damage_tail(dir: &Path, damage: TailDamage) -> Result<(), Divergence> {
    if damage == TailDamage::None {
        return Ok(());
    }
    let seg = newest_segment(dir).ok_or_else(|| rec_div("crash run left no WAL tail to damage"))?;
    let mut bytes = fs::read(&seg).map_err(|e| io_div("reading WAL tail", &e))?;
    match damage {
        TailDamage::None => {}
        TailDamage::Torn => {
            let keep = bytes.len().saturating_sub(7);
            bytes.truncate(keep);
        }
        TailDamage::Flipped => {
            let at = bytes.len().saturating_sub(11);
            bytes[at] ^= 0x10;
        }
    }
    fs::write(&seg, &bytes).map_err(|e| io_div("writing damaged WAL tail", &e))?;
    Ok(())
}

/// Boundary-probes the recovered table's compressed form against the
/// oracle holding the expected state; `touched` focuses the probe set
/// on the prefixes nearest the crash point.
fn probe_recovered(
    recovered: &RouteTable,
    expected: &Oracle,
    touched: &[Prefix],
    crash_point: usize,
    cfg: &CheckConfig,
) -> Result<u64, Divergence> {
    let compressed = Oracle::new(&onrtc(recovered));
    let standing = expected.prefixes();
    let addrs = probe_set(
        &standing,
        touched,
        cfg.seed ^ RECOVERY_PROBE_SALT ^ (crash_point as u64),
        cfg.probe_sample,
        cfg.probe_random,
    );
    let mut probes = 0u64;
    for addr in addrs {
        probes += 1;
        let want = expected.lookup(addr);
        let got = compressed.lookup(addr);
        if got != want {
            return Err(Divergence::Lookup {
                stage: Stage::Recovery,
                batch: crash_point,
                addr,
                expected: want,
                got,
            });
        }
    }
    Ok(probes)
}

/// Prefixes of the trailing `window` updates before `upto`, the region
/// a torn tail most plausibly corrupts.
fn tail_prefixes(trace: &[Update], upto: usize, window: usize) -> Vec<Prefix> {
    trace[upto.saturating_sub(window)..upto]
        .iter()
        .map(|u| u.prefix())
        .collect()
}

/// Drives the recovery conformance phase for `cfg`'s seeded workload.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; data-dir I/O failures are
/// reported as recovery-phase divergences (the phase could not
/// faithfully exercise the store).
pub fn check_recovery_phase(
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
) -> Result<RecoveryOutcome, Divergence> {
    let mut replayed_total = 0u64;
    let mut probes_total = 0u64;
    let mut crash_points = 0usize;

    // Phase A: clean shutdown → zero replay, full high-water, oracle
    // agreement on boundary probes.
    let dir = phase_dir(cfg, "clean");
    // fsync off: these runs measure logical crash consistency (the
    // "crash" is simulated in-process, the filesystem never dies), and
    // per-append fsync would dominate the check's runtime.
    let scfg = StoreConfig {
        fsync: false,
        ..StoreConfig::default()
    };
    run_journaled(&dir, table, trace, cfg, scfg, false)?;
    let (_s, recovery) =
        Store::open(&dir, scfg).map_err(|e| io_div("reopening after clean shutdown", &e))?;
    let rec = recovery.ok_or_else(|| rec_div("clean data dir recovered no state"))?;
    if rec.replayed != 0 {
        return Err(rec_div(format!(
            "clean shutdown left {} journal records to replay (drain checkpoint must cover all)",
            rec.replayed
        )));
    }
    if rec.truncated {
        return Err(rec_div("clean journal scanned as truncated"));
    }
    if rec.seq_hw != trace.len() as u64 || rec.raw_applied != trace.len() as u64 {
        return Err(rec_div(format!(
            "clean recovery at seq_hw {} / raw_applied {} for a {}-update trace",
            rec.seq_hw,
            rec.raw_applied,
            trace.len()
        )));
    }
    let mut expected = Oracle::new(table);
    for &u in trace {
        expected.apply(u);
    }
    if rec.table != expected.table() {
        return Err(rec_div(format!(
            "clean recovery diverged: {} routes vs oracle's {}",
            rec.table.len(),
            expected.table().len()
        )));
    }
    probes_total += probe_recovered(
        &rec.table,
        &expected,
        &tail_prefixes(trace, trace.len(), cfg.batch),
        0,
        cfg,
    )?;
    fs::remove_dir_all(&dir).map_err(|e| io_div("cleaning clean-phase dir", &e))?;

    if trace.len() < 8 {
        // Too short a trace for meaningful crash points; the clean
        // phase above is the whole story.
        return Ok(RecoveryOutcome {
            crash_points,
            replayed: replayed_total,
            probes: probes_total,
        });
    }

    // Phase B: seeded crash points at arbitrary trace offsets, one per
    // damage mode. A small snapshot interval on the undamaged point
    // asserts the replay bound; the damaged points run checkpoint-free
    // so the whole journal is the (corruptible) tail.
    let n = trace.len();
    let offsets = [
        1 + (cfg.seed as usize).wrapping_mul(7) % (n - 1),
        1 + (cfg.seed as usize).wrapping_mul(13) % (n - 1),
        1 + (cfg.seed as usize).wrapping_mul(29) % (n - 1),
    ];
    let damages = [TailDamage::None, TailDamage::Torn, TailDamage::Flipped];
    let mut continue_from: Option<(PathBuf, StoreConfig)> = None;
    for (i, (&upto, &damage)) in offsets.iter().zip(&damages).enumerate() {
        let crash_point = i + 1;
        crash_points += 1;
        let tag = format!("crash{i}");
        let dir = phase_dir(cfg, &tag);
        let snapshot_every = if damage == TailDamage::None {
            4
        } else {
            u64::MAX
        };
        let scfg = StoreConfig {
            snapshot_every,
            fsync: false,
            ..StoreConfig::default()
        };
        run_journaled(&dir, table, &trace[..upto], cfg, scfg, true)?;
        damage_tail(&dir, damage)?;

        let (_s, recovery) = Store::open(&dir, scfg)
            .map_err(|e| io_div(&format!("reopening crash point {crash_point}"), &e))?;
        let rec = recovery
            .ok_or_else(|| rec_div(format!("crash point {crash_point} recovered no state")))?;
        replayed_total += rec.replayed;
        match damage {
            TailDamage::None => {
                if rec.truncated {
                    return Err(rec_div(format!(
                        "crash point {crash_point}: intact journal scanned as truncated"
                    )));
                }
                if rec.replayed > snapshot_every {
                    return Err(rec_div(format!(
                        "crash point {crash_point}: replayed {} records past a {}-append \
                         snapshot interval",
                        rec.replayed, snapshot_every
                    )));
                }
                if rec.raw_applied != upto as u64 || rec.seq_hw != upto as u64 {
                    return Err(rec_div(format!(
                        "crash point {crash_point}: recovered raw_applied {} / seq_hw {} \
                         but {upto} updates were journaled",
                        rec.raw_applied, rec.seq_hw
                    )));
                }
            }
            TailDamage::Torn | TailDamage::Flipped => {
                if !rec.truncated {
                    return Err(rec_div(format!(
                        "crash point {crash_point}: damaged tail not detected as truncated"
                    )));
                }
                if rec.raw_applied >= upto as u64 {
                    return Err(rec_div(format!(
                        "crash point {crash_point}: raw_applied {} despite a damaged final \
                         record ({upto} journaled)",
                        rec.raw_applied
                    )));
                }
            }
        }
        let applied = rec.raw_applied as usize;
        let mut expected = Oracle::new(table);
        for &u in &trace[..applied] {
            expected.apply(u);
        }
        if rec.table != expected.table() {
            return Err(rec_div(format!(
                "crash point {crash_point}: recovered table ({} routes) is not the oracle \
                 at trace offset {applied}",
                rec.table.len()
            )));
        }
        probes_total += probe_recovered(
            &rec.table,
            &expected,
            &tail_prefixes(trace, applied, cfg.batch),
            crash_point,
            cfg,
        )?;

        if damage == TailDamage::None {
            // Keep this dir for the continuation phase below.
            continue_from = Some((dir, scfg));
        } else {
            fs::remove_dir_all(&dir).map_err(|e| io_div("cleaning crash-phase dir", &e))?;
        }
    }

    // Phase C: boot from the undamaged crash point's recovered state,
    // resume the trace where the journal left off, and converge to the
    // same final table as an uninterrupted run.
    let (dir, scfg) = continue_from.ok_or_else(|| rec_div("no undamaged crash point kept"))?;
    let (store, recovery) =
        Store::open(&dir, scfg).map_err(|e| io_div("reopening for continuation", &e))?;
    let rec = recovery.ok_or_else(|| rec_div("continuation dir recovered no state"))?;
    let resume_at = rec.raw_applied as usize;
    let seq0 = rec.seq_hw;
    let svc =
        RouterService::start_recovered(&rec.into_state(), &router_cfg(cfg), Some(Box::new(store)));
    for (i, &u) in trace[resume_at..].iter().enumerate() {
        if svc.submit_update_tagged(u, seq0 + i as u64 + 1) != SubmitOutcome::Accepted {
            return Err(rec_div(format!(
                "resumed update {} rejected under Block policy",
                resume_at + i
            )));
        }
    }
    let report = svc.drain();
    if report.final_table != expected_final(table, trace) {
        return Err(rec_div(format!(
            "continuation from offset {resume_at} diverged: {} routes in the final table",
            report.final_table.len()
        )));
    }
    let (_s, recovery) =
        Store::open(&dir, scfg).map_err(|e| io_div("reopening after continuation", &e))?;
    let rec = recovery.ok_or_else(|| rec_div("post-continuation dir recovered no state"))?;
    if rec.replayed != 0 || rec.raw_applied != trace.len() as u64 {
        return Err(rec_div(format!(
            "post-continuation reopen replayed {} records at raw_applied {} (want 0 at {})",
            rec.replayed,
            rec.raw_applied,
            trace.len()
        )));
    }
    fs::remove_dir_all(&dir).map_err(|e| io_div("cleaning continuation dir", &e))?;

    Ok(RecoveryOutcome {
        crash_points,
        replayed: replayed_total,
        probes: probes_total,
    })
}

fn expected_final(table: &RouteTable, trace: &[Update]) -> RouteTable {
    let mut t = table.clone();
    for &u in trace {
        t.apply(u);
    }
    t
}
