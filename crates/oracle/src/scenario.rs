//! The adversarial-scenario conformance phase.
//!
//! A named [`clue_trace::Scenario`] (update storm, withdraw flood, flap
//! storm, skewed lookups, or an MRT replay) supplies the base table,
//! the timed update schedule, and the lookup-key distribution; this
//! phase then asserts the stack survives it in three passes:
//!
//! 1. **Sequential** — the schedule's updates run through
//!    [`check_trace`], so after every batch the adversarial probe set
//!    agrees lookup-for-lookup with the oracle on the compressed trie
//!    *and on every lookup backend* (tcam/trie/cfib), with all the
//!    structural and TTF invariants of an ordinary check.
//! 2. **Live, once per backend** — the scenario replays over loopback
//!    through a real `clue-net` server (burst shape preserved: the
//!    schedule is time-compressed, not flattened), the lookup stream
//!    racing the updates, asserting quiescent probe agreement, **zero
//!    lost acks** (every update accepted, none dropped), packet
//!    conservation, and final-table convergence to the oracle.
//! 3. **Sharded** (when `cfg.shards >= 2`) — the same replay through a
//!    `clue-cluster` proxy over N plain shard servers, asserting proxy
//!    probe agreement, zero lost acks, and post-burst convergence.
//!    (Failover-under-fire is the cluster phase's job; this pass pins
//!    the scenario semantics onto the sharded data path.)

use std::time::Duration;

use clue_cluster::{Proxy, ProxyConfig, ShardMap, ShardSpec};
use clue_compress::onrtc;
use clue_core::lookup::BackendKind;
use clue_fib::Update;
use clue_net::{ClientConfig, Connection, Server, ServerConfig};
use clue_router::{IngressPerturber, RouterConfig};
use clue_trace::{Scenario, ScenarioConfig, ScenarioKind, TimedUpdate};

use crate::harness::{check_trace, CheckConfig, CheckFailure, Divergence, Stage};
use crate::model::Oracle;
use crate::probes::probe_set;

/// Probe-set salt for the post-replay scenario probes (decorrelated
/// from every other harness stream).
const SCENARIO_PROBE_SALT: u64 = 0xA5A5_0006;

/// The live replay is time-compressed so its total schedule never
/// exceeds this budget — burst *shape* survives, wall-clock does not.
const REPLAY_BUDGET_MS: u64 = 200;

/// Outcome of a passing scenario check.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOutcome {
    /// Which scenario ran.
    pub kind: ScenarioKind,
    /// Update batches verified in the sequential phase.
    pub batches: usize,
    /// Sequential probe lookups compared against the oracle (every
    /// backend included).
    pub probes: u64,
    /// Scheduled updates applied.
    pub applied: usize,
    /// Live single-node replays performed (one per lookup backend).
    pub live_runs: usize,
    /// Packet lookups answered over the wire across all live runs.
    pub live_lookups: usize,
    /// Post-replay boundary probes compared against the oracle.
    pub live_probes: u64,
    /// Shards the sharded pass ran with (0 when skipped).
    pub shards: usize,
    /// Packet lookups answered through the proxy (0 when skipped).
    pub shard_lookups: usize,
}

fn sc_div(kind: ScenarioKind, what: impl std::fmt::Display) -> Divergence {
    Divergence::Router {
        what: format!("scenario phase ({kind}): {what}"),
    }
}

fn client_cfg(addr: String) -> ClientConfig {
    ClientConfig {
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::to_addr(addr)
    }
}

/// The scenario materialized from a check config: sizes carry over,
/// every other knob keeps its scenario default.
#[must_use]
pub fn scenario_for(cfg: &CheckConfig, kind: ScenarioKind) -> Scenario {
    let scfg = ScenarioConfig {
        seed: cfg.seed,
        routes: cfg.routes,
        updates: cfg.updates,
        packets: cfg.packets,
        ..ScenarioConfig::default()
    };
    Scenario::build(kind, &scfg)
}

/// Runs the full scenario check for `kind` under `cfg`.
///
/// # Errors
///
/// Returns the first [`CheckFailure`] observed, carrying the scenario's
/// base table and update schedule so [`crate::harness::minimize_failure`]
/// can shrink it like any other failing check.
pub fn run_scenario_check(
    cfg: &CheckConfig,
    kind: ScenarioKind,
) -> Result<ScenarioOutcome, Box<CheckFailure>> {
    let scenario = scenario_for(cfg, kind);
    let trace = scenario.updates();
    let fail = |divergence: Divergence| {
        Box::new(CheckFailure {
            divergence,
            table: scenario.base.clone(),
            trace: trace.clone(),
        })
    };

    // Pass 1: sequential differential check — per-batch probe agreement
    // across the compressed trie and every backend, plus invariants.
    let seq = check_trace(&scenario.base, &trace, cfg).map_err(&fail)?;

    // Pass 2: live replay over the wire, once per lookup backend.
    let mut live_lookups = 0usize;
    let mut live_probes = 0u64;
    for &backend in &BackendKind::ALL {
        let run = live_replay(&scenario, cfg, backend).map_err(&fail)?;
        live_lookups += run.lookups;
        live_probes += run.probes;
    }

    // Pass 3: the sharded data path, when requested.
    let shard_lookups = if cfg.shards >= 2 {
        sharded_replay(&scenario, cfg).map_err(&fail)?
    } else {
        0
    };

    Ok(ScenarioOutcome {
        kind,
        batches: seq.batches,
        probes: seq.probes,
        applied: trace.len(),
        live_runs: BackendKind::ALL.len(),
        live_lookups,
        live_probes,
        shards: if cfg.shards >= 2 { cfg.shards } else { 0 },
        shard_lookups,
    })
}

struct LiveRun {
    lookups: usize,
    probes: u64,
}

/// One probe sweep over the wire: every answer must equal the oracle.
fn probe_once(
    addr: &str,
    oracle: &Oracle,
    addrs: &[u32],
    div: &impl Fn(String) -> Divergence,
) -> Result<u64, Divergence> {
    let mut probes_run = 0u64;
    let mut conn =
        Connection::connect(client_cfg(addr.to_string())).map_err(|e| div(e.to_string()))?;
    for batch in addrs.chunks(512) {
        let got = conn.lookup(batch).map_err(|e| div(e.to_string()))?;
        for (&a, &g) in batch.iter().zip(&got) {
            probes_run += 1;
            let expected = oracle.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Scenario,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    conn.close().map_err(|e| div(e.to_string()))?;
    Ok(probes_run)
}

/// Post-replay probes with a settle window: every scheduled update has
/// been *acked*, but the router publishes its final epoch on a batch
/// boundary or idle poll, so the wire may briefly trail the oracle.
/// Retries the sweep until it agrees or the deadline expires — only a
/// *persistent* disagreement is a divergence.
fn probe_settled(
    addr: &str,
    oracle: &Oracle,
    addrs: &[u32],
    div: &impl Fn(String) -> Divergence,
) -> Result<u64, Divergence> {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match probe_once(addr, oracle, addrs, div) {
            Ok(n) => return Ok(n),
            Err(d) => {
                if std::time::Instant::now() >= deadline {
                    return Err(d);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// The schedule compressed into the replay budget, so bursts keep their
/// relative shape without the check sleeping through real gap times.
fn replay_schedule(scenario: &Scenario) -> Vec<TimedUpdate> {
    let duration = scenario.schedule.duration_ms();
    let speed = if duration > REPLAY_BUDGET_MS {
        duration as f64 / REPLAY_BUDGET_MS as f64
    } else {
        1.0
    };
    scenario.schedule.scaled(speed).events
}

/// Sends the scenario's schedule over `conn` with its (compressed)
/// timing, batching by `batch` within a burst and flushing across
/// timing gaps, optionally through a client-side fault perturber.
fn send_schedule(
    mut conn: Connection,
    schedule: &[TimedUpdate],
    batch: usize,
    faults: Option<&clue_router::FaultPlan>,
) -> std::io::Result<clue_net::ClientReport> {
    let start = std::time::Instant::now();
    let mut perturber = faults
        .filter(|f| !f.is_noop())
        .cloned()
        .map(IngressPerturber::new);
    let mut staged = Vec::new();
    let mut pending: Vec<Update> = Vec::with_capacity(batch);
    let mut last_at = 0u64;
    for e in schedule {
        if e.at_ms != last_at {
            // A timing gap: flush what the burst accumulated, then hold
            // to the (compressed) schedule.
            if !pending.is_empty() {
                conn.send_updates(&pending)?;
                pending.clear();
            }
            last_at = e.at_ms;
            let due = Duration::from_millis(e.at_ms);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        match &mut perturber {
            Some(p) => {
                if let Some(d) = p.feeder_delay() {
                    std::thread::sleep(d);
                }
                staged.clear();
                p.push(e.update, &mut staged);
                pending.extend_from_slice(&staged);
            }
            None => pending.push(e.update),
        }
        if pending.len() >= batch {
            conn.send_updates(&pending)?;
            pending.clear();
        }
    }
    if let Some(p) = perturber {
        staged.clear();
        p.finish(&mut staged);
        pending.extend_from_slice(&staged);
    }
    conn.send_updates(&pending)?;
    conn.flush_acks()?;
    conn.close()
}

/// One single-node live replay against a server publishing with
/// `backend`: quiescent probe pass, racing replay, zero-lost-acks and
/// convergence assertions, post-replay boundary probes.
fn live_replay(
    scenario: &Scenario,
    cfg: &CheckConfig,
    backend: BackendKind,
) -> Result<LiveRun, Divergence> {
    let kind = scenario.kind;
    let div = |what: String| sc_div(kind, what);
    let scfg = ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        router: RouterConfig {
            workers: cfg.chips,
            dred_capacity: cfg.dred_capacity,
            batch_size: cfg.batch,
            // Faults are injected client-side by the perturber, ahead
            // of the wire, like the net phase does.
            faults: None,
            backend,
            ..RouterConfig::default()
        },
        idle_poll: Duration::from_millis(10),
        transport: cfg.transport,
        ..ServerConfig::default()
    };
    let server = Server::start(&scenario.base, &scfg).map_err(|e| div(e.to_string()))?;
    let addr = server.local_addr().to_string();
    let packets = &scenario.packets;

    // Quiescent pass: every wire answer equals the oracle on the base
    // table — the scenario's key distribution probes the backend cold.
    let oracle0 = Oracle::new(&scenario.base);
    let mut conn = Connection::connect(client_cfg(addr.clone())).map_err(|e| div(e.to_string()))?;
    for batch in packets.chunks(512) {
        let got = conn.lookup(batch).map_err(|e| div(e.to_string()))?;
        for (&a, &g) in batch.iter().zip(&got) {
            let expected = oracle0.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Scenario,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    conn.close().map_err(|e| div(e.to_string()))?;

    // Racing pass: the timed schedule against a second sweep of the
    // scenario's lookup stream.
    let schedule = replay_schedule(scenario);
    let (update_res, lookup_res) = std::thread::scope(|s| {
        let update_handle = s.spawn(|| -> Result<clue_net::ClientReport, std::io::Error> {
            let conn = Connection::connect(client_cfg(addr.clone()))?;
            send_schedule(conn, &schedule, cfg.batch, cfg.faults.as_ref())
        });
        let lookup_handle = s.spawn(|| -> Result<usize, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut answered = 0usize;
            for batch in packets.chunks(512) {
                answered += conn.lookup(batch)?.len();
            }
            conn.close()?;
            Ok(answered)
        });
        (
            update_handle.join().expect("scenario update thread exits"),
            lookup_handle.join().expect("scenario lookup thread exits"),
        )
    });
    let update_report = update_res.map_err(|e| div(e.to_string()))?;
    let answered = lookup_res.map_err(|e| div(e.to_string()))?;

    // Zero lost acks, no lost lookups.
    if update_report.dropped != 0 {
        return Err(div(format!(
            "{} updates dropped under Block policy ({backend} backend)",
            update_report.dropped
        )));
    }
    if update_report.accepted != scenario.schedule.len() as u64 {
        return Err(div(format!(
            "lost acks: {} of {} updates acked ({backend} backend)",
            update_report.accepted,
            scenario.schedule.len()
        )));
    }
    if answered != packets.len() {
        return Err(div(format!(
            "racing run answered {answered} of {} lookups ({backend} backend)",
            packets.len()
        )));
    }

    // Post-replay boundary probes against the oracle's final state,
    // through the still-live server.
    let mut oracle = oracle0;
    for e in &scenario.schedule.events {
        oracle.apply(e.update);
    }
    let standing = oracle.prefixes();
    let probe_addrs = probe_set(
        &standing,
        &[],
        cfg.seed ^ SCENARIO_PROBE_SALT,
        cfg.probe_sample * 2,
        cfg.probe_random * 2,
    );
    let probes_run = probe_settled(&addr, &oracle, &probe_addrs, &div)?;

    // Drain: conservation and bit-exact convergence.
    let report = server
        .drain()
        .map_err(|e| div(format!("server drain failed: {e}")))?;
    if report.snapshot.arrivals != report.snapshot.completions {
        return Err(div(format!(
            "lost traffic: {} arrivals, {} completions ({backend} backend)",
            report.snapshot.arrivals, report.snapshot.completions
        )));
    }
    if report.snapshot.updates_received != scenario.schedule.len() as u64 {
        return Err(div(format!(
            "ingress saw {} of {} updates ({backend} backend)",
            report.snapshot.updates_received,
            scenario.schedule.len()
        )));
    }
    let want = oracle.table();
    if report.final_table != want {
        return Err(div(format!(
            "final FIB diverged: {} routes vs oracle's {} ({backend} backend)",
            report.final_table.len(),
            want.len()
        )));
    }
    if report.final_compressed != onrtc(&want) {
        return Err(div(format!(
            "final compressed table diverged: {} entries ({backend} backend)",
            report.final_compressed.len()
        )));
    }

    Ok(LiveRun {
        lookups: packets.len() * 2,
        probes: probes_run,
    })
}

/// The sharded pass: the scenario through a proxy over `cfg.shards`
/// plain shard servers (no durability or standbys — the cluster phase
/// owns failover), asserting proxy probe agreement, zero lost acks,
/// and post-replay convergence. Returns proxied lookups performed.
fn sharded_replay(scenario: &Scenario, cfg: &CheckConfig) -> Result<usize, Divergence> {
    let kind = scenario.kind;
    let div = |what: String| sc_div(kind, what);

    let placeholder = ShardMap::derive(
        &scenario.base,
        vec![ShardSpec::primary_only("x:0"); cfg.shards],
    )
    .map_err(|e| div(format!("deriving shard map: {e}")))?;

    let scfg = ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        router: RouterConfig {
            workers: cfg.chips,
            dred_capacity: cfg.dred_capacity,
            batch_size: cfg.batch,
            faults: None,
            backend: cfg.backend,
            ..RouterConfig::default()
        },
        idle_poll: Duration::from_millis(10),
        transport: cfg.transport,
        ..ServerConfig::default()
    };
    let mut servers = Vec::with_capacity(cfg.shards);
    let mut specs = Vec::with_capacity(cfg.shards);
    for i in 0..cfg.shards {
        let shard_fib = placeholder.filter_table(&scenario.base, i);
        let server =
            Server::start(&shard_fib, &scfg).map_err(|e| div(format!("booting shard {i}: {e}")))?;
        specs.push(ShardSpec::primary_only(server.local_addr().to_string()));
        servers.push(server);
    }
    let map = ShardMap::from_cuts(placeholder.cuts().to_vec(), specs)
        .map_err(|e| div(format!("assembling shard map: {e}")))?;
    let mut proxy_cfg = ProxyConfig::new(map.clone());
    proxy_cfg.transport = cfg.transport;
    let proxy = Proxy::start(proxy_cfg).map_err(|e| div(format!("starting proxy: {e}")))?;
    let addr = proxy.local_addr().to_string();
    let packets = &scenario.packets;

    // Quiescent pass through the proxy.
    let oracle0 = Oracle::new(&scenario.base);
    let mut conn = Connection::connect(client_cfg(addr.clone())).map_err(|e| div(e.to_string()))?;
    for batch in packets.chunks(512) {
        let got = conn.lookup(batch).map_err(|e| div(e.to_string()))?;
        for (&a, &g) in batch.iter().zip(&got) {
            let expected = oracle0.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Scenario,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    conn.close().map_err(|e| div(e.to_string()))?;

    // Racing pass.
    let schedule = replay_schedule(scenario);
    let (update_res, lookup_res) = std::thread::scope(|s| {
        let update_handle = s.spawn(|| -> Result<clue_net::ClientReport, std::io::Error> {
            let conn = Connection::connect(client_cfg(addr.clone()))?;
            send_schedule(conn, &schedule, cfg.batch, None)
        });
        let lookup_handle = s.spawn(|| -> Result<usize, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut answered = 0usize;
            for batch in packets.chunks(512) {
                answered += conn.lookup(batch)?.len();
            }
            conn.close()?;
            Ok(answered)
        });
        (
            update_handle.join().expect("sharded update thread exits"),
            lookup_handle.join().expect("sharded lookup thread exits"),
        )
    });
    let update_report = update_res.map_err(|e| div(e.to_string()))?;
    let answered = lookup_res.map_err(|e| div(e.to_string()))?;
    if update_report.dropped != 0 {
        return Err(div(format!(
            "{} updates dropped under Block policy (sharded)",
            update_report.dropped
        )));
    }
    if update_report.accepted != scenario.schedule.len() as u64 {
        return Err(div(format!(
            "lost acks: {} of {} updates acked (sharded)",
            update_report.accepted,
            scenario.schedule.len()
        )));
    }
    if answered != packets.len() {
        return Err(div(format!(
            "racing run answered {answered} of {} lookups (sharded)",
            packets.len()
        )));
    }

    // Post-replay probes, then per-shard convergence.
    let mut oracle = oracle0;
    for e in &scenario.schedule.events {
        oracle.apply(e.update);
    }
    let standing = oracle.prefixes();
    let probe_addrs = probe_set(
        &standing,
        &[],
        cfg.seed ^ SCENARIO_PROBE_SALT,
        cfg.probe_sample * 2,
        cfg.probe_random * 2,
    );
    probe_settled(&addr, &oracle, &probe_addrs, &div)?;
    proxy.stop();

    let want = oracle.table();
    for (i, server) in servers.into_iter().enumerate() {
        let report = server
            .drain()
            .map_err(|e| div(format!("draining shard {i}: {e}")))?;
        let expect = map.filter_table(&want, i);
        if report.final_table != expect {
            return Err(div(format!(
                "shard {i} final table diverged: {} routes vs filtered oracle's {}",
                report.final_table.len(),
                expect.len()
            )));
        }
    }

    Ok(packets.len() * 2)
}
