//! The networked conformance phase: the same seeded workload as the
//! in-process phases, driven over loopback TCP through `clue-net`.
//!
//! What this adds on top of [`check_router_phase`]: the wire protocol's
//! framing/CRC, the server's connection threads, seq/ack accounting, and
//! the client's reconnect/resume machinery all sit between the workload
//! and the router — and the final table must *still* equal the oracle's
//! sequential application. Fault injection runs **client-side**: the
//! update stream passes through an [`IngressPerturber`] before frames
//! are cut, so delay/reorder/drop-with-retransmit reach the server in a
//! per-prefix-order-preserving interleaving, exactly like the in-process
//! faulty runs.
//!
//! [`check_router_phase`]: crate::harness::check_router_phase

use std::time::Duration;

use clue_compress::onrtc;
use clue_fib::{RouteTable, Update};
use clue_net::{ClientConfig, Connection, Server, ServerConfig};
use clue_router::{IngressPerturber, RouterConfig};
use clue_traffic::PacketGen;

use crate::harness::{CheckConfig, Divergence, Stage, PACKET_SALT};
use crate::model::Oracle;

/// Outcome of the networked phase.
#[derive(Debug, Clone, Copy)]
pub struct NetOutcome {
    /// Packet lookups answered over TCP (both runs).
    pub lookups: usize,
    /// Client reconnects performed (0 on a healthy loopback).
    pub reconnects: u64,
    /// Epochs the server's router published in the racing run.
    pub epochs: u64,
}

fn net_div(what: impl std::fmt::Display) -> Divergence {
    Divergence::Router {
        what: format!("net phase: {what}"),
    }
}

fn client_cfg(addr: String) -> ClientConfig {
    ClientConfig {
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::to_addr(addr)
    }
}

/// Drives `trace` and the seeded packet stream through a loopback
/// `clue-net` server and asserts agreement with the oracle: per-lookup
/// in a quiescent run, final-table convergence in a racing run, zero
/// update loss under the `Block` policy.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; socket-level failures are
/// reported as router-phase divergences (the net phase could not
/// faithfully deliver the workload).
pub fn check_net_phase(
    table: &RouteTable,
    trace: &[Update],
    cfg: &CheckConfig,
) -> Result<NetOutcome, Divergence> {
    let scfg = ServerConfig {
        listen: "127.0.0.1:0".to_string(),
        router: RouterConfig {
            workers: cfg.chips,
            dred_capacity: cfg.dred_capacity,
            batch_size: cfg.batch,
            // Server-side faults stay off: the perturber below injects
            // them ahead of the wire, where the real world would.
            faults: None,
            backend: cfg.backend,
            ..RouterConfig::default()
        },
        idle_poll: Duration::from_millis(10),
        transport: cfg.transport,
        ..ServerConfig::default()
    };
    let server = Server::start(table, &scfg).map_err(net_div)?;
    let addr = server.local_addr().to_string();
    let packets = if cfg.packets > 0 {
        PacketGen::new(cfg.seed ^ PACKET_SALT).generate(table, cfg.packets)
    } else {
        Vec::new()
    };

    // Run 1: quiescent table — every TCP answer must equal the oracle.
    let oracle0 = Oracle::new(table);
    let mut conn = Connection::connect(client_cfg(addr.clone())).map_err(net_div)?;
    for batch in packets.chunks(512) {
        let got = conn.lookup(batch).map_err(net_div)?;
        for (&a, &g) in batch.iter().zip(&got) {
            let expected = oracle0.lookup(a);
            if g != expected {
                return Err(Divergence::Lookup {
                    stage: Stage::Net,
                    batch: 0,
                    addr: a,
                    expected,
                    got: g,
                });
            }
        }
    }
    let quiet_report = conn.close().map_err(net_div)?;

    // Run 2: race the update stream (through the client-side perturber)
    // against a second pass of the packet stream.
    let (update_res, lookup_res) = std::thread::scope(|s| {
        let update_handle = s.spawn(|| -> Result<clue_net::ClientReport, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut perturber = cfg
                .faults
                .filter(|f| !f.is_noop())
                .map(IngressPerturber::new);
            let mut staged = Vec::new();
            let mut pending: Vec<Update> = Vec::with_capacity(cfg.batch);
            for &u in trace {
                match &mut perturber {
                    Some(p) => {
                        if let Some(d) = p.feeder_delay() {
                            std::thread::sleep(d);
                        }
                        staged.clear();
                        p.push(u, &mut staged);
                        pending.extend_from_slice(&staged);
                    }
                    None => pending.push(u),
                }
                if pending.len() >= cfg.batch {
                    conn.send_updates(&pending)?;
                    pending.clear();
                }
            }
            if let Some(p) = perturber {
                staged.clear();
                p.finish(&mut staged);
                pending.extend_from_slice(&staged);
            }
            conn.send_updates(&pending)?;
            conn.flush_acks()?;
            conn.close()
        });
        let lookup_handle = s.spawn(|| -> Result<usize, std::io::Error> {
            let mut conn = Connection::connect(client_cfg(addr.clone()))?;
            let mut answered = 0usize;
            for batch in packets.chunks(512) {
                answered += conn.lookup(batch)?.len();
            }
            let _ = conn.close()?;
            Ok(answered)
        });
        (
            update_handle.join().expect("net update thread exits"),
            lookup_handle.join().expect("net lookup thread exits"),
        )
    });
    let update_report = update_res.map_err(net_div)?;
    let answered = lookup_res.map_err(net_div)?;
    if answered != packets.len() {
        return Err(net_div(format!(
            "racing run answered {answered} of {} lookups",
            packets.len()
        )));
    }
    if update_report.dropped != 0 {
        return Err(net_div(format!(
            "{} updates dropped under Block policy",
            update_report.dropped
        )));
    }
    if update_report.accepted != trace.len() as u64 {
        return Err(net_div(format!(
            "{} of {} updates acked as accepted",
            update_report.accepted,
            trace.len()
        )));
    }

    let report = server
        .drain()
        .map_err(|e| net_div(format!("server drain failed: {e}")))?;
    // `packets_conserved()` also checks `results`, which only the
    // in-process runtime fills; over TCP the answers went back on the
    // wire, so arrivals/completions is the whole conservation story.
    if report.snapshot.arrivals != report.snapshot.completions {
        return Err(net_div(format!(
            "lost traffic: {} arrivals, {} completions",
            report.snapshot.arrivals, report.snapshot.completions
        )));
    }
    if report.snapshot.updates_received != trace.len() as u64 {
        return Err(net_div(format!(
            "ingress saw {} of {} updates",
            report.snapshot.updates_received,
            trace.len()
        )));
    }
    let mut oracle = oracle0;
    for &u in trace {
        oracle.apply(u);
    }
    let want = oracle.table();
    if report.final_table != want {
        return Err(net_div(format!(
            "final FIB diverged over TCP: {} routes vs oracle's {}",
            report.final_table.len(),
            want.len()
        )));
    }
    if report.final_compressed != onrtc(&want) {
        return Err(net_div(format!(
            "final compressed table diverged over TCP: {} entries",
            report.final_compressed.len()
        )));
    }

    Ok(NetOutcome {
        lookups: packets.len() * 2,
        reconnects: quiet_report.reconnects + update_report.reconnects,
        epochs: report.snapshot.epochs,
    })
}
