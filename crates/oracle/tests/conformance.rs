//! `#[test]` entry points for the differential conformance harness.
//!
//! These are the CI-facing versions of `clue check`: small seeded
//! workloads through the full stack (trie → ONRTC → partition → TCAM →
//! DRed → router runtime) against the naive oracle, with and without
//! fault injection. Sizes are chosen to stay fast unoptimized; the CI
//! conformance job runs the larger `clue check` workloads in release.

use clue_net::Transport;
use clue_oracle::harness::{check_router_phase, check_trace, minimize_failure, replay};
use clue_oracle::{run_check, CheckConfig, CheckFailure, Divergence, Oracle, Reproducer, Stage};
use clue_router::FaultPlan;

/// A debug-build-friendly workload: ~19 update batches over a 400-route
/// table, 3 000 packets through the router phase.
fn small(seed: u64) -> CheckConfig {
    CheckConfig {
        routes: 400,
        updates: 600,
        packets: 3_000,
        batch: 32,
        probe_sample: 16,
        probe_random: 32,
        ..CheckConfig::new(seed, 600)
    }
}

#[test]
fn clean_check_passes() {
    let cfg = small(7);
    let report =
        run_check(&cfg).unwrap_or_else(|f| panic!("clean check diverged: {}", f.divergence));
    assert_eq!(report.applied, cfg.updates);
    assert_eq!(report.batches, cfg.updates.div_ceil(cfg.batch));
    assert!(report.probes > 0, "probe sets must not be vacuous");
    assert!(!report.faulted);
}

#[test]
fn faulted_check_passes() {
    let cfg = CheckConfig {
        faults: Some(FaultPlan::chaos(99)),
        ..small(11)
    };
    let report =
        run_check(&cfg).unwrap_or_else(|f| panic!("faulted check diverged: {}", f.divergence));
    assert!(report.faulted);
    assert!(report.router_lookups > 0);
}

#[test]
fn multiple_seeds_pass() {
    for seed in [1, 2, 3] {
        let cfg = CheckConfig {
            updates: 256,
            packets: 1_000,
            ..small(seed)
        };
        run_check(&cfg).unwrap_or_else(|f| panic!("seed {seed} diverged: {}", f.divergence));
    }
}

/// The cluster phase inside `run_check`: 2 shards with standbys, a
/// primary killed mid-burst, standby promoted — no lost acks, and the
/// report carries the phase's counters.
#[test]
fn sharded_check_passes() {
    let cfg = CheckConfig {
        shards: 2,
        packets: 1_500,
        ..small(13)
    };
    let report =
        run_check(&cfg).unwrap_or_else(|f| panic!("sharded check diverged: {}", f.divergence));
    assert_eq!(report.cluster_shards, 2);
    assert_eq!(report.cluster_failovers, 1);
    assert!(report.cluster_lookups > 0);
    assert!(
        report.cluster_probes > 0,
        "cluster probes must not be vacuous"
    );
}

#[test]
fn zero_updates_still_checks_lookups() {
    let cfg = CheckConfig {
        updates: 0,
        ..small(5)
    };
    let report = run_check(&cfg).unwrap_or_else(|f| panic!("diverged: {}", f.divergence));
    assert_eq!(report.applied, 0);
    assert_eq!(report.batches, 0);
    assert!(
        report.router_lookups > 0,
        "router phase still compares packets"
    );
}

#[test]
fn harness_catches_a_corrupted_oracle() {
    // Meta-check: feed `check_trace` a table the pipeline was *not*
    // built from by corrupting the trace so oracle and pipeline see
    // different updates. We simulate this via the divergence plumbing:
    // a sabotaged still-fails predicate must shrink to the minimal core.
    let cfg = small(13);
    let table = clue_fib::gen::FibGen::new(cfg.seed)
        .routes(cfg.routes)
        .generate();
    let trace = clue_traffic::UpdateGen::new(cfg.seed).generate(&table, 64);

    // Sanity: the real trace passes.
    check_trace(&table, &trace, &cfg).expect("clean trace must pass");

    // A fabricated sequential failure whose trace does NOT actually
    // fail is kept at full length rather than shrunk to nothing.
    let failure = CheckFailure {
        divergence: Divergence::Invariant {
            batch: 0,
            what: "fabricated".into(),
        },
        table: table.clone(),
        trace: trace.clone(),
    };
    let repro = minimize_failure(&failure, &cfg);
    assert_eq!(
        repro.trace, trace,
        "non-reproducing failures must keep the full trace"
    );
    assert!(repro.note.contains("fabricated"));

    // And a reproducer built from a passing workload replays cleanly.
    let repro = Reproducer {
        note: String::new(),
        table,
        trace,
    };
    replay(&repro, &cfg).expect("passing reproducer must replay clean");
}

#[test]
fn router_phase_rejects_lost_updates_scenario() {
    // The router phase asserts final-state convergence; run it directly
    // on a tiny workload to pin the entry point used by shrinking.
    let cfg = CheckConfig {
        packets: 500,
        ..small(17)
    };
    let table = clue_fib::gen::FibGen::new(cfg.seed).routes(64).generate();
    let trace = clue_traffic::UpdateGen::new(cfg.seed ^ 1).generate(&table, 128);
    let out = check_router_phase(&table, &trace, &cfg).expect("router phase passes");
    assert_eq!(out.lookups, cfg.packets * 2);
}

#[test]
fn net_check_passes_over_loopback() {
    let cfg = CheckConfig {
        net: true,
        updates: 256,
        packets: 1_500,
        ..small(19)
    };
    let report = run_check(&cfg).unwrap_or_else(|f| panic!("net check diverged: {}", f.divergence));
    assert_eq!(report.net_lookups, cfg.packets * 2);
    assert_eq!(report.net_reconnects, 0, "loopback should not reconnect");
}

#[test]
fn net_check_passes_under_client_side_faults() {
    let cfg = CheckConfig {
        net: true,
        faults: Some(FaultPlan::chaos(131)),
        updates: 256,
        packets: 1_000,
        ..small(23)
    };
    let report =
        run_check(&cfg).unwrap_or_else(|f| panic!("faulted net check diverged: {}", f.divergence));
    assert!(report.faulted);
    assert_eq!(report.net_lookups, cfg.packets * 2);
}

/// The networked phase with the server on the evloop transport: the
/// wire semantics the oracle asserts (Block backpressure, seq/ack
/// exactly-once, drain) must be transport-invariant.
#[test]
fn net_check_passes_with_evloop_transport() {
    let cfg = CheckConfig {
        net: true,
        transport: Transport::Evloop,
        updates: 256,
        packets: 1_500,
        ..small(37)
    };
    let report =
        run_check(&cfg).unwrap_or_else(|f| panic!("evloop net check diverged: {}", f.divergence));
    assert_eq!(report.net_lookups, cfg.packets * 2);
    assert_eq!(report.net_reconnects, 0, "loopback should not reconnect");
}

#[test]
fn net_check_passes_with_evloop_transport_under_faults() {
    let cfg = CheckConfig {
        net: true,
        transport: Transport::Evloop,
        faults: Some(FaultPlan::chaos(151)),
        updates: 256,
        packets: 1_000,
        ..small(43)
    };
    let report = run_check(&cfg)
        .unwrap_or_else(|f| panic!("faulted evloop net check diverged: {}", f.divergence));
    assert!(report.faulted);
    assert_eq!(report.net_lookups, cfg.packets * 2);
}

/// The cluster phase end to end on the evloop transport: shard servers
/// *and* the proxy all multiplex on reactors, with the mid-burst
/// primary kill still promoting without a lost ack.
#[test]
fn sharded_check_passes_with_evloop_transport() {
    let cfg = CheckConfig {
        shards: 2,
        transport: Transport::Evloop,
        packets: 1_500,
        ..small(47)
    };
    let report = run_check(&cfg)
        .unwrap_or_else(|f| panic!("evloop sharded check diverged: {}", f.divergence));
    assert_eq!(report.cluster_shards, 2);
    assert_eq!(report.cluster_failovers, 1);
    assert!(report.cluster_lookups > 0);
}

#[test]
fn net_phase_runs_standalone() {
    let cfg = CheckConfig {
        packets: 400,
        ..small(29)
    };
    let table = clue_fib::gen::FibGen::new(cfg.seed).routes(128).generate();
    let trace = clue_traffic::UpdateGen::new(cfg.seed ^ 2).generate(&table, 96);
    let out = clue_oracle::check_net_phase(&table, &trace, &cfg).expect("net phase passes");
    assert_eq!(out.lookups, cfg.packets * 2);
}

#[test]
fn oracle_agrees_with_fib_trie_on_random_workloads() {
    // Cross-check the reference model itself against the (independent)
    // binary-trie implementation so a bug in the oracle can't silently
    // vouch for the stack.
    for seed in [21u64, 22, 23] {
        let table = clue_fib::gen::FibGen::new(seed).routes(300).generate();
        let trie = table.to_trie();
        let oracle = Oracle::new(&table);
        let mut rng = clue_oracle::probes::ProbeRng::new(seed);
        for _ in 0..2_000 {
            let addr = rng.next_u64() as u32;
            assert_eq!(
                oracle.lookup(addr),
                trie.lookup(addr).map(|(_, &nh)| nh),
                "seed {seed} addr {addr:#010x}"
            );
        }
    }
}

#[test]
fn divergence_messages_name_the_stage() {
    let d = Divergence::Lookup {
        stage: Stage::Router,
        batch: 3,
        addr: 0x0A00_0001,
        expected: None,
        got: Some(clue_fib::NextHop(4)),
    };
    let text = d.to_string();
    assert!(text.contains("router runtime"), "got: {text}");
    assert!(text.contains("10.0.0.1"), "got: {text}");
    assert!(d.is_router_phase());
    let d = Divergence::Invariant {
        batch: 0,
        what: "x".into(),
    };
    assert!(!d.is_router_phase());
}

#[test]
fn recovery_phase_passes_across_seeds() {
    // Crash points land at seed-derived trace offsets, so three seeds
    // exercise recovery at genuinely different journal positions, each
    // with an intact, a torn, and a bit-flipped tail.
    for seed in [17, 23, 31] {
        let cfg = CheckConfig {
            recovery: true,
            updates: 256,
            packets: 1_000,
            ..small(seed)
        };
        let report =
            run_check(&cfg).unwrap_or_else(|f| panic!("seed {seed} diverged: {}", f.divergence));
        assert_eq!(report.recovery_crashes, 3, "seed {seed}");
        assert!(report.recovery_probes > 0, "seed {seed}");
    }
}

#[test]
fn recovery_phase_handles_an_empty_trace() {
    // Nothing journaled: the clean-durability sub-phase must still
    // round-trip the base snapshot; crash points are skipped.
    let cfg = CheckConfig {
        recovery: true,
        updates: 0,
        packets: 500,
        ..small(41)
    };
    let report = run_check(&cfg).unwrap_or_else(|f| panic!("diverged: {}", f.divergence));
    assert_eq!(report.recovery_crashes, 0);
    assert!(report.recovery_probes > 0, "base snapshot is still probed");
}

#[test]
fn recovery_divergences_name_the_stage() {
    let d = Divergence::Lookup {
        stage: Stage::Recovery,
        batch: 2,
        addr: 0x0A00_0001,
        expected: Some(clue_fib::NextHop(1)),
        got: None,
    };
    let text = d.to_string();
    assert!(text.contains("recovered state"), "got: {text}");
    assert!(
        !d.is_router_phase(),
        "recovery divergences shrink against the sequential phase"
    );
}
