//! Cross-backend differential property tests: every [`LookupPlane`]
//! backend must agree with the naive flat-scan oracle on arbitrary
//! update traces — announces, withdraws, and coalesced batches — with
//! adversarial probes at /0, /32, and sibling-prefix edges.
//!
//! The sequential conformance phase already probes all backends inside
//! `check_trace` on generator workloads; these properties attack the
//! same agreement with proptest-shaped inputs (deliberately nested
//! universes, default routes, host-route sibling pairs) so the edge
//! geometry is explored independently of the BGP-trace generators.

use clue_compress::onrtc;
use clue_core::lookup::{build_plane, BackendKind, LookupPlane};
use clue_fib::{NextHop, Prefix, Route, RouteTable, Update};
use clue_oracle::Oracle;
use clue_router::coalesce;
use proptest::prelude::*;

/// A prefix universe spanning the adversarial geometry: the default
/// route (/0), disjoint /8s, nested /16s, and /32 host-route sibling
/// pairs at the top edge of their /8 (so `high + 1` crosses into the
/// neighbouring /8).
fn universe(i: u8) -> Prefix {
    match usize::from(i) % 81 {
        0 => Prefix::root(),
        x if x < 33 => Prefix::new(((x - 1) as u32) << 24, 8),
        x if x < 65 => Prefix::new((((x - 33) as u32) << 24) | (1 << 16), 16),
        x if x < 73 => Prefix::new((((x - 65) as u32) << 24) | 0x00FF_FFFE, 32),
        x => Prefix::new((((x - 73) as u32) << 24) | 0x00FF_FFFF, 32),
    }
}

fn decode_updates(ops: &[(u8, bool, u8)]) -> Vec<Update> {
    ops.iter()
        .map(|&(i, announce, nh)| {
            let prefix = universe(i);
            if announce {
                Update::Announce {
                    prefix,
                    next_hop: NextHop(u16::from(nh) % 8),
                }
            } else {
                Update::Withdraw { prefix }
            }
        })
        .collect()
}

fn decode_base(entries: &[(u8, u8)]) -> RouteTable {
    let mut t = RouteTable::new();
    // An anchor outside the churned universe keeps compression
    // non-degenerate even when every universe route is withdrawn.
    t.insert(Prefix::new(0xC000_0000, 4), NextHop(15));
    for &(i, nh) in entries {
        t.insert(universe(i), NextHop(u16::from(nh) % 8));
    }
    t
}

/// Adversarial probe set: /0 extremes, half-space boundary, and for
/// every standing route its interval ends, the addresses one past them,
/// and both ends of its sibling prefix.
fn boundary_probes(table: &RouteTable) -> Vec<u32> {
    let mut addrs = vec![0u32, 1, 0x7FFF_FFFF, 0x8000_0000, u32::MAX - 1, u32::MAX];
    for r in table.iter() {
        let (lo, hi) = (r.prefix.low(), r.prefix.high());
        addrs.extend([lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1)]);
        if let Some(sib) = r.prefix.sibling() {
            addrs.push(sib.low());
            addrs.push(sib.high());
        }
    }
    addrs
}

fn planes_over(routes: &[Route]) -> Vec<Box<dyn LookupPlane>> {
    clue_tile::install();
    BackendKind::ALL
        .iter()
        .map(|&k| build_plane(k, routes))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random update traces, applied batch-by-batch through the same
    /// last-op-wins coalescer the router's update plane uses: after
    /// every coalesced batch, all three backends (built from the ONRTC
    /// compression of the live table) answer every adversarial probe
    /// exactly like the flat-scan oracle.
    #[test]
    fn all_backends_agree_with_the_oracle_on_update_traces(
        base in prop::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        ops in prop::collection::vec((any::<u8>(), any::<bool>(), any::<u8>()), 1..48),
        random_probes in prop::collection::vec(any::<u32>(), 24),
    ) {
        let pre = decode_base(&base);
        let trace = decode_updates(&ops);
        let mut oracle = Oracle::new(&pre);
        let mut table = pre.clone();

        for batch in trace.chunks(8) {
            let coalesced = coalesce(batch, &table);
            for &u in &coalesced.ops {
                oracle.apply(u);
                table.apply(u);
            }
            let compressed = onrtc(&table);
            let routes: Vec<Route> = compressed.iter().collect();
            let planes = planes_over(&routes);
            let mut probes = boundary_probes(&table);
            probes.extend_from_slice(&random_probes);
            for addr in probes {
                let expected = oracle.lookup(addr);
                for plane in &planes {
                    prop_assert_eq!(
                        plane.next_hop(addr),
                        expected,
                        "{} backend diverged at {:#010x}",
                        plane.kind(),
                        addr
                    );
                }
            }
        }
    }

    /// Backends built from *overlapping* (uncompressed) route sets
    /// must resolve the longest match — the oracle scans the raw
    /// table, so nesting (/0 under /8 under /16 under /32) is decided
    /// by prefix length alone.
    #[test]
    fn backends_resolve_longest_match_on_overlapping_sets(
        entries in prop::collection::vec((any::<u8>(), any::<u8>()), 1..32),
        random_probes in prop::collection::vec(any::<u32>(), 24),
    ) {
        let table = decode_base(&entries);
        let oracle = Oracle::new(&table);
        let routes: Vec<Route> = table.iter().collect();
        let planes = planes_over(&routes);
        let mut probes = boundary_probes(&table);
        probes.extend_from_slice(&random_probes);
        for addr in probes {
            let expected = oracle.lookup(addr);
            for plane in &planes {
                prop_assert_eq!(
                    plane.next_hop(addr),
                    expected,
                    "{} backend diverged at {:#010x}",
                    plane.kind(),
                    addr
                );
            }
        }
    }

    /// The matched route (prefix *and* next hop — what the DRed fill
    /// path caches) is identical across backends, not just the hop.
    #[test]
    fn backends_agree_on_the_matched_route_itself(
        entries in prop::collection::vec((any::<u8>(), any::<u8>()), 0..24),
        random_probes in prop::collection::vec(any::<u32>(), 48),
    ) {
        let table = onrtc(&decode_base(&entries));
        let routes: Vec<Route> = table.iter().collect();
        let planes = planes_over(&routes);
        let mut probes = boundary_probes(&table);
        probes.extend_from_slice(&random_probes);
        for addr in probes {
            let answers: Vec<Option<Route>> =
                planes.iter().map(|p| p.lookup(addr)).collect();
            prop_assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "matched-route disagreement at {:#010x}: {:?}",
                addr,
                answers
            );
        }
    }
}

/// Fixed edge geometry, checked exhaustively (no generator): a default
/// route, a /32 at 0.0.0.0, a /32 at 255.255.255.255, and a sibling
/// pair split at the /1 boundary.
#[test]
fn fixed_extreme_table_agrees_everywhere_it_matters() {
    let mut table = RouteTable::new();
    table.insert(Prefix::root(), NextHop(1));
    table.insert(Prefix::new(0, 32), NextHop(2));
    table.insert(Prefix::new(u32::MAX, 32), NextHop(3));
    table.insert(Prefix::new(0, 1), NextHop(4));
    table.insert(Prefix::new(0x8000_0000, 1), NextHop(5));
    let oracle = Oracle::new(&table);

    for source in [table.clone(), onrtc(&table)] {
        let routes: Vec<Route> = source.iter().collect();
        let planes = planes_over(&routes);
        for addr in [
            0u32,
            1,
            2,
            0x7FFF_FFFF,
            0x8000_0000,
            0x8000_0001,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let expected = oracle.lookup(addr);
            for plane in &planes {
                assert_eq!(
                    plane.next_hop(addr),
                    expected,
                    "{} backend at {addr:#010x}",
                    plane.kind()
                );
            }
        }
    }
}
