//! `#[test]` entry points for the adversarial-scenario phase.
//!
//! These are the CI-facing versions of `clue check --scenario`: every
//! named `clue-trace` workload through the sequential differential
//! check and the live per-backend replay, plus one sharded and one
//! faulted variant. Sizes stay debug-build friendly; the CI
//! scenario-smoke job runs the larger CLI workloads in release.

use clue_oracle::{run_scenario_check, CheckConfig};
use clue_router::FaultPlan;
use clue_trace::ScenarioKind;

/// Debug-friendly sizes: a 400-route base, ~600 scheduled updates,
/// 2 000 lookup keys.
fn small(seed: u64) -> CheckConfig {
    CheckConfig {
        routes: 400,
        updates: 600,
        packets: 2_000,
        batch: 32,
        probe_sample: 16,
        probe_random: 32,
        ..CheckConfig::new(seed, 600)
    }
}

#[test]
fn every_scenario_passes_clean() {
    for kind in ScenarioKind::ALL {
        let cfg = small(7);
        let report = run_scenario_check(&cfg, kind)
            .unwrap_or_else(|f| panic!("{kind} diverged: {}", f.divergence));
        assert_eq!(report.kind, kind);
        assert!(report.applied > 0, "{kind}: empty schedule");
        assert!(report.probes > 0, "{kind}: vacuous sequential probes");
        assert_eq!(
            report.live_runs,
            clue_core::BackendKind::ALL.len(),
            "{kind}: one live run per backend"
        );
        assert!(report.live_lookups > 0, "{kind}: no live lookups");
        assert!(report.live_probes > 0, "{kind}: vacuous live probes");
        assert_eq!(report.shards, 0);
    }
}

#[test]
fn flap_storm_survives_faults() {
    let cfg = CheckConfig {
        faults: Some(FaultPlan::chaos(99)),
        ..small(11)
    };
    let report = run_scenario_check(&cfg, ScenarioKind::FlapStorm)
        .unwrap_or_else(|f| panic!("faulted flap-storm diverged: {}", f.divergence));
    assert!(report.live_lookups > 0);
}

#[test]
fn withdraw_flood_passes_sharded() {
    let cfg = CheckConfig {
        shards: 3,
        packets: 1_500,
        ..small(13)
    };
    let report = run_scenario_check(&cfg, ScenarioKind::WithdrawFlood)
        .unwrap_or_else(|f| panic!("sharded withdraw-flood diverged: {}", f.divergence));
    assert_eq!(report.shards, 3);
    assert!(report.shard_lookups > 0, "no proxied lookups");
}
