//! WAL-shipping replication end to end: ack implies standby-applied,
//! a follower joining mid-stream catches up from snapshot + tail
//! without replaying acknowledged batches twice, reconnection resumes
//! from the applied position, and a stalled follower is demoted
//! instead of halting the update plane.

use std::fs;
use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use clue_cluster::{Primary, PrimaryConfig, ReplConfig, Standby, StandbyConfig, StandbyOutcome};
use clue_fib::gen::FibGen;
use clue_fib::{RouteTable, Update};
use clue_net::frame::{Frame, FrameType};
use clue_net::{wire, ClientConfig, Connection};
use clue_store::StoreConfig;
use clue_traffic::UpdateGen;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clue-repl-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn workload(seed: u64, routes: usize, updates: usize) -> (RouteTable, Vec<Update>) {
    let fib = FibGen::new(seed).routes(routes).generate();
    let trace = UpdateGen::new(seed + 1).generate(&fib, updates);
    (fib, trace)
}

fn oracle(fib: &RouteTable, trace: &[Update]) -> RouteTable {
    let mut t = fib.clone();
    for &u in trace {
        t.apply(u);
    }
    t
}

/// Test-speed primary: fsync off, small snapshot cadence so checkpoints
/// actually rotate the streamable base mid-test.
fn primary_cfg(sync_timeout: Duration) -> PrimaryConfig {
    PrimaryConfig {
        store: StoreConfig {
            fsync: false,
            snapshot_every: 8,
            ..StoreConfig::default()
        },
        repl: ReplConfig {
            idle_poll: Duration::from_millis(10),
            ..ReplConfig::default()
        },
        sync_timeout,
        ..PrimaryConfig::default()
    }
}

fn standby_cfg(primary: &Primary) -> StandbyConfig {
    StandbyConfig {
        primary_repl: primary.repl_addr().to_string(),
        idle_poll: Duration::from_millis(5),
        reconnect_backoff: Duration::from_millis(20),
        ..StandbyConfig::default()
    }
}

fn client(primary: &Primary) -> Connection {
    Connection::connect(ClientConfig::to_addr(primary.local_addr().to_string())).unwrap()
}

fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The whole failover story in one assertion: the moment the client
/// holds an ack, the standby has applied the batch — so a promotion at
/// any point preserves every acknowledged update.
#[test]
fn ack_implies_standby_applied() {
    let dir = temp_dir("sync");
    let (fib, trace) = workload(11, 400, 300);
    let primary = Primary::start(&dir, Some(&fib), &primary_cfg(Duration::from_secs(5))).unwrap();
    let standby = Standby::start(standby_cfg(&primary)).unwrap();
    wait_for("standby to catch up", Duration::from_secs(10), || {
        primary.repl_stats().synced == 1
    });

    let mut conn = client(&primary);
    for chunk in trace.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();

    // No waiting: every update is acked, so the replica must already
    // hold the full oracle table.
    let state = standby.replica_state();
    assert_eq!(state.table, oracle(&fib, &trace), "replica diverged");
    assert_eq!(state.skipped, 0, "primary re-shipped an acked record");
    // Seqs are per update *frame*: the replicated high-water must reach
    // the client's own acked high-water so a promoted standby resumes
    // this client without replay.
    assert!(state.seq_hw >= conn.last_acked());
    assert_eq!(state.snapshots_loaded, 1);

    let report = conn.close().unwrap();
    assert_eq!(report.accepted, trace.len() as u64);
    assert_eq!(report.dropped, 0);
    match standby.stop().unwrap() {
        StandbyOutcome::Standby(s) => assert_eq!(s.records_applied, state.records_applied),
        StandbyOutcome::Promoted(_) => panic!("nothing promoted this standby"),
    }
    primary.stop().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// A follower that joins mid-stream seeds itself from the newest
/// snapshot plus the WAL tail and converges, never seeing an already
/// acknowledged batch twice.
#[test]
fn late_joiner_catches_up_from_snapshot_and_tail() {
    let dir = temp_dir("late");
    let (fib, trace) = workload(23, 400, 600);
    let (first, second) = trace.split_at(trace.len() / 2);
    let primary = Primary::start(&dir, Some(&fib), &primary_cfg(Duration::from_secs(5))).unwrap();

    let mut conn = client(&primary);
    for chunk in first.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();

    // Join mid-stream: snapshot_every=8 guarantees the base moved past
    // jseq 0, so this exercises snapshot + tail, not just tail.
    let standby = Standby::start(standby_cfg(&primary)).unwrap();
    wait_for("late joiner to sync", Duration::from_secs(10), || {
        primary.repl_stats().synced == 1
    });
    let seeded = standby.replica_state();
    assert_eq!(seeded.snapshots_loaded, 1);
    assert!(
        seeded.applied_jseq.unwrap() > 0,
        "base never rotated; the test would not cover snapshot seeding"
    );

    for chunk in second.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();

    let state = standby.replica_state();
    assert_eq!(state.table, oracle(&fib, &trace), "replica diverged");
    assert_eq!(state.skipped, 0, "an acknowledged batch was replayed");

    conn.close().unwrap();
    drop(standby);
    primary.stop().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Raw-protocol follower used to probe the resume contract and the
/// laggard-demotion path without a full `Standby`.
struct RawFollower {
    stream: TcpStream,
}

impl RawFollower {
    fn connect(addr: std::net::SocketAddr, applied: u64) -> RawFollower {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        Frame {
            kind: FrameType::ReplicaHello,
            seq: 0,
            payload: wire::encode_u64(applied),
        }
        .write_to(&mut &stream)
        .unwrap();
        RawFollower { stream }
    }

    fn read_frame(&mut self) -> Frame {
        Frame::read_from(&mut &self.stream).unwrap()
    }

    fn expect_hello_ack(&mut self) -> u64 {
        let f = self.read_frame();
        assert_eq!(f.kind, FrameType::HelloAck);
        wire::decode_u64(&f.payload).unwrap()
    }

    /// Reads snapshot chunks through the final one, returning the
    /// assembled bytes.
    fn read_snapshot(&mut self) -> Vec<u8> {
        let mut buf = Vec::new();
        loop {
            let f = self.read_frame();
            assert_eq!(f.kind, FrameType::SnapshotChunk);
            let (last, chunk) = wire::decode_chunk(&f.payload).unwrap();
            buf.extend_from_slice(chunk);
            if last {
                return buf;
            }
        }
    }

    fn ack(&mut self, jseq: u64, accepted: u32) {
        Frame {
            kind: FrameType::UpdateAck,
            seq: jseq,
            payload: wire::encode_ack(wire::UpdateAck {
                accepted,
                dropped: 0,
            }),
        }
        .write_to(&mut &self.stream)
        .unwrap();
    }

    /// Reads shipped records until the stream goes idle for `idle`,
    /// acking each; returns the jseqs seen.
    fn drain_ships(&mut self, idle: Duration) -> Vec<u64> {
        let mut seen = Vec::new();
        self.stream.set_read_timeout(Some(idle)).unwrap();
        loop {
            let mut lead = [0u8; 1];
            match (&mut &self.stream).read(&mut lead) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
            let f = Frame::read_after_lead(lead[0], &mut &self.stream).unwrap();
            assert_eq!(f.kind, FrameType::WalShip);
            let (rec, _) = clue_store::decode_record(&f.payload).unwrap();
            assert_eq!(rec.jseq, f.seq);
            self.ack(f.seq, rec.ops.len() as u32);
            seen.push(f.seq);
        }
        seen
    }
}

/// The resume contract at the wire level: a reconnecting follower that
/// announces its applied position is resumed exactly there — no record
/// at or below it is ever shipped again.
#[test]
fn reconnect_resumes_after_applied_position() {
    let dir = temp_dir("resume");
    let (fib, trace) = workload(37, 400, 200);
    let (first, second) = trace.split_at(trace.len() / 2);
    // Large snapshot cadence: the base stays at jseq 0 so resume runs
    // against the record tail, the interesting path.
    let mut cfg = primary_cfg(Duration::from_millis(300));
    cfg.store.snapshot_every = 1_000_000;
    let primary = Primary::start(&dir, Some(&fib), &cfg).unwrap();
    let mut conn = client(&primary);

    let mut f = RawFollower::connect(primary.repl_addr(), clue_cluster::FOLLOWER_EMPTY);
    assert_eq!(f.expect_hello_ack(), 0, "fresh follower resumes from 0");
    let snap = f.read_snapshot();
    assert!(!snap.is_empty());

    for chunk in first.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();
    let seen = f.drain_ships(Duration::from_millis(300));
    assert!(!seen.is_empty());
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "jseqs not increasing");
    let applied = *seen.last().unwrap();
    drop(f); // follower "crashes"

    let mut f = RawFollower::connect(primary.repl_addr(), applied);
    assert_eq!(
        f.expect_hello_ack(),
        applied,
        "resume point must be the applied position, not the base"
    );
    for chunk in second.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();
    let seen = f.drain_ships(Duration::from_millis(300));
    assert!(!seen.is_empty());
    assert!(
        seen.iter().all(|&j| j > applied),
        "an acknowledged record was re-shipped: {seen:?} vs applied {applied}"
    );

    conn.close().unwrap();
    drop(f);
    primary.stop().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Demote, don't halt: a follower that stops acknowledging is dropped
/// from the synchronous set at the sync timeout and clients keep
/// getting acks.
#[test]
fn stalled_follower_is_demoted_not_blocking() {
    let dir = temp_dir("demote");
    let (fib, trace) = workload(53, 400, 120);
    let mut cfg = primary_cfg(Duration::from_millis(200));
    cfg.store.snapshot_every = 1_000_000;
    let primary = Primary::start(&dir, Some(&fib), &cfg).unwrap();

    // Catch the raw follower up so it enters the synchronous set, then
    // go silent.
    let mut f = RawFollower::connect(primary.repl_addr(), clue_cluster::FOLLOWER_EMPTY);
    f.expect_hello_ack();
    f.read_snapshot();
    wait_for("follower to sync", Duration::from_secs(5), || {
        primary.repl_stats().synced == 1
    });

    let mut conn = client(&primary);
    let t0 = Instant::now();
    for chunk in trace.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();
    // All acks arrived despite the dead-silent follower, and the
    // demotion bound the stall to roughly one sync timeout per append
    // batch — far below the 10 s client I/O timeout a halt would hit.
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "stalled follower throttled the update plane: {:?}",
        t0.elapsed()
    );
    wait_for("laggard demotion", Duration::from_secs(2), || {
        primary.repl_stats().synced == 0
    });

    let report = conn.close().unwrap();
    assert_eq!(report.accepted, trace.len() as u64);
    drop(f);
    primary.stop().unwrap();
    let _ = fs::remove_dir_all(&dir);
}
