//! Property tests: a shard map is a true partition of the address
//! space — every /32 belongs to exactly one shard — its wire encoding
//! round-trips, and update fan-out covers exactly the shards whose
//! ranges a prefix touches.

use clue_cluster::{ShardMap, ShardSpec};
use clue_fib::{NextHop, Prefix, RouteTable};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = RouteTable> {
    prop::collection::vec((any::<u32>(), 4u8..=16, 0u16..4), 16..160).prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect()
    })
}

fn specs(n: usize) -> Vec<ShardSpec> {
    (0..n)
        .map(|i| ShardSpec::with_standby(format!("10.0.0.{i}:4000"), format!("10.0.1.{i}:4000")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every /32 address maps to exactly one shard: `shard_of` agrees
    /// with exactly one `shard_range`, the ranges tile the full `u32`
    /// space with no gap or overlap, and boundaries land on the cuts.
    #[test]
    fn every_address_belongs_to_exactly_one_shard(
        t in arb_table(),
        n in 1usize..9,
        probes in prop::collection::vec(any::<u32>(), 64),
    ) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        prop_assert_eq!(map.len(), n);

        // The ranges tile the space: start at 0, end at MAX, and each
        // range begins one past the previous end.
        let first = map.shard_range(0);
        let last = map.shard_range(n - 1);
        prop_assert_eq!(*first.start(), 0u32);
        prop_assert_eq!(*last.end(), u32::MAX);
        for i in 1..n {
            let prev_end = *map.shard_range(i - 1).end();
            let start = *map.shard_range(i).start();
            prop_assert_eq!(start, prev_end.wrapping_add(1));
        }

        // Probe random addresses plus every cut's two sides: the
        // owning shard is unique.
        let mut addrs = probes;
        for &c in map.cuts() {
            addrs.extend([c - 1, c, c.wrapping_add(1)]);
        }
        for addr in addrs {
            let owner = map.shard_of(addr);
            let containing: Vec<usize> =
                (0..n).filter(|&i| map.shard_range(i).contains(&addr)).collect();
            prop_assert_eq!(containing, vec![owner], "addr {:#x}", addr);
        }
    }

    /// Wire encoding round-trips cuts and endpoints exactly.
    #[test]
    fn encoding_round_trips(t in arb_table(), n in 1usize..9) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        let back = ShardMap::decode(&map.encode()).unwrap();
        prop_assert_eq!(back.cuts(), map.cuts());
        prop_assert_eq!(back.shards(), map.shards());
    }

    /// `shards_for_prefix` is exactly the set of shards whose range
    /// the prefix's address interval intersects, and it always
    /// includes the owner of both interval ends.
    #[test]
    fn fanout_matches_range_intersection(t in arb_table(), n in 1usize..9) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        for r in t.iter() {
            let fan = map.shards_for_prefix(r.prefix);
            for i in 0..n {
                let range = map.shard_range(i);
                let intersects =
                    r.prefix.low() <= *range.end() && r.prefix.high() >= *range.start();
                prop_assert_eq!(
                    fan.contains(&i),
                    intersects,
                    "{} vs shard {}", r.prefix, i
                );
            }
        }
    }
}
