//! Property tests: a shard map is a true partition of the address
//! space — every /32 belongs to exactly one shard — its wire encoding
//! round-trips, and update fan-out covers exactly the shards whose
//! ranges a prefix touches.

use clue_cluster::{ShardMap, ShardSpec};
use clue_fib::{NextHop, Prefix, RouteTable};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = RouteTable> {
    prop::collection::vec((any::<u32>(), 4u8..=16, 0u16..4), 16..160).prop_map(|v| {
        v.into_iter()
            .map(|(bits, len, nh)| (Prefix::new(bits, len), NextHop(nh)))
            .collect()
    })
}

fn specs(n: usize) -> Vec<ShardSpec> {
    (0..n)
        .map(|i| ShardSpec::with_standby(format!("10.0.0.{i}:4000"), format!("10.0.1.{i}:4000")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every /32 address maps to exactly one shard: `shard_of` agrees
    /// with exactly one `shard_range`, the ranges tile the full `u32`
    /// space with no gap or overlap, and boundaries land on the cuts.
    #[test]
    fn every_address_belongs_to_exactly_one_shard(
        t in arb_table(),
        n in 1usize..9,
        probes in prop::collection::vec(any::<u32>(), 64),
    ) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        prop_assert_eq!(map.len(), n);

        // The ranges tile the space: start at 0, end at MAX, and each
        // range begins one past the previous end.
        let first = map.shard_range(0);
        let last = map.shard_range(n - 1);
        prop_assert_eq!(*first.start(), 0u32);
        prop_assert_eq!(*last.end(), u32::MAX);
        for i in 1..n {
            let prev_end = *map.shard_range(i - 1).end();
            let start = *map.shard_range(i).start();
            prop_assert_eq!(start, prev_end.wrapping_add(1));
        }

        // Probe random addresses plus every cut's two sides: the
        // owning shard is unique.
        let mut addrs = probes;
        for &c in map.cuts() {
            addrs.extend([c - 1, c, c.wrapping_add(1)]);
        }
        for addr in addrs {
            let owner = map.shard_of(addr);
            let containing: Vec<usize> =
                (0..n).filter(|&i| map.shard_range(i).contains(&addr)).collect();
            prop_assert_eq!(containing, vec![owner], "addr {:#x}", addr);
        }
    }

    /// Wire encoding round-trips cuts and endpoints exactly.
    #[test]
    fn encoding_round_trips(t in arb_table(), n in 1usize..9) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        let back = ShardMap::decode(&map.encode()).unwrap();
        prop_assert_eq!(back.cuts(), map.cuts());
        prop_assert_eq!(back.shards(), map.shards());
    }

    /// `shards_for_prefix` is exactly the set of shards whose range
    /// the prefix's address interval intersects, and it always
    /// includes the owner of both interval ends.
    #[test]
    fn fanout_matches_range_intersection(t in arb_table(), n in 1usize..9) {
        prop_assume!(!t.is_empty());
        let map = ShardMap::derive(&t, specs(n)).unwrap();
        for r in t.iter() {
            let fan = map.shards_for_prefix(r.prefix);
            for i in 0..n {
                let range = map.shard_range(i);
                let intersects =
                    r.prefix.low() <= *range.end() && r.prefix.high() >= *range.start();
                prop_assert_eq!(
                    fan.contains(&i),
                    intersects,
                    "{} vs shard {}", r.prefix, i
                );
            }
        }
    }
}

/// Deterministic fan-out edge geometry. The property above shows
/// fan-out equals range intersection on derived maps; these pin the
/// named corner cases against hand-built cut layouts.
mod fanout_edges {
    use super::*;

    #[test]
    fn prefix_straddling_a_cut_fans_to_both_sides() {
        // Cuts deliberately unaligned to prefix boundaries so a /16
        // can span one: [0, 0xFFFF] crosses the cut at 0x1000.
        let map = ShardMap::from_cuts(vec![0x1000, 0x2000_0000], specs(3)).unwrap();
        assert_eq!(map.shards_for_prefix(Prefix::new(0, 16)), 0..=1);
        // A /2 spanning both cuts reaches all three shards.
        assert_eq!(map.shards_for_prefix(Prefix::new(0, 2)), 0..=2);
        // One address below the cut stays on the low side; the cut
        // address itself belongs to the high side.
        assert_eq!(map.shards_for_prefix(Prefix::new(0x0FFF, 32)), 0..=0);
        assert_eq!(map.shards_for_prefix(Prefix::new(0x1000, 32)), 1..=1);
    }

    #[test]
    fn cut_aligned_prefix_stays_on_one_shard() {
        let cuts = vec![0x4000_0000, 0x8000_0000, 0xC000_0000];
        let map = ShardMap::from_cuts(cuts, specs(4)).unwrap();
        for (i, bits) in [0u32, 0x4000_0000, 0x8000_0000, 0xC000_0000]
            .into_iter()
            .enumerate()
        {
            // Each /2 is exactly one shard's interval: no spurious
            // fan-out to a neighbour sharing only an endpoint.
            assert_eq!(map.shards_for_prefix(Prefix::new(bits, 2)), i..=i);
        }
        // The enclosing /1 fans to exactly the two shards it tiles.
        assert_eq!(map.shards_for_prefix(Prefix::new(0, 1)), 0..=1);
        assert_eq!(map.shards_for_prefix(Prefix::new(0x8000_0000, 1)), 2..=3);
    }

    #[test]
    fn default_route_fans_to_all_shards() {
        for n in 1..=8 {
            let cuts: Vec<u32> = (1..n as u32).map(|i| i << 28).collect();
            let map = ShardMap::from_cuts(cuts, specs(n)).unwrap();
            assert_eq!(map.shards_for_prefix(Prefix::root()), 0..=n - 1);
        }
    }

    #[test]
    fn single_shard_map_owns_everything() {
        let map = ShardMap::from_cuts(vec![], specs(1)).unwrap();
        assert_eq!(map.shard_range(0), 0..=u32::MAX);
        for prefix in [
            Prefix::root(),
            Prefix::new(0, 32),
            Prefix::new(u32::MAX, 32),
            Prefix::new(0x8000_0000, 1),
        ] {
            assert_eq!(map.shards_for_prefix(prefix), 0..=0);
        }
        // And the filtered table for the lone shard is the whole table.
        let mut t = RouteTable::new();
        t.insert(Prefix::new(0x0A00_0000, 8), NextHop(1));
        t.insert(Prefix::root(), NextHop(2));
        assert_eq!(map.filter_table(&t, 0).len(), t.len());
    }
}
