//! The whole cluster end to end: a proxy fanning a real client's
//! lookups and updates across sharded primaries, each with a warm
//! standby, surviving a primary death mid-burst with zero lost acks
//! and a final state bit-identical to the flat single-node oracle.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use clue_cluster::{
    Primary, PrimaryConfig, Proxy, ProxyConfig, ReplConfig, ShardMap, ShardSpec, Standby,
    StandbyConfig,
};
use clue_fib::gen::FibGen;
use clue_fib::{RouteTable, Update};
use clue_net::{ClientConfig, Connection, Transport};
use clue_store::StoreConfig;
use clue_traffic::UpdateGen;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clue-e2e-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn oracle(fib: &RouteTable, trace: &[Update]) -> RouteTable {
    let mut t = fib.clone();
    for &u in trace {
        t.apply(u);
    }
    t
}

struct Cluster {
    dirs: Vec<PathBuf>,
    primaries: Vec<Option<Primary>>,
    standbys: Vec<Standby>,
    proxy: Proxy,
    map: ShardMap,
}

/// Boots `n` shard primaries (each seeded with its own slice of `fib`),
/// one standby per shard, and a proxy over the lot.
fn boot(name: &str, fib: &RouteTable, n: usize, transport: Transport) -> Cluster {
    // Derive cuts against placeholder endpoints first: the real ones
    // only exist once the servers are up.
    let placeholder = ShardMap::derive(fib, vec![ShardSpec::primary_only("x:0"); n]).unwrap();

    let pcfg = PrimaryConfig {
        store: StoreConfig {
            fsync: false,
            snapshot_every: 16,
            ..StoreConfig::default()
        },
        repl: ReplConfig {
            idle_poll: Duration::from_millis(10),
            ..ReplConfig::default()
        },
        sync_timeout: Duration::from_secs(5),
        ..PrimaryConfig::default()
    };
    let mut dirs = Vec::new();
    let mut primaries = Vec::new();
    let mut standbys = Vec::new();
    let mut specs = Vec::new();
    for i in 0..n {
        let dir = temp_dir(&format!("{name}-{i}"));
        let shard_fib = placeholder.filter_table(fib, i);
        let primary = Primary::start(&dir, Some(&shard_fib), &pcfg).unwrap();
        let standby = Standby::start(StandbyConfig {
            primary_repl: primary.repl_addr().to_string(),
            idle_poll: Duration::from_millis(5),
            reconnect_backoff: Duration::from_millis(20),
            ..StandbyConfig::default()
        })
        .unwrap();
        specs.push(ShardSpec::with_standby(
            primary.local_addr().to_string(),
            standby.local_addr().to_string(),
        ));
        dirs.push(dir);
        primaries.push(Some(primary));
        standbys.push(standby);
    }
    let map = ShardMap::from_cuts(placeholder.cuts().to_vec(), specs).unwrap();

    // Wait for every standby to enter its primary's synchronous set so
    // acks mean replicated from the first update on.
    let deadline = Instant::now() + Duration::from_secs(10);
    for p in primaries.iter().flatten() {
        while p.repl_stats().synced != 1 {
            assert!(Instant::now() < deadline, "standbys never synced");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let mut proxy_cfg = ProxyConfig::new(map.clone());
    proxy_cfg.heartbeat_every = Duration::from_millis(50);
    proxy_cfg.transport = transport;
    let proxy = Proxy::start(proxy_cfg).unwrap();
    Cluster {
        dirs,
        primaries,
        standbys,
        proxy,
        map,
    }
}

fn probe_addrs(fib: &RouteTable, extra_seed: u64) -> Vec<u32> {
    let mut addrs: Vec<u32> = fib.iter().take(200).map(|r| r.prefix.low()).collect();
    // A few deterministic wildcards for miss coverage.
    let mut x = extra_seed;
    for _ in 0..64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        addrs.push((x >> 32) as u32);
    }
    addrs
}

/// Lookups through the proxy agree address-for-address with a local LPM
/// over the expected table.
fn assert_lookups_match(conn: &mut Connection, expect: &RouteTable, addrs: &[u32], ctx: &str) {
    let trie = expect.to_trie();
    for chunk in addrs.chunks(64) {
        let got = conn.lookup(chunk).unwrap();
        for (&addr, answer) in chunk.iter().zip(got) {
            let want = trie.lookup(addr).map(|(_, &nh)| nh);
            assert_eq!(answer, want, "{ctx}: addr {addr:#x}");
        }
    }
}

#[test]
fn sharded_cluster_matches_flat_router() {
    sharded_cluster_matches_flat_router_on(Transport::Threads);
}

#[test]
fn sharded_cluster_matches_flat_router_evloop() {
    sharded_cluster_matches_flat_router_on(Transport::Evloop);
}

fn sharded_cluster_matches_flat_router_on(transport: Transport) {
    let fib = FibGen::new(71).routes(600).generate();
    let trace = UpdateGen::new(72).generate(&fib, 500);
    let mut cluster = boot(&format!("flat-{transport}"), &fib, 3, transport);

    let mut conn = Connection::connect(ClientConfig::to_addr(
        cluster.proxy.local_addr().to_string(),
    ))
    .unwrap();
    let addrs = probe_addrs(&fib, 7);
    assert_lookups_match(&mut conn, &fib, &addrs, "pre-update");

    for chunk in trace.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();
    let expect = oracle(&fib, &trace);
    assert_lookups_match(&mut conn, &expect, &addrs, "post-update");

    let report = conn.close().unwrap();
    assert_eq!(report.accepted, trace.len() as u64);
    assert_eq!(report.dropped, 0);
    assert_eq!(cluster.proxy.failovers(), 0);

    // Every shard's standby mirrors exactly the filtered slice of the
    // oracle table — the bit-identical convergence the oracle's
    // cluster phase also asserts.
    for (i, standby) in cluster.standbys.iter().enumerate() {
        assert_eq!(
            standby.replica_state().table,
            cluster.map.filter_table(&expect, i),
            "shard {i} standby diverged"
        );
    }

    for p in cluster.primaries.iter_mut().filter_map(Option::take) {
        p.stop().unwrap();
    }
    for d in &cluster.dirs {
        let _ = fs::remove_dir_all(d);
    }
}

#[test]
fn killing_a_primary_mid_burst_loses_no_acks() {
    killing_a_primary_mid_burst_loses_no_acks_on(Transport::Threads);
}

#[test]
fn killing_a_primary_mid_burst_loses_no_acks_evloop() {
    killing_a_primary_mid_burst_loses_no_acks_on(Transport::Evloop);
}

fn killing_a_primary_mid_burst_loses_no_acks_on(transport: Transport) {
    let fib = FibGen::new(91).routes(600).generate();
    let trace = UpdateGen::new(92).generate(&fib, 600);
    let (first, second) = trace.split_at(trace.len() / 2);
    let mut cluster = boot(&format!("kill-{transport}"), &fib, 2, transport);

    let mut conn = Connection::connect(ClientConfig::to_addr(
        cluster.proxy.local_addr().to_string(),
    ))
    .unwrap();
    for chunk in first.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();

    // Kill shard 0's primary ungracefully (drop without drain happens
    // via stop(); either way it stops answering heartbeats and the
    // standby must take over).
    drop(cluster.primaries[0].take());

    for chunk in second.chunks(32) {
        conn.send_updates(chunk).unwrap();
    }
    conn.flush_acks().unwrap();

    let expect = oracle(&fib, &trace);
    let addrs = probe_addrs(&fib, 9);
    assert_lookups_match(&mut conn, &expect, &addrs, "post-failover");

    let report = conn.close().unwrap();
    assert_eq!(report.accepted, trace.len() as u64, "lost acks");
    assert_eq!(report.dropped, 0);
    assert_eq!(cluster.proxy.failovers(), 1);
    assert!(cluster.standbys[0].is_promoted());

    for p in cluster.primaries.iter_mut().filter_map(Option::take) {
        p.stop().unwrap();
    }
    for d in &cluster.dirs {
        let _ = fs::remove_dir_all(d);
    }
}
