//! clue-cluster: a sharded CLUE router with WAL-shipping replication
//! and failover.
//!
//! The cluster runs N independent `clue` shard servers as one logical
//! router:
//!
//! | Module | Role |
//! |---|---|
//! | [`shardmap`] | Versioned address-space partition: ONRTC-derived cuts mapping every /32 to exactly one owning shard, plus per-shard endpoints. |
//! | [`primary`] | Boots one shard primary: store + replication endpoint + serving frontend, acks gated on journal *and* standby apply. |
//! | [`repl`] | The replication plane: snapshot + WAL-record shipping from a primary's store to followers, with seq/ack resume. |
//! | [`standby`] | A warm follower: applies the shipped stream into an in-memory table and promotes into a full server on demand. |
//! | [`proxy`] | The client-facing fan-out tier: routes lookups to owning shards, fans updates out by range intersection, and fails over to standbys. |
//! | [`rpc`] | One-shot raw frame exchanges (heartbeats, promotion). |
//!
//! ## Correctness sketch
//!
//! The shard map's cuts come from the same
//! [`EvenRangePartition`](clue_partition::EvenRangePartition) the
//! single-node router uses across chips, so each shard owns a
//! contiguous `u32` interval. Updates replicate to every shard whose
//! interval the prefix's address range intersects; therefore each
//! shard's table is exactly `filter(full_table, own_range)`, and
//! longest-prefix match over that filtered slice agrees with LPM over
//! the full table for every owned address (any prefix matching an
//! owned address intersects the owned range). Lookups route to the
//! single owning shard, so the cluster answers bit-identically to a
//! flat single-node router.
//!
//! End-to-end exactly-once holds hop by hop: clients keep their
//! seq/ack resume discipline against the proxy, the proxy keeps it
//! against each shard, and a shard ack means the batch is journaled
//! and applied on every live standby — so a promotion never loses an
//! acknowledged update.

#![warn(missing_docs)]

mod evproxy;
pub mod primary;
pub mod proxy;
pub mod repl;
pub mod rpc;
pub mod shardmap;
pub mod standby;

pub use primary::{Primary, PrimaryConfig};
pub use proxy::{Proxy, ProxyConfig};
pub use repl::{
    ReplConfig, ReplStats, ReplicatedStore, ReplicationHub, ReplicationListener, FOLLOWER_EMPTY,
};
pub use shardmap::{ShardMap, ShardSpec};
pub use standby::{ReplicaState, Standby, StandbyConfig, StandbyOutcome};
