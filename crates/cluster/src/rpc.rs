//! One-shot raw frame exchanges over a fresh TCP connection.
//!
//! The proxy's health monitor and the promotion path talk to standby
//! frontends with single request/reply frames — no `Hello` handshake,
//! no session state — so they use a throwaway socket per call instead
//! of the full [`clue_net::client::Connection`] machinery.

use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use clue_net::frame::{Frame, FrameType};

/// Dials `addr`, sends `frame`, and returns the single reply frame.
///
/// An `Error` reply is surfaced as `ErrorKind::Other` carrying the
/// peer's message.
///
/// # Errors
///
/// Connect/read/write failures within the given timeouts, a protocol
/// violation, or an `Error` reply.
pub fn call(
    addr: &str,
    frame: &Frame,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> io::Result<Frame> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, format!("no address for {addr}")))?;
    let stream = TcpStream::connect_timeout(&target, connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    frame.write_to(&mut &stream)?;
    let reply = Frame::read_from(&mut &stream)?;
    if reply.kind == FrameType::Error {
        return Err(io::Error::other(format!(
            "{addr}: {}",
            String::from_utf8_lossy(&reply.payload)
        )));
    }
    Ok(reply)
}

/// [`call`] that additionally checks the reply's frame type.
///
/// # Errors
///
/// Everything [`call`] fails on, plus `InvalidData` when the reply is
/// not of kind `want`.
pub fn call_expect(
    addr: &str,
    frame: &Frame,
    want: FrameType,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> io::Result<Frame> {
    let reply = call(addr, frame, connect_timeout, io_timeout)?;
    if reply.kind != want {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("{addr}: expected {want:?}, got {:?}", reply.kind),
        ));
    }
    Ok(reply)
}
