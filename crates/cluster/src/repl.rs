//! WAL-shipping replication, primary side.
//!
//! A [`ReplicationHub`] holds the primary's streamable state: the raw
//! bytes of the newest snapshot plus every encoded journal record
//! after it. [`ReplicatedStore`] wraps the durable [`Store`] as the
//! router's [`UpdateJournal`]: each append is journaled locally,
//! published to the hub, and then held until every *caught-up*
//! follower acknowledges it (or times out and is dropped from the
//! synchronous set). Because the server frontend already holds client
//! acks until `wait_journaled`, this extends the ack chain end-to-end:
//!
//! > client ack ⇒ journaled on the primary ⇒ applied on every live
//! > standby.
//!
//! That is the whole failover story — an acknowledged update can never
//! be lost by promoting a standby, and an unacknowledged one is
//! retransmitted by the client's seq/ack resume machinery against the
//! promoted node.
//!
//! A follower that dies or stalls past the sync timeout is *demoted
//! out of the synchronous set*, not allowed to halt the update plane:
//! the dead party is the redundancy, so degrading to unreplicated
//! beats refusing writes. When it reconnects it is caught back up
//! (snapshot + tail) before re-entering the set.
//!
//! The [`ReplicationListener`] serves followers on a dedicated port:
//! `ReplicaHello(applied_jseq)` → `HelloAck(resume_from)` → optional
//! `SnapshotChunk` stream → `WalShip`/`UpdateAck` in lockstep. Records
//! at or below the follower's applied position are never re-shipped,
//! so a rejoining standby sees each acknowledged batch exactly once.

use std::collections::VecDeque;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use clue_net::frame::{Frame, FrameType, MAX_PAYLOAD};
use clue_net::wire;
use clue_router::{CheckpointView, JournalBatch, UpdateJournal};
use clue_store::{encode_record, Store, StreamBase, WalRecord};

/// `ReplicaHello` payload meaning "I have no state, ship a snapshot".
pub const FOLLOWER_EMPTY: u64 = u64::MAX;

/// Snapshot transfer chunk size.
const CHUNK_BYTES: usize = 1 << 20;

/// One encoded journal record as shipped to followers.
#[derive(Clone)]
struct ShippedRecord {
    jseq: u64,
    bytes: Arc<Vec<u8>>,
}

struct FollowerSlot {
    id: u64,
    tx: Sender<ShippedRecord>,
    acked: Arc<AtomicU64>,
    caught_up: Arc<AtomicBool>,
    alive: Arc<AtomicBool>,
}

struct HubInner {
    base_jseq: u64,
    base_snapshot: Arc<Vec<u8>>,
    tail: VecDeque<ShippedRecord>,
    followers: Vec<FollowerSlot>,
    next_id: u64,
}

/// Counters a primary exposes about its replication stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplStats {
    /// Followers currently attached (catching up or synced).
    pub followers: usize,
    /// Followers in the synchronous set (caught up and alive).
    pub synced: usize,
    /// Journal position of the streamable base snapshot.
    pub base_jseq: u64,
    /// Records held after the base.
    pub tail_len: usize,
}

/// The primary's streamable state plus the follower registry.
pub struct ReplicationHub {
    inner: Mutex<HubInner>,
    progress: Condvar,
}

/// What [`ReplicationHub::attach`] hands a follower-serving thread.
struct FollowerSession {
    id: u64,
    /// Snapshot to ship first, with its jseq (None = follower is
    /// already at or past the base).
    snapshot: Option<(u64, Arc<Vec<u8>>)>,
    /// Records after `resume_from`, in jseq order.
    backlog: Vec<ShippedRecord>,
    /// The stream resumes after this journal position.
    resume_from: u64,
    rx: Receiver<ShippedRecord>,
    acked: Arc<AtomicU64>,
    caught_up: Arc<AtomicBool>,
    alive: Arc<AtomicBool>,
}

impl ReplicationHub {
    /// A hub seeded from the store's current streamable state.
    #[must_use]
    pub fn new(base: StreamBase) -> ReplicationHub {
        let tail = base
            .tail
            .iter()
            .map(|rec| ShippedRecord {
                jseq: rec.jseq,
                bytes: Arc::new(encode_record(rec)),
            })
            .collect();
        ReplicationHub {
            inner: Mutex::new(HubInner {
                base_jseq: base.jseq,
                base_snapshot: Arc::new(base.snapshot),
                tail,
                followers: Vec::new(),
                next_id: 1,
            }),
            progress: Condvar::new(),
        }
    }

    /// Current replication counters.
    #[must_use]
    pub fn stats(&self) -> ReplStats {
        let inner = self.inner.lock().expect("hub lock");
        ReplStats {
            followers: inner.followers.len(),
            synced: inner
                .followers
                .iter()
                .filter(|f| f.alive.load(Ordering::Acquire) && f.caught_up.load(Ordering::Acquire))
                .count(),
            base_jseq: inner.base_jseq,
            tail_len: inner.tail.len(),
        }
    }

    /// Publishes a freshly journaled record to the tail and every
    /// attached follower.
    fn publish(&self, jseq: u64, bytes: Vec<u8>) {
        let rec = ShippedRecord {
            jseq,
            bytes: Arc::new(bytes),
        };
        let mut inner = self.inner.lock().expect("hub lock");
        inner.tail.push_back(rec.clone());
        for f in &inner.followers {
            if f.alive.load(Ordering::Acquire) && f.tx.send(rec.clone()).is_err() {
                f.alive.store(false, Ordering::Release);
            }
        }
    }

    /// Blocks until every follower in the synchronous set has applied
    /// `jseq`, dropping laggards from the set at the deadline. Returns
    /// whether the whole set acknowledged in time.
    fn wait_replicated(&self, jseq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("hub lock");
        loop {
            let lagging = |f: &FollowerSlot| {
                f.alive.load(Ordering::Acquire)
                    && f.caught_up.load(Ordering::Acquire)
                    && f.acked.load(Ordering::Acquire) < jseq
            };
            if !inner.followers.iter().any(&lagging) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                // Demote, don't halt: the laggard is the redundancy.
                for f in &inner.followers {
                    if lagging(f) {
                        f.alive.store(false, Ordering::Release);
                    }
                }
                return false;
            }
            let (guard, _) = self
                .progress
                .wait_timeout(inner, deadline - now)
                .expect("hub lock");
            inner = guard;
        }
    }

    /// Replaces the streamable base after a checkpoint; the tail it
    /// supersedes is dropped.
    fn set_base(&self, jseq: u64, snapshot: Vec<u8>) {
        let mut inner = self.inner.lock().expect("hub lock");
        inner.base_jseq = jseq;
        inner.base_snapshot = Arc::new(snapshot);
        inner.tail.retain(|r| r.jseq > jseq);
    }

    /// Registers a follower whose applied position is `applied_jseq`
    /// ([`FOLLOWER_EMPTY`] = no state) and atomically computes the
    /// catch-up plan: records published after this call arrive on the
    /// session's channel, so snapshot + backlog + live stream covers
    /// every record exactly once.
    fn attach(&self, applied_jseq: u64) -> FollowerSession {
        let (tx, rx) = channel();
        let mut inner = self.inner.lock().expect("hub lock");
        let need_snapshot = applied_jseq == FOLLOWER_EMPTY || applied_jseq < inner.base_jseq;
        let resume_from = if need_snapshot {
            inner.base_jseq
        } else {
            applied_jseq
        };
        let snapshot = need_snapshot.then(|| (inner.base_jseq, Arc::clone(&inner.base_snapshot)));
        let backlog: Vec<ShippedRecord> = inner
            .tail
            .iter()
            .filter(|r| r.jseq > resume_from)
            .cloned()
            .collect();
        let id = inner.next_id;
        inner.next_id += 1;
        let acked = Arc::new(AtomicU64::new(resume_from));
        let caught_up = Arc::new(AtomicBool::new(false));
        let alive = Arc::new(AtomicBool::new(true));
        inner.followers.push(FollowerSlot {
            id,
            tx,
            acked: Arc::clone(&acked),
            caught_up: Arc::clone(&caught_up),
            alive: Arc::clone(&alive),
        });
        FollowerSession {
            id,
            snapshot,
            backlog,
            resume_from,
            rx,
            acked,
            caught_up,
            alive,
        }
    }

    fn detach(&self, id: u64) {
        let mut inner = self.inner.lock().expect("hub lock");
        inner.followers.retain(|f| f.id != id);
        drop(inner);
        self.note_progress();
    }

    /// Wakes [`wait_replicated`] after a follower records an ack (or
    /// leaves the set).
    fn note_progress(&self) {
        let _guard = self.inner.lock().expect("hub lock");
        self.progress.notify_all();
    }
}

/// The [`Store`] wrapped for synchronous WAL shipping: append locally,
/// publish to the hub, wait for the synchronous follower set.
pub struct ReplicatedStore {
    store: Store,
    hub: Arc<ReplicationHub>,
    sync_timeout: Duration,
}

impl ReplicatedStore {
    /// Wraps `store`. `sync_timeout` bounds how long an append waits
    /// for follower acks before demoting laggards; keep it below the
    /// serving frontend's I/O timeout so a dead standby degrades the
    /// shard instead of stalling client acks past their deadline.
    #[must_use]
    pub fn new(store: Store, hub: Arc<ReplicationHub>, sync_timeout: Duration) -> ReplicatedStore {
        ReplicatedStore {
            store,
            hub,
            sync_timeout,
        }
    }
}

impl UpdateJournal for ReplicatedStore {
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()> {
        let jseq = self.store.next_jseq();
        self.store.append(batch)?;
        let rec = WalRecord {
            jseq,
            epoch: batch.epoch,
            seq_hw: batch.seq_hw,
            raw: batch.raw,
            ops: batch.ops.to_vec(),
        };
        self.hub.publish(jseq, encode_record(&rec));
        self.hub.wait_replicated(jseq, self.sync_timeout);
        Ok(())
    }

    fn wants_checkpoint(&self) -> bool {
        self.store.wants_checkpoint()
    }

    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        self.store.checkpoint(view)?;
        let base = self.store.stream_base()?;
        self.hub.set_base(base.jseq, base.snapshot);
        Ok(())
    }
}

/// Tunables for the primary's replication listener.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Listen address for followers (e.g. `127.0.0.1:0`).
    pub listen: String,
    /// Accept-loop and live-stream poll interval.
    pub idle_poll: Duration,
    /// Per-socket read/write timeout (bounds a stalled follower).
    pub io_timeout: Duration,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            listen: "127.0.0.1:0".into(),
            idle_poll: Duration::from_millis(50),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// The primary-side replication endpoint: accepts followers and
/// streams them the hub's snapshot/backlog/live records.
pub struct ReplicationListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ReplicationListener {
    /// Binds and starts serving followers.
    ///
    /// # Errors
    ///
    /// Bind/configuration failures.
    pub fn start(cfg: ReplConfig, hub: Arc<ReplicationHub>) -> io::Result<ReplicationListener> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || accept_loop(&listener, &cfg, &hub, &shutdown))
        };
        Ok(ReplicationListener {
            local_addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound follower-facing address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and disconnects every follower.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicationListener {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    cfg: &ReplConfig,
    hub: &Arc<ReplicationHub>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cfg = cfg.clone();
                let hub = Arc::clone(hub);
                let shutdown = Arc::clone(shutdown);
                workers.push(thread::spawn(move || {
                    let _ = serve_follower(&stream, &cfg, &hub, &shutdown);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(cfg.idle_poll),
            Err(_) => thread::sleep(cfg.idle_poll),
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

fn serve_follower(
    stream: &TcpStream,
    cfg: &ReplConfig,
    hub: &Arc<ReplicationHub>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;

    let hello = Frame::read_from(&mut &*stream)?;
    if hello.kind != FrameType::ReplicaHello {
        let msg = format!("expected ReplicaHello, got {:?}", hello.kind);
        Frame {
            kind: FrameType::Error,
            seq: hello.seq,
            payload: msg.clone().into_bytes(),
        }
        .write_to(&mut &*stream)?;
        return Err(io::Error::new(ErrorKind::InvalidData, msg));
    }
    let applied = wire::decode_u64(&hello.payload)?;

    let session = hub.attach(applied);
    let result = stream_to_follower(stream, cfg, hub, shutdown, &session);
    session.alive.store(false, Ordering::Release);
    hub.detach(session.id);
    result
}

fn stream_to_follower(
    stream: &TcpStream,
    cfg: &ReplConfig,
    hub: &Arc<ReplicationHub>,
    shutdown: &Arc<AtomicBool>,
    session: &FollowerSession,
) -> io::Result<()> {
    Frame {
        kind: FrameType::HelloAck,
        seq: 0,
        payload: wire::encode_u64(session.resume_from),
    }
    .write_to(&mut &*stream)?;

    if let Some((_base_jseq, snapshot)) = &session.snapshot {
        let chunks: Vec<&[u8]> = if snapshot.is_empty() {
            vec![&[]]
        } else {
            snapshot.chunks(CHUNK_BYTES).collect()
        };
        let last = chunks.len() - 1;
        for (i, chunk) in chunks.into_iter().enumerate() {
            debug_assert!(chunk.len() < MAX_PAYLOAD as usize);
            Frame {
                kind: FrameType::SnapshotChunk,
                seq: i as u64,
                payload: wire::encode_chunk(i == last, chunk),
            }
            .write_to(&mut &*stream)?;
        }
    }

    for rec in &session.backlog {
        ship_record(stream, session, hub, rec)?;
    }
    session.caught_up.store(true, Ordering::Release);
    hub.note_progress();

    loop {
        if shutdown.load(Ordering::Acquire) {
            Frame::empty(FrameType::Shutdown, 0).write_to(&mut &*stream)?;
            return Ok(());
        }
        match session.rx.recv_timeout(cfg.idle_poll) {
            Ok(rec) => {
                // The live channel only carries records published after
                // attach, but guard anyway: never re-ship an applied one.
                if rec.jseq > session.acked.load(Ordering::Acquire) {
                    ship_record(stream, session, hub, &rec)?;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

fn ship_record(
    stream: &TcpStream,
    session: &FollowerSession,
    hub: &Arc<ReplicationHub>,
    rec: &ShippedRecord,
) -> io::Result<()> {
    Frame {
        kind: FrameType::WalShip,
        seq: rec.jseq,
        payload: rec.bytes.as_ref().clone(),
    }
    .write_to(&mut &*stream)?;
    let ack = Frame::read_from(&mut &*stream)?;
    if ack.kind != FrameType::UpdateAck || ack.seq != rec.jseq {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "follower acked {:?}/{} for jseq {}",
                ack.kind, ack.seq, rec.jseq
            ),
        ));
    }
    session.acked.store(rec.jseq, Ordering::Release);
    hub.note_progress();
    Ok(())
}
