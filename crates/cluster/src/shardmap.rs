//! The versioned shard map: how one logical router carves the 32-bit
//! address space across N shard processes.
//!
//! The cuts come straight from `clue-partition`'s exact-cover
//! even-range split of the ONRTC-compressed table, so the shard
//! function is the same `partition_point` the per-chip range index
//! uses: shard *i* owns the half-open address interval
//! `[cuts[i-1], cuts[i])` (with 0 and 2³² at the ends). Because the
//! intervals tile the space exactly, every /32 address maps to exactly
//! one shard — the property test in `tests/shardmap.rs` pins this.
//!
//! Updates route by *range intersection*: an announce or withdraw whose
//! prefix straddles a cut is replicated to every shard whose interval
//! it touches, so each shard holds every route that can match any
//! address it owns. That makes a shard's table exactly
//! [`filter_table`](ShardMap::filter_table) of the logical table, and
//! longest-prefix match over it agrees with the flat table for every
//! owned address — the invariant the oracle's cluster phase asserts
//! bit-for-bit.
//!
//! ## File/wire layout (all integers big-endian)
//!
//! ```text
//! magic    u32   0x434C_534D ("CLSM")
//! version  u32   1
//! shards   u32   n ≥ 1
//! cuts     (n−1) × u32, strictly increasing
//! per shard: primary  u16 len + UTF-8 bytes (non-empty)
//!            standby  u16 len + UTF-8 bytes (0 = none)
//! crc      u32   CRC-32 over every preceding byte
//! ```

use std::fs;
use std::io;
use std::ops::RangeInclusive;
use std::path::Path;

use clue_compress::onrtc;
use clue_core::codec::{bad_data, Cursor};
use clue_core::crc::crc32;
use clue_fib::{Prefix, RouteTable};
use clue_partition::EvenRangePartition;

/// Shard-map magic, "CLSM".
pub const MAP_MAGIC: u32 = 0x434C_534D;
/// Shard-map format version.
pub const MAP_VERSION: u32 = 1;
/// Upper bound on shard count (sanity guard for decoders).
pub const MAX_SHARDS: usize = 4096;
/// Upper bound on an address string's length.
const MAX_ADDR_LEN: usize = 256;

/// One shard's endpoints: the primary serving address and an optional
/// warm standby the proxy promotes on primary failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Address of the shard's primary `clue serve` process.
    pub primary: String,
    /// Address of the shard's standby frontend, if one is running.
    pub standby: Option<String>,
}

impl ShardSpec {
    /// A spec with no standby.
    #[must_use]
    pub fn primary_only(primary: impl Into<String>) -> ShardSpec {
        ShardSpec {
            primary: primary.into(),
            standby: None,
        }
    }

    /// A spec with a warm standby.
    #[must_use]
    pub fn with_standby(primary: impl Into<String>, standby: impl Into<String>) -> ShardSpec {
        ShardSpec {
            primary: primary.into(),
            standby: Some(standby.into()),
        }
    }
}

/// The exact-cover shard map: cut points tiling the address space plus
/// per-shard endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    cuts: Vec<u32>,
    shards: Vec<ShardSpec>,
}

impl ShardMap {
    /// Derives a map for `shards.len()` shards from a routing table:
    /// ONRTC-compress, even-range split, take the cuts.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the table is too small to give every shard a
    /// non-empty address interval (the even-range split would emit
    /// sentinel cuts for empty buckets).
    pub fn derive(table: &RouteTable, shards: Vec<ShardSpec>) -> io::Result<ShardMap> {
        if shards.is_empty() {
            return Err(bad_data("a shard map needs at least one shard".into()));
        }
        let compressed = onrtc(table);
        let cuts = EvenRangePartition::split(&compressed, shards.len())
            .index()
            .cuts()
            .to_vec();
        Self::from_cuts(cuts, shards)
    }

    /// Builds a map from explicit cut points.
    ///
    /// # Errors
    ///
    /// `InvalidData` unless `cuts.len() + 1 == shards.len()`, the cuts
    /// are strictly increasing, nonzero, and below `u32::MAX` (the
    /// even-range split's empty-bucket sentinel), and every primary
    /// address is non-empty.
    pub fn from_cuts(cuts: Vec<u32>, shards: Vec<ShardSpec>) -> io::Result<ShardMap> {
        if shards.is_empty() || shards.len() > MAX_SHARDS {
            return Err(bad_data(format!(
                "implausible shard count {}",
                shards.len()
            )));
        }
        if cuts.len() + 1 != shards.len() {
            return Err(bad_data(format!(
                "{} cuts do not tile {} shards",
                cuts.len(),
                shards.len()
            )));
        }
        for (i, w) in cuts.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(bad_data(format!("cuts not strictly increasing at {i}")));
            }
        }
        if cuts.first().is_some_and(|&c| c == 0) || cuts.last().is_some_and(|&c| c == u32::MAX) {
            return Err(bad_data(
                "cut at 0 or u32::MAX leaves a shard with an empty interval \
                 (table too small for this shard count?)"
                    .into(),
            ));
        }
        for (i, s) in shards.iter().enumerate() {
            if s.primary.is_empty() || s.primary.len() > MAX_ADDR_LEN {
                return Err(bad_data(format!("shard {i}: bad primary address")));
            }
            if s.standby
                .as_ref()
                .is_some_and(|a| a.is_empty() || a.len() > MAX_ADDR_LEN)
            {
                return Err(bad_data(format!("shard {i}: bad standby address")));
            }
        }
        Ok(ShardMap { cuts, shards })
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false — a map holds at least one shard.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The cut points (length `len() − 1`).
    #[must_use]
    pub fn cuts(&self) -> &[u32] {
        &self.cuts
    }

    /// Per-shard endpoints, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The shard owning a /32 address — the same `partition_point`
    /// rule the per-chip range index uses, so exactly one shard owns
    /// every address.
    #[must_use]
    pub fn shard_of(&self, addr: u32) -> usize {
        self.cuts.partition_point(|&c| c <= addr)
    }

    /// Shard `i`'s owned address interval, inclusive on both ends.
    ///
    /// # Panics
    ///
    /// If `i` is out of range.
    #[must_use]
    pub fn shard_range(&self, i: usize) -> RangeInclusive<u32> {
        assert!(i < self.shards.len(), "shard {i} out of range");
        let lo = if i == 0 { 0 } else { self.cuts[i - 1] };
        let hi = if i + 1 == self.shards.len() {
            u32::MAX
        } else {
            self.cuts[i] - 1
        };
        lo..=hi
    }

    /// Every shard whose interval intersects `prefix` — a contiguous
    /// run, because prefixes are intervals too. Updates fan out to all
    /// of them so each shard keeps every route that can match an
    /// address it owns.
    #[must_use]
    pub fn shards_for_prefix(&self, prefix: Prefix) -> RangeInclusive<usize> {
        self.shard_of(prefix.low())..=self.shard_of(prefix.high())
    }

    /// The slice of `table` shard `i` must hold: every route whose
    /// prefix interval intersects the shard's interval. LPM over this
    /// slice equals LPM over the full table for every owned address.
    ///
    /// # Panics
    ///
    /// If `i` is out of range.
    #[must_use]
    pub fn filter_table(&self, table: &RouteTable, i: usize) -> RouteTable {
        let range = self.shard_range(i);
        let (lo, hi) = (*range.start(), *range.end());
        table
            .iter()
            .filter(|r| r.prefix.low() <= hi && r.prefix.high() >= lo)
            .collect()
    }

    /// Encodes the map, CRC included.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAP_MAGIC.to_be_bytes());
        buf.extend_from_slice(&MAP_VERSION.to_be_bytes());
        buf.extend_from_slice(&(self.shards.len() as u32).to_be_bytes());
        for &cut in &self.cuts {
            buf.extend_from_slice(&cut.to_be_bytes());
        }
        for s in &self.shards {
            put_addr(&mut buf, &s.primary);
            put_addr(&mut buf, s.standby.as_deref().unwrap_or(""));
        }
        buf.extend_from_slice(&crc32(&buf).to_be_bytes());
        buf
    }

    /// Decodes and validates a map.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any structural, checksum, or semantic failure
    /// (the same validation [`from_cuts`](Self::from_cuts) applies).
    pub fn decode(bytes: &[u8]) -> io::Result<ShardMap> {
        if bytes.len() < 4 {
            return Err(bad_data("shard map shorter than its CRC".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc != crc32(body) {
            return Err(bad_data("shard map CRC mismatch".into()));
        }
        let mut c = Cursor::new(body);
        let magic = c.u32()?;
        if magic != MAP_MAGIC {
            return Err(bad_data(format!("bad shard map magic {magic:#010x}")));
        }
        let version = c.u32()?;
        if version != MAP_VERSION {
            return Err(bad_data(format!("unsupported shard map version {version}")));
        }
        let n = c.u32()? as usize;
        if n == 0 || n > MAX_SHARDS {
            return Err(bad_data(format!("implausible shard count {n}")));
        }
        let mut cuts = Vec::with_capacity(n - 1);
        for _ in 0..n - 1 {
            cuts.push(c.u32()?);
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let primary = get_addr(&mut c)?;
            let standby = get_addr(&mut c)?;
            shards.push(ShardSpec {
                primary,
                standby: if standby.is_empty() {
                    None
                } else {
                    Some(standby)
                },
            });
        }
        c.finish()?;
        Self::from_cuts(cuts, shards)
    }

    /// Writes the encoded map to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.encode())
    }

    /// Reads and validates a map from `path`.
    ///
    /// # Errors
    ///
    /// I/O failures plus everything [`decode`](Self::decode) rejects.
    pub fn read_file(path: &Path) -> io::Result<ShardMap> {
        Self::decode(&fs::read(path)?)
    }
}

fn put_addr(buf: &mut Vec<u8>, addr: &str) {
    buf.extend_from_slice(&(addr.len() as u16).to_be_bytes());
    buf.extend_from_slice(addr.as_bytes());
}

fn get_addr(c: &mut Cursor<'_>) -> io::Result<String> {
    let len = c.u16()? as usize;
    if len > MAX_ADDR_LEN {
        return Err(bad_data(format!(
            "address length {len} exceeds {MAX_ADDR_LEN}"
        )));
    }
    let bytes = c.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("address is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::gen::FibGen;
    use clue_fib::{NextHop, Route};

    fn map3() -> ShardMap {
        ShardMap::from_cuts(
            vec![0x4000_0000, 0xB000_0000],
            vec![
                ShardSpec::with_standby("127.0.0.1:5001", "127.0.0.1:6001"),
                ShardSpec::primary_only("127.0.0.1:5002"),
                ShardSpec::with_standby("127.0.0.1:5003", "127.0.0.1:6003"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trips_and_rejects_corruption() {
        let map = map3();
        let bytes = map.encode();
        assert_eq!(ShardMap::decode(&bytes).unwrap(), map);
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(ShardMap::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for at in 0..bytes.len() {
            let mut b = bytes.clone();
            b[at] ^= 0x20;
            assert!(ShardMap::decode(&b).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("clue-shardmap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.clsm");
        let map = map3();
        map.write_file(&path).unwrap();
        assert_eq!(ShardMap::read_file(&path).unwrap(), map);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_of_matches_ranges_at_boundaries() {
        let map = map3();
        for i in 0..map.len() {
            let range = map.shard_range(i);
            assert_eq!(map.shard_of(*range.start()), i);
            assert_eq!(map.shard_of(*range.end()), i);
        }
        assert_eq!(map.shard_of(0x3FFF_FFFF), 0);
        assert_eq!(map.shard_of(0x4000_0000), 1);
        assert_eq!(map.shard_of(u32::MAX), 2);
    }

    #[test]
    fn malformed_maps_are_rejected() {
        let specs = |n: usize| {
            (0..n)
                .map(|i| ShardSpec::primary_only(format!("h:{i}")))
                .collect()
        };
        assert!(ShardMap::from_cuts(vec![], specs(0)).is_err(), "no shards");
        assert!(ShardMap::from_cuts(vec![1], specs(3)).is_err(), "cut count");
        assert!(
            ShardMap::from_cuts(vec![5, 5], specs(3)).is_err(),
            "not increasing"
        );
        assert!(ShardMap::from_cuts(vec![0], specs(2)).is_err(), "cut at 0");
        assert!(
            ShardMap::from_cuts(vec![u32::MAX], specs(2)).is_err(),
            "sentinel cut"
        );
        let empty = vec![ShardSpec::primary_only(""), ShardSpec::primary_only("x")];
        assert!(
            ShardMap::from_cuts(vec![9], empty).is_err(),
            "empty primary"
        );
    }

    #[test]
    fn derive_uses_the_even_range_cuts() {
        let table = FibGen::new(11).routes(2_000).generate();
        let specs: Vec<ShardSpec> = (0..3)
            .map(|i| ShardSpec::primary_only(format!("h:{i}")))
            .collect();
        let map = ShardMap::derive(&table, specs).unwrap();
        assert_eq!(map.cuts().len(), 2);
        let expected = EvenRangePartition::split(&onrtc(&table), 3)
            .index()
            .cuts()
            .to_vec();
        assert_eq!(map.cuts(), &expected[..]);
    }

    #[test]
    fn filtered_lookup_agrees_with_the_flat_table() {
        let table = FibGen::new(23).routes(1_500).generate();
        let specs: Vec<ShardSpec> = (0..4)
            .map(|i| ShardSpec::primary_only(format!("h:{i}")))
            .collect();
        let map = ShardMap::derive(&table, specs).unwrap();
        let slices: Vec<RouteTable> = (0..4).map(|i| map.filter_table(&table, i)).collect();
        let lpm = |t: &RouteTable, addr: u32| {
            t.iter()
                .filter(|r| r.prefix.contains_addr(addr))
                .max_by_key(|r| r.prefix.len())
                .map(|r| r.next_hop)
        };
        let mut addrs: Vec<u32> = (0..2_000u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for cut in map.cuts() {
            addrs.extend([cut - 1, *cut, cut + 1]);
        }
        for addr in addrs {
            let shard = map.shard_of(addr);
            assert_eq!(
                lpm(&slices[shard], addr),
                lpm(&table, addr),
                "addr {addr:#x}"
            );
        }
    }

    #[test]
    fn too_small_a_table_is_a_clean_error() {
        let table: RouteTable = [Route::new(Prefix::new(0, 0), NextHop(1))]
            .into_iter()
            .collect();
        let specs: Vec<ShardSpec> = (0..4)
            .map(|i| ShardSpec::primary_only(format!("h:{i}")))
            .collect();
        assert!(ShardMap::derive(&table, specs).is_err());
    }
}
