//! The event-loop proxy transport: every client downstream multiplexed
//! onto one `clue-aio` reactor thread, with a bridge pool of worker
//! threads carrying the blocking backend fan-out.
//!
//! This is the proxy-side twin of `clue-net`'s evloop server, and the
//! semantics mapping is the same:
//!
//! * **One frame in flight per client.** The threaded proxy reads a
//!   frame, fans it out, writes the reply, then reads again.  Here a
//!   dispatched frame pauses the client socket and its completion
//!   resumes it, so a slow shard back-pressures exactly one client
//!   while the loop keeps serving the rest.
//! * **Backend connections stay per-client.** Each client connection
//!   owns its [`Backends`] set (one lazily-dialed [`Connection`] per
//!   shard), preserving the hop-by-hop seq/ack resume discipline the
//!   threaded path has.  The set travels *with* the job to the bridge
//!   worker and comes back in the completion, so no lock guards it —
//!   the one-in-flight rule is the mutual exclusion.
//! * **Cheap frames stay on the loop.** `Hello`, `Heartbeat`,
//!   `ShardMapQuery`, and `Shutdown` involve no backend I/O and are
//!   answered inline.
//! * **Graceful drain** mirrors the threaded flag check: stop
//!   listening, `Shutdown`-and-close idle clients, let in-flight
//!   fan-outs finish, stop when the last client leaves (grace-timer
//!   backstop).  Orphaned backend sets are closed on the bridge pool,
//!   never on the loop thread.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use clue_aio::{CloseReason, ConnId, Ctl, Driver, EventLoop, LoopConfig, LoopHandle};
use clue_net::frame::{Frame, FrameDecoder, FrameType};
use clue_net::wire;
use clue_net::Connection;
use crossbeam::channel::{self, Receiver, Sender};

use crate::proxy::{handle_lookup, handle_update, proxy_stats_json, Backends, ProxyConfig, Shared};

/// Periodic shutdown-flag poll.
const TICK: u64 = 1;
/// Drain-grace deadline: force-stop the loop if a fan-out wedges.
const DRAIN_GRACE: u64 = 2;

/// Messages injected into the loop from other threads.
pub(crate) enum EvMsg {
    /// A bridge worker finished the fan-out for `conn`.
    Done {
        /// The client the reply belongs to.
        conn: ConnId,
        /// The reply frame; `FrameType::Error` closes the line after
        /// the write flushes, mirroring the threaded transport.
        reply: Frame,
        /// The client's backend set, returned from the worker.
        backends: Backends,
    },
    /// Begin the graceful drain.
    Shutdown,
}

/// Work shipped to the bridge pool.
enum Job {
    /// Fan one client frame out to the shards.
    Frame {
        conn: ConnId,
        frame: Frame,
        backends: Backends,
    },
    /// Close an orphaned backend set (its client is gone). Runs on a
    /// worker because `Connection::close` performs blocking I/O.
    Close { backends: Backends },
}

/// Per-client driver state.
struct ConnState {
    decoder: FrameDecoder,
    /// A job for this client is on the bridge pool; reads are paused
    /// and no further frame is dispatched until it completes.
    in_flight: bool,
    /// `None` exactly while a job (carrying the set) is in flight.
    backends: Option<Backends>,
}

struct EvProxy {
    cfg: ProxyConfig,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    jobs: Sender<Job>,
    conns: HashMap<ConnId, ConnState>,
    draining: bool,
}

impl EvProxy {
    /// Decodes and dispatches frames until the client goes in-flight,
    /// runs dry, or dies.
    fn pump(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId) {
        loop {
            let Some(state) = self.conns.get_mut(&conn) else {
                return;
            };
            if state.in_flight {
                return;
            }
            if self.draining {
                // Stop taking new work mid-drain, even if frames are
                // already buffered — the threaded transport likewise
                // discards unread socket data once the flag is up.
                break;
            }
            match state.decoder.poll_frame() {
                Ok(None) => break,
                Err(_) => {
                    // Lost framing: the threaded proxy closes silently.
                    ctl.close(conn);
                    return;
                }
                Ok(Some(frame)) => match frame.kind {
                    FrameType::Hello => {
                        let reply = Frame {
                            kind: FrameType::HelloAck,
                            seq: frame.seq,
                            payload: wire::encode_u64(
                                self.shared.last_acked.load(Ordering::SeqCst),
                            ),
                        };
                        ctl.send(conn, &reply.encode());
                    }
                    FrameType::Heartbeat => {
                        let reply = Frame::empty(FrameType::HeartbeatAck, frame.seq);
                        ctl.send(conn, &reply.encode());
                    }
                    FrameType::ShardMapQuery => {
                        let reply = Frame {
                            kind: FrameType::ShardMapReply,
                            seq: frame.seq,
                            payload: self.shared.map.encode(),
                        };
                        ctl.send(conn, &reply.encode());
                    }
                    FrameType::Shutdown => {
                        ctl.close(conn);
                        return;
                    }
                    FrameType::Update | FrameType::Lookup | FrameType::StatsQuery => {
                        // Backend I/O: pause reads (wire backpressure)
                        // and ship to the bridge pool with the client's
                        // backend set.
                        let state = self.conns.get_mut(&conn).expect("checked above");
                        state.in_flight = true;
                        let Some(backends) = state.backends.take() else {
                            ctl.close(conn);
                            return;
                        };
                        ctl.pause(conn);
                        if self
                            .jobs
                            .send(Job::Frame {
                                conn,
                                frame,
                                backends,
                            })
                            .is_err()
                        {
                            // Bridge pool gone — only during teardown.
                            ctl.close(conn);
                        }
                        return;
                    }
                    other => {
                        // Same wording and fatality as the threaded arm.
                        let reply = Frame {
                            kind: FrameType::Error,
                            seq: frame.seq,
                            payload: format!("proxy does not serve {other:?}").into_bytes(),
                        };
                        ctl.send(conn, &reply.encode());
                        ctl.close(conn);
                        return;
                    }
                },
            }
        }
        // Ran dry with nothing in flight.
        if self.draining {
            if self.conns.contains_key(&conn) {
                ctl.send(conn, &Frame::empty(FrameType::Shutdown, 0).encode());
                ctl.close(conn);
            }
        } else {
            ctl.resume(conn);
        }
    }

    fn begin_drain(&mut self, ctl: &mut Ctl<'_, EvMsg>) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.shutdown.store(true, Ordering::SeqCst);
        ctl.stop_listening();
        let idle: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, s)| !s.in_flight)
            .map(|(&c, _)| c)
            .collect();
        for conn in idle {
            ctl.send(conn, &Frame::empty(FrameType::Shutdown, 0).encode());
            ctl.close(conn);
        }
        if ctl.conn_count() == 0 {
            ctl.stop();
        } else {
            // Backstop: a fan-out stuck in backend retries must not
            // wedge the drain forever.
            let grace = self.cfg.io_timeout + self.cfg.io_timeout + self.cfg.idle_poll;
            ctl.set_timer(grace, DRAIN_GRACE);
        }
    }
}

impl Driver for EvProxy {
    type Msg = EvMsg;

    fn on_accept(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, _peer: SocketAddr) {
        self.conns.insert(
            conn,
            ConnState {
                decoder: FrameDecoder::new(),
                in_flight: false,
                backends: Some(Backends::new(self.shared.shards.len())),
            },
        );
        if self.draining {
            ctl.send(conn, &Frame::empty(FrameType::Shutdown, 0).encode());
            ctl.close(conn);
        }
    }

    fn on_data(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, buf: &mut Vec<u8>) {
        if let Some(state) = self.conns.get_mut(&conn) {
            state.decoder.extend(buf);
        }
        buf.clear();
        self.pump(ctl, conn);
    }

    fn on_close(&mut self, ctl: &mut Ctl<'_, EvMsg>, conn: ConnId, _reason: &CloseReason) {
        if let Some(state) = self.conns.remove(&conn) {
            if let Some(backends) = state.backends {
                let _ = self.jobs.send(Job::Close { backends });
            }
        }
        if self.draining && ctl.conn_count() == 0 {
            ctl.stop();
        }
    }

    fn on_msg(&mut self, ctl: &mut Ctl<'_, EvMsg>, msg: EvMsg) {
        match msg {
            EvMsg::Shutdown => self.begin_drain(ctl),
            EvMsg::Done {
                conn,
                reply,
                backends,
            } => {
                let Some(state) = self.conns.get_mut(&conn) else {
                    // The client died while its fan-out ran; the shard
                    // side effects stand (resume covers the reply), but
                    // its backend set must still be closed — off-loop.
                    let _ = self.jobs.send(Job::Close { backends });
                    return;
                };
                state.in_flight = false;
                state.backends = Some(backends);
                let fatal = reply.kind == FrameType::Error;
                let sent = ctl.send(conn, &reply.encode());
                if fatal || !sent {
                    ctl.close(conn);
                } else {
                    self.pump(ctl, conn);
                }
            }
        }
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_, EvMsg>, tag: u64) {
        match tag {
            TICK => {
                if self.shutdown.load(Ordering::SeqCst) {
                    self.begin_drain(ctl);
                } else {
                    ctl.set_timer(self.cfg.idle_poll, TICK);
                }
            }
            DRAIN_GRACE if self.draining => ctl.stop(),
            _ => {}
        }
    }
}

/// Fans one client frame out on a bridge worker; returns the reply.
fn process_job(
    frame: &Frame,
    cfg: &ProxyConfig,
    shared: &Shared,
    backends: &mut Backends,
) -> Frame {
    match frame.kind {
        FrameType::Update => handle_update(frame, cfg, shared, backends),
        FrameType::Lookup => handle_lookup(frame, cfg, shared, backends),
        FrameType::StatsQuery => {
            let embeds: Vec<Option<String>> = (0..shared.shards.len())
                .map(|i| backends.op(i, shared, cfg, Connection::stats_json).ok())
                .collect();
            Frame {
                kind: FrameType::StatsReply,
                seq: frame.seq,
                payload: proxy_stats_json(shared, Some(embeds)).into_bytes(),
            }
        }
        // The driver only ships the three kinds above.
        _ => Frame {
            kind: FrameType::Error,
            seq: frame.seq,
            payload: b"internal: unroutable frame on bridge pool".to_vec(),
        },
    }
}

fn bridge_worker(
    jobs: &Receiver<Job>,
    handle: &LoopHandle<EvMsg>,
    cfg: &ProxyConfig,
    shared: &Shared,
) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Close { mut backends } => backends.close_all(),
            Job::Frame {
                conn,
                frame,
                mut backends,
            } => {
                let reply = process_job(&frame, cfg, shared, &mut backends);
                if !handle.send(EvMsg::Done {
                    conn,
                    reply,
                    backends,
                }) {
                    return;
                }
            }
        }
    }
}

/// What [`start`] hands back: the loop's injection handle, the loop
/// thread itself, and the bridge workers (join the loop first).
pub(crate) type EvProxyRuntime = (LoopHandle<EvMsg>, JoinHandle<()>, Vec<JoinHandle<()>>);

/// Boots the event-loop proxy transport over an already-bound listener.
/// Join the loop first: dropping the returned driver closes the job
/// channel, which releases the workers (after they drain any pending
/// backend-close jobs).
pub(crate) fn start(
    listener: TcpListener,
    cfg: &ProxyConfig,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<EvProxyRuntime> {
    // Lift the fd soft limit like the evloop server does: each client
    // costs a downstream fd plus per-shard upstream fds.
    clue_aio::rlimit::raise_nofile(65_536);
    let (jobs_tx, jobs_rx) = channel::unbounded::<Job>();
    let driver = EvProxy {
        cfg: cfg.clone(),
        shared: Arc::clone(shared),
        shutdown: Arc::clone(shutdown),
        jobs: jobs_tx,
        conns: HashMap::new(),
        draining: false,
    };
    let mut el = EventLoop::new(driver, LoopConfig::default())?;
    el.add_listener(listener)?;
    el.set_timer(cfg.idle_poll, TICK);
    let handle = el.handle();

    let workers = (0..cfg.bridge_threads.max(1))
        .map(|_| {
            let jobs = jobs_rx.clone();
            let handle = el.handle();
            let cfg = cfg.clone();
            let shared = Arc::clone(shared);
            std::thread::spawn(move || bridge_worker(&jobs, &handle, &cfg, &shared))
        })
        .collect();

    let loop_thread = std::thread::spawn(move || {
        // An Err here is an unrecoverable poller failure. Returning
        // drops the driver, closing the job channel and releasing the
        // bridge pool.
        let _ = el.run();
    });

    Ok((handle, loop_thread, workers))
}
