//! The warm standby: a follower that mirrors a primary's journal into
//! an in-memory replica and can be promoted to a serving primary.
//!
//! Two threads per standby:
//!
//! * the **replication client** dials the primary's replication port,
//!   announces its applied journal position (`ReplicaHello`), absorbs
//!   the snapshot and/or record stream, applies each record to the
//!   replica table *before* acknowledging it (ack ⇒ applied, which is
//!   what lets the primary count an acked record as survivable), and
//!   reconnects with backoff — resuming from its applied position, so
//!   acknowledged records are never replayed twice;
//! * the **frontend** answers the proxy's control traffic on the
//!   standby's serving address: heartbeats, stats, and `Promote`.
//!
//! Promotion is the handoff: reply `PromoteAck(seq_hw)`, stop
//! replicating, drop the control listener, and boot a full
//! [`Server`]/[`RouterService`] from the replica state *on the same
//! address*, advertising the replicated sequence high-water so
//! re-routed clients resume exactly where their acks ended. The brief
//! rebind gap is covered by the clients' reconnect backoff.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use clue_fib::RouteTable;
use clue_net::frame::{Frame, FrameType};
use clue_net::wire;
use clue_net::{Server, ServerConfig};
use clue_router::{RecoveredState, RouterConfig, RouterReport, RouterService};
use clue_store::{decode_record, decode_snapshot};

use crate::repl::FOLLOWER_EMPTY;

/// Tunables for a [`Standby`].
#[derive(Debug, Clone)]
pub struct StandbyConfig {
    /// Serving/control address (the one the proxy's shard map lists as
    /// the standby and re-routes to after promotion).
    pub listen: String,
    /// The primary's replication address to follow.
    pub primary_repl: String,
    /// Router configuration used when promoted.
    pub router: RouterConfig,
    /// Poll interval for idle sockets and shutdown checks.
    pub idle_poll: Duration,
    /// Per-socket I/O timeout once a frame has started arriving.
    pub io_timeout: Duration,
    /// Backoff between replication reconnect attempts.
    pub reconnect_backoff: Duration,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            listen: "127.0.0.1:0".into(),
            primary_repl: String::new(),
            router: RouterConfig::default(),
            idle_poll: Duration::from_millis(20),
            io_timeout: Duration::from_secs(10),
            reconnect_backoff: Duration::from_millis(100),
        }
    }
}

/// The replica's mirrored state plus catch-up counters.
#[derive(Debug, Clone, Default)]
pub struct ReplicaState {
    /// The mirrored route table (empty until the first snapshot).
    pub table: RouteTable,
    /// Applied journal position (`None` until the first snapshot).
    pub applied_jseq: Option<u64>,
    /// Replicated ingress-sequence high-water.
    pub seq_hw: u64,
    /// Epoch to resume numbering after, if promoted.
    pub epoch: u64,
    /// Journal records applied.
    pub records_applied: u64,
    /// Snapshots absorbed (initial seed + any re-seeds).
    pub snapshots_loaded: u64,
    /// Records received at or below the applied position and skipped —
    /// stays 0 unless the primary violates the resume contract.
    pub skipped: u64,
    /// Replication reconnect attempts that found the primary down.
    pub reconnects: u64,
}

/// How a standby ended.
pub enum StandbyOutcome {
    /// Never promoted: the mirrored state at shutdown.
    Standby(ReplicaState),
    /// Promoted: the drained report of the serving node it became.
    Promoted(Box<RouterReport>),
}

/// A running standby (replication client + control frontend).
pub struct Standby {
    local_addr: SocketAddr,
    state: Arc<Mutex<ReplicaState>>,
    shutdown: Arc<AtomicBool>,
    promote_req: Arc<AtomicBool>,
    promoted: Arc<AtomicBool>,
    repl: Option<JoinHandle<()>>,
    frontend: Option<JoinHandle<io::Result<Option<Server>>>>,
}

impl Standby {
    /// Binds the control address and starts following the primary.
    ///
    /// # Errors
    ///
    /// Bind failures. Replication failures are retried forever in the
    /// background (the primary may simply not be up yet).
    pub fn start(cfg: StandbyConfig) -> io::Result<Standby> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(Mutex::new(ReplicaState::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let promote_req = Arc::new(AtomicBool::new(false));
        let promoted = Arc::new(AtomicBool::new(false));
        let repl_stopped = Arc::new(AtomicBool::new(false));

        let repl = {
            let cfg = cfg.clone();
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let promote_req = Arc::clone(&promote_req);
            let repl_stopped = Arc::clone(&repl_stopped);
            thread::spawn(move || {
                replication_loop(&cfg, &state, &shutdown, &promote_req);
                repl_stopped.store(true, Ordering::Release);
            })
        };
        let frontend = {
            let cfg = cfg.clone();
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let promote_req = Arc::clone(&promote_req);
            let promoted = Arc::clone(&promoted);
            thread::spawn(move || {
                frontend_loop(
                    listener,
                    local_addr,
                    &cfg,
                    &state,
                    &shutdown,
                    &promote_req,
                    &promoted,
                    &repl_stopped,
                )
            })
        };
        Ok(Standby {
            local_addr,
            state,
            shutdown,
            promote_req,
            promoted,
            repl: Some(repl),
            frontend: Some(frontend),
        })
    }

    /// The bound control/serving address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether promotion has completed.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Requests promotion as if a `Promote` frame had arrived: the
    /// replication thread stops, then the frontend reboots as a full
    /// server on the same address. In-process equivalent of the
    /// proxy's failover RPC, for tests and benches.
    pub fn request_promote(&self) {
        self.promote_req.store(true, Ordering::Release);
    }

    /// A copy of the replica's current state and counters.
    #[must_use]
    pub fn replica_state(&self) -> ReplicaState {
        self.state.lock().expect("state lock").clone()
    }

    /// Shuts the standby down and returns what it ended as. If it was
    /// promoted, the promoted server is drained (blocking until its
    /// last batch applies).
    ///
    /// # Errors
    ///
    /// Propagates drain failures of a promoted server.
    pub fn stop(mut self) -> io::Result<StandbyOutcome> {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.repl.take() {
            let _ = h.join();
        }
        let front = self
            .frontend
            .take()
            .expect("frontend joined once")
            .join()
            .map_err(|_| io::Error::other("standby frontend panicked"))??;
        match front {
            Some(server) => Ok(StandbyOutcome::Promoted(Box::new(server.drain()?))),
            None => Ok(StandbyOutcome::Standby(
                self.state.lock().expect("state lock").clone(),
            )),
        }
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.repl.take() {
            let _ = h.join();
        }
        if let Some(h) = self.frontend.take() {
            let _ = h.join();
        }
    }
}

/// The standby's stats JSON (stable key order, one line).
fn stats_json(state: &ReplicaState, primary_repl: &str, promoted: bool) -> String {
    format!(
        concat!(
            "{{\"role\":\"{}\",\"primary_repl\":\"{}\",\"applied_jseq\":{},",
            "\"seq_hw\":{},\"epoch\":{},\"routes\":{},\"records_applied\":{},",
            "\"snapshots_loaded\":{},\"skipped\":{},\"reconnects\":{}}}"
        ),
        if promoted { "promoted" } else { "standby" },
        primary_repl,
        state.applied_jseq.map_or(-1i64, |j| j as i64),
        state.seq_hw,
        state.epoch,
        state.table.len(),
        state.records_applied,
        state.snapshots_loaded,
        state.skipped,
        state.reconnects,
    )
}

// ---------------------------------------------------------------- frontend

#[allow(clippy::too_many_arguments)]
fn frontend_loop(
    listener: TcpListener,
    local_addr: SocketAddr,
    cfg: &StandbyConfig,
    state: &Arc<Mutex<ReplicaState>>,
    shutdown: &Arc<AtomicBool>,
    promote_req: &Arc<AtomicBool>,
    promoted: &Arc<AtomicBool>,
    repl_stopped: &Arc<AtomicBool>,
) -> io::Result<Option<Server>> {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            for w in workers {
                let _ = w.join();
            }
            return Ok(None);
        }
        if promote_req.load(Ordering::Acquire) {
            // Let the replication thread finish its in-flight record:
            // anything it acked must be in the state we serve from.
            let deadline = Instant::now() + cfg.io_timeout;
            while !repl_stopped.load(Ordering::Acquire) && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(1));
            }
            drop(listener);
            for w in workers {
                let _ = w.join();
            }
            let recovered = {
                let s = state.lock().expect("state lock");
                RecoveredState {
                    table: s.table.clone(),
                    epoch: s.epoch,
                    seq_hw: s.seq_hw,
                    dreds: Vec::new(),
                }
            };
            let svc = RouterService::start_recovered(&recovered, &cfg.router, None);
            let scfg = ServerConfig {
                listen: local_addr.to_string(),
                router: cfg.router,
                idle_poll: cfg.idle_poll,
                io_timeout: cfg.io_timeout,
                ..ServerConfig::default()
            };
            let server = Server::start_with_service(svc, recovered.seq_hw, &scfg)?;
            promoted.store(true, Ordering::Release);
            return Ok(Some(server));
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cfg = cfg.clone();
                let state = Arc::clone(state);
                let shutdown = Arc::clone(shutdown);
                let promote_req = Arc::clone(promote_req);
                workers.push(thread::spawn(move || {
                    let _ = serve_control(&stream, &cfg, &state, &shutdown, &promote_req);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(cfg.idle_poll),
            Err(_) => thread::sleep(cfg.idle_poll),
        }
        workers.retain(|w| !w.is_finished());
    }
}

/// Serves one control connection: heartbeats, stats, `Hello` (so the
/// stock client/`clue stats` can talk to a standby), and `Promote`.
fn serve_control(
    stream: &TcpStream,
    cfg: &StandbyConfig,
    state: &Arc<Mutex<ReplicaState>>,
    shutdown: &Arc<AtomicBool>,
    promote_req: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        if shutdown.load(Ordering::Acquire) || promote_req.load(Ordering::Acquire) {
            return Ok(());
        }
        stream.set_read_timeout(Some(cfg.idle_poll))?;
        let mut lead = [0u8; 1];
        match (&mut &*stream).read(&mut lead) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(e),
        }
        stream.set_read_timeout(Some(cfg.io_timeout))?;
        let frame = Frame::read_after_lead(lead[0], &mut &*stream)?;
        match frame.kind {
            FrameType::Hello => {
                let seq_hw = state.lock().expect("state lock").seq_hw;
                Frame {
                    kind: FrameType::HelloAck,
                    seq: frame.seq,
                    payload: wire::encode_u64(seq_hw),
                }
                .write_to(&mut &*stream)?;
            }
            FrameType::Heartbeat => {
                Frame::empty(FrameType::HeartbeatAck, frame.seq).write_to(&mut &*stream)?;
            }
            FrameType::StatsQuery => {
                let json = {
                    let s = state.lock().expect("state lock");
                    stats_json(&s, &cfg.primary_repl, false)
                };
                Frame {
                    kind: FrameType::StatsReply,
                    seq: frame.seq,
                    payload: json.into_bytes(),
                }
                .write_to(&mut &*stream)?;
            }
            FrameType::Promote => {
                let (empty, seq_hw) = {
                    let s = state.lock().expect("state lock");
                    (s.table.is_empty(), s.seq_hw)
                };
                if empty {
                    Frame {
                        kind: FrameType::Error,
                        seq: frame.seq,
                        payload: b"standby has no snapshot yet, cannot promote".to_vec(),
                    }
                    .write_to(&mut &*stream)?;
                    continue;
                }
                Frame {
                    kind: FrameType::PromoteAck,
                    seq: frame.seq,
                    payload: wire::encode_u64(seq_hw),
                }
                .write_to(&mut &*stream)?;
                promote_req.store(true, Ordering::Release);
                return Ok(());
            }
            FrameType::Shutdown => return Ok(()),
            other => {
                Frame {
                    kind: FrameType::Error,
                    seq: frame.seq,
                    payload: format!("standby does not serve {other:?} (promote first)")
                        .into_bytes(),
                }
                .write_to(&mut &*stream)?;
                return Ok(());
            }
        }
    }
}

// ------------------------------------------------------------- replication

fn replication_loop(
    cfg: &StandbyConfig,
    state: &Arc<Mutex<ReplicaState>>,
    shutdown: &Arc<AtomicBool>,
    promote_req: &Arc<AtomicBool>,
) {
    let stop = || shutdown.load(Ordering::Acquire) || promote_req.load(Ordering::Acquire);
    while !stop() {
        match follow_once(cfg, state, &stop) {
            Ok(()) => return, // clean shutdown from either side
            Err(_) => {
                if stop() {
                    return;
                }
                state.lock().expect("state lock").reconnects += 1;
                thread::sleep(cfg.reconnect_backoff);
            }
        }
    }
}

/// One replication session: hello, catch up, stream until it breaks.
fn follow_once(
    cfg: &StandbyConfig,
    state: &Arc<Mutex<ReplicaState>>,
    stop: &impl Fn() -> bool,
) -> io::Result<()> {
    let target = cfg
        .primary_repl
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "unresolvable primary"))?;
    let stream = TcpStream::connect_timeout(&target, cfg.io_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;

    let applied = state
        .lock()
        .expect("state lock")
        .applied_jseq
        .unwrap_or(FOLLOWER_EMPTY);
    Frame {
        kind: FrameType::ReplicaHello,
        seq: 0,
        payload: wire::encode_u64(applied),
    }
    .write_to(&mut &stream)?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;
    let ack = Frame::read_from(&mut &stream)?;
    if ack.kind != FrameType::HelloAck {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("expected HelloAck, got {:?}", ack.kind),
        ));
    }

    let mut snapshot_buf: Vec<u8> = Vec::new();
    loop {
        if stop() {
            return Ok(());
        }
        stream.set_read_timeout(Some(cfg.idle_poll))?;
        let mut lead = [0u8; 1];
        match (&mut &stream).read(&mut lead) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(e),
        }
        stream.set_read_timeout(Some(cfg.io_timeout))?;
        let frame = Frame::read_after_lead(lead[0], &mut &stream)?;
        match frame.kind {
            FrameType::SnapshotChunk => {
                let (last, chunk) = wire::decode_chunk(&frame.payload)?;
                snapshot_buf.extend_from_slice(chunk);
                if last {
                    let snap = decode_snapshot(&snapshot_buf)?;
                    snapshot_buf = Vec::new();
                    let mut s = state.lock().expect("state lock");
                    s.table = snap.table;
                    s.applied_jseq = Some(snap.jseq);
                    s.seq_hw = s.seq_hw.max(snap.seq_hw);
                    s.epoch = s.epoch.max(snap.epoch);
                    s.snapshots_loaded += 1;
                }
            }
            FrameType::WalShip => {
                let (rec, used) = decode_record(&frame.payload)?;
                if used != frame.payload.len() {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        "trailing bytes after shipped record",
                    ));
                }
                let ops = rec.ops.len() as u32;
                {
                    let mut s = state.lock().expect("state lock");
                    if s.applied_jseq.is_some_and(|j| rec.jseq <= j) {
                        // Already applied (and acked) — never replay.
                        s.skipped += 1;
                    } else {
                        for &op in &rec.ops {
                            s.table.apply(op);
                        }
                        s.applied_jseq = Some(rec.jseq);
                        s.seq_hw = s.seq_hw.max(rec.seq_hw);
                        // rec.epoch is the epoch before the batch; the
                        // batch may have published rec.epoch + 1.
                        s.epoch = s.epoch.max(rec.epoch + 1);
                        s.records_applied += 1;
                    }
                }
                // Applied-then-acked: the primary may count this record
                // as replicated the moment it sees the ack.
                Frame {
                    kind: FrameType::UpdateAck,
                    seq: rec.jseq,
                    payload: wire::encode_ack(wire::UpdateAck {
                        accepted: ops,
                        dropped: 0,
                    }),
                }
                .write_to(&mut &stream)?;
            }
            FrameType::Heartbeat => {
                Frame::empty(FrameType::HeartbeatAck, frame.seq).write_to(&mut &stream)?;
            }
            FrameType::Shutdown => return Err(ErrorKind::ConnectionAborted.into()),
            other => {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected {other:?} on replication stream"),
                ));
            }
        }
    }
}
