//! Boots one shard primary: durable store + replication endpoint +
//! serving frontend, wired so an ack implies journaled *and* shipped.
//!
//! This is the composition the CLI (`clue serve --repl-listen`), the
//! oracle's cluster phase, the cluster bench, and the integration
//! tests all share: open (or seed) a [`Store`], lift its stream base
//! into a [`ReplicationHub`], expose the hub on a
//! [`ReplicationListener`], wrap the store in a [`ReplicatedStore`]
//! journal, and serve the router behind the standard wire protocol.

use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use clue_fib::RouteTable;
use clue_net::{Server, ServerConfig};
use clue_router::{RouterReport, RouterService};
use clue_store::{Store, StoreConfig};

use crate::repl::{ReplConfig, ReplStats, ReplicatedStore, ReplicationHub, ReplicationListener};

/// Tunables for [`Primary::start`].
#[derive(Debug, Clone)]
pub struct PrimaryConfig {
    /// Client/proxy-facing server configuration (listen address,
    /// router sizing, timeouts).
    pub server: ServerConfig,
    /// Replication endpoint configuration (standbys dial this).
    pub repl: ReplConfig,
    /// Durable store configuration.
    pub store: StoreConfig,
    /// How long an append waits for every live synchronous standby to
    /// apply before demoting laggards and acking anyway. Must stay
    /// below the client's I/O timeout or a stalled standby turns into
    /// client-visible request timeouts instead of a demotion.
    pub sync_timeout: Duration,
}

impl Default for PrimaryConfig {
    fn default() -> PrimaryConfig {
        PrimaryConfig {
            server: ServerConfig::default(),
            repl: ReplConfig::default(),
            store: StoreConfig::default(),
            sync_timeout: Duration::from_secs(2),
        }
    }
}

/// A running shard primary: serving frontend plus replication stream.
pub struct Primary {
    server: Option<Server>,
    repl: Option<ReplicationListener>,
    hub: Arc<ReplicationHub>,
    routes: usize,
    recovered: bool,
}

impl Primary {
    /// Opens `dir` (seeding it from `fib` when fresh) and starts the
    /// full primary stack.
    ///
    /// `fib` is required for a fresh directory and ignored — like
    /// `clue serve` — when the directory already holds recoverable
    /// state.
    ///
    /// # Errors
    ///
    /// Store open/seed failures, bind failures on either listener, or
    /// a fresh directory with no `fib` to seed from.
    pub fn start(dir: &Path, fib: Option<&RouteTable>, cfg: &PrimaryConfig) -> io::Result<Primary> {
        let (mut store, recovery) = Store::open(dir, cfg.store)?;
        let (state, recovered) = match recovery {
            Some(rec) => (rec.into_state(), true),
            None => {
                let fib = fib.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("{} is a fresh data dir; seed it with a FIB", dir.display()),
                    )
                })?;
                store.init_from_table(fib, cfg.server.router.workers)?;
                let (reopened, rec) = Store::open(dir, cfg.store)?;
                store = reopened;
                let rec = rec.ok_or_else(|| {
                    io::Error::other("freshly seeded store did not recover its own snapshot")
                })?;
                (rec.into_state(), false)
            }
        };
        let hub = Arc::new(ReplicationHub::new(store.stream_base()?));
        let repl = ReplicationListener::start(cfg.repl.clone(), Arc::clone(&hub))?;
        let journal = ReplicatedStore::new(store, Arc::clone(&hub), cfg.sync_timeout);
        let routes = state.table.len();
        let seq_hw = state.seq_hw;
        let svc =
            RouterService::start_recovered(&state, &cfg.server.router, Some(Box::new(journal)));
        let server = Server::start_with_service(svc, seq_hw, &cfg.server)?;
        Ok(Primary {
            server: Some(server),
            repl: Some(repl),
            hub,
            routes,
            recovered,
        })
    }

    /// The client/proxy-facing address.
    ///
    /// # Panics
    ///
    /// After [`stop`](Primary::stop) (unreachable: `stop` consumes).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").local_addr()
    }

    /// The replication endpoint standbys should dial.
    ///
    /// # Panics
    ///
    /// After [`stop`](Primary::stop) (unreachable: `stop` consumes).
    #[must_use]
    pub fn repl_addr(&self) -> SocketAddr {
        self.repl.as_ref().expect("repl running").local_addr()
    }

    /// Routes in the table at boot.
    #[must_use]
    pub fn routes(&self) -> usize {
        self.routes
    }

    /// Whether boot recovered existing state (vs. seeding fresh).
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Replication-plane counters.
    #[must_use]
    pub fn repl_stats(&self) -> ReplStats {
        self.hub.stats()
    }

    /// Combined stats JSON from the serving frontend.
    ///
    /// # Panics
    ///
    /// After [`stop`](Primary::stop) (unreachable: `stop` consumes).
    #[must_use]
    pub fn stats_json(&self) -> String {
        self.server.as_ref().expect("server running").stats_json()
    }

    /// Whether a client asked the frontend to shut down.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.server.as_ref().is_some_and(Server::shutdown_requested)
    }

    /// Drains the frontend (journal flush + checkpoint via the router's
    /// drain path), then stops the replication listener.
    ///
    /// # Errors
    ///
    /// Drain-side I/O failures from the journal.
    pub fn stop(mut self) -> io::Result<RouterReport> {
        let report = match self.server.take() {
            Some(server) => server.drain()?,
            None => unreachable!("stop consumes self; server is always present"),
        };
        if let Some(repl) = self.repl.take() {
            repl.stop();
        }
        Ok(report)
    }
}

impl Drop for Primary {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            let _ = server.drain();
        }
        if let Some(repl) = self.repl.take() {
            repl.stop();
        }
    }
}
