//! The fan-out proxy tier: one listener speaking the standard wire
//! protocol in front of N shard servers.
//!
//! Lookups route each address to the single shard owning it
//! ([`ShardMap::shard_of`]); updates fan out to every shard whose
//! interval the prefix touches ([`ShardMap::shards_for_prefix`]), so
//! each shard keeps the full slice of routes matching its addresses.
//!
//! ## Exactly-once across the proxy
//!
//! Each client connection gets its own set of backend
//! [`Connection`]s, one per shard, so the client's seq/ack discipline
//! is preserved hop by hop: the proxy acknowledges a client's update
//! frame only after *every* involved shard has acked the fan-out
//! sub-batches — and a shard ack means journaled *and* replicated to
//! its live standby. An unacked frame is retransmitted by the client
//! against the proxy's `HelloAck(last_acked)` high-water, and the
//! proxy's backend connections replay their own unacked suffixes
//! through the same resume machinery, which stays safe because route
//! updates are last-op-wins per prefix.
//!
//! ## Failover
//!
//! A monitor thread heartbeats every shard's active address; after
//! [`ProxyConfig::fail_after`] consecutive misses it promotes the
//! standby (`Promote`/`PromoteAck`) and swaps the shard's active
//! address. Connection threads that hit a backend error promote
//! eagerly — first one wins, the promotion lock makes it idempotent —
//! then [`Connection::redirect`] re-points the stream and the resume
//! handshake settles what the dead primary already acked.
//!
//! ## Transports
//!
//! [`ProxyConfig::transport`] picks the client-facing architecture:
//! [`Transport::Threads`] serves each client on its own thread (one
//! set of backend connections per thread), while [`Transport::Evloop`]
//! multiplexes every client onto one `clue-aio` reactor and runs the
//! blocking backend fan-out on a bridge pool (`crate::evproxy`), so a
//! single proxy process holds tens of thousands of client downstreams
//! plus all shard upstreams. Frame semantics are identical.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use clue_fib::Update;
use clue_net::frame::{Frame, FrameType};
use clue_net::wire;
use clue_net::{ClientConfig, Connection, Transport};

use crate::rpc;
use crate::shardmap::ShardMap;

/// Tunables for a [`Proxy`].
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Client-facing listen address.
    pub listen: String,
    /// The shard map (cuts + per-shard endpoints).
    pub map: ShardMap,
    /// Health-monitor heartbeat period.
    pub heartbeat_every: Duration,
    /// Consecutive heartbeat misses before the monitor promotes.
    pub fail_after: u32,
    /// Poll interval for idle sockets and shutdown checks.
    pub idle_poll: Duration,
    /// Per-socket I/O timeout.
    pub io_timeout: Duration,
    /// Client-facing serving architecture: a thread per client, or
    /// every client multiplexed on one `clue-aio` reactor with a
    /// bridge pool for the blocking backend fan-out.
    pub transport: Transport,
    /// Bridge-pool size for [`Transport::Evloop`]; also the bound on
    /// concurrently fanned-out client frames in that mode.
    pub bridge_threads: usize,
}

impl ProxyConfig {
    /// Defaults around a given map: listen on an ephemeral loopback
    /// port, 150 ms heartbeats, promote after 2 misses.
    #[must_use]
    pub fn new(map: ShardMap) -> ProxyConfig {
        ProxyConfig {
            listen: "127.0.0.1:0".into(),
            map,
            heartbeat_every: Duration::from_millis(150),
            fail_after: 2,
            idle_poll: Duration::from_millis(20),
            io_timeout: Duration::from_secs(10),
            transport: Transport::default(),
            bridge_threads: 4,
        }
    }
}

/// Backend client configuration: snappy dial/backoff so a dead primary
/// is detected in milliseconds, not the interactive client's seconds.
fn backend_cfg(addr: &str) -> ClientConfig {
    ClientConfig {
        addr: addr.to_owned(),
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        heartbeat_every: Duration::from_secs(1),
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        max_reconnect_attempts: 4,
        ack_window: 32,
    }
}

pub(crate) struct ShardEndpoint {
    primary: String,
    standby: Option<String>,
    active: Mutex<String>,
    promoted: AtomicBool,
    promote_lock: Mutex<()>,
    hb_failures: AtomicU32,
    lookups: AtomicU64,
    updates: AtomicU64,
    failover_ms: Mutex<Option<f64>>,
}

pub(crate) struct Shared {
    pub(crate) map: ShardMap,
    pub(crate) shards: Vec<ShardEndpoint>,
    pub(crate) last_acked: AtomicU64,
    lookups: AtomicU64,
    updates: AtomicU64,
    update_fanout: AtomicU64,
    failovers: AtomicU64,
    started: Instant,
}

impl Shared {
    fn active(&self, i: usize) -> String {
        self.shards[i].active.lock().expect("active lock").clone()
    }

    /// Promotes shard `i`'s standby and swaps the active address.
    /// Idempotent: concurrent callers serialize on the promotion lock
    /// and every caller after the first returns the already-promoted
    /// address.
    fn promote(&self, i: usize, _cfg: &ProxyConfig) -> io::Result<String> {
        let shard = &self.shards[i];
        let _guard = shard.promote_lock.lock().expect("promote lock");
        if shard.promoted.load(Ordering::Acquire) {
            return Ok(self.active(i));
        }
        let Some(standby) = shard.standby.clone() else {
            return Err(io::Error::other(format!("shard {i} has no standby")));
        };
        let t0 = Instant::now();
        let mut last_err = io::Error::other("promotion not attempted");
        // The standby answers immediately; retries cover the window
        // where it is still absorbing its catch-up stream.
        for _ in 0..20 {
            match rpc::call_expect(
                &standby,
                &Frame::empty(FrameType::Promote, 0),
                FrameType::PromoteAck,
                Duration::from_millis(250),
                Duration::from_secs(2),
            ) {
                Ok(_ack) => {
                    *shard.active.lock().expect("active lock") = standby.clone();
                    shard.promoted.store(true, Ordering::Release);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    *shard.failover_ms.lock().expect("failover lock") = Some(ms);
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    return Ok(standby);
                }
                Err(e) => last_err = e,
            }
            thread::sleep(Duration::from_millis(25));
        }
        Err(last_err)
    }
}

/// The transport-specific running half of a [`Proxy`].
enum Runtime {
    /// Thread-per-client: the accept loop joins its workers on exit.
    Threads { accept: JoinHandle<()> },
    /// Every client on one reactor; backend fan-out on a bridge pool.
    Evloop {
        handle: clue_aio::LoopHandle<crate::evproxy::EvMsg>,
        event_loop: JoinHandle<()>,
        workers: Vec<JoinHandle<()>>,
    },
}

/// A running proxy.
pub struct Proxy {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    runtime: Option<Runtime>,
    monitor: Option<JoinHandle<()>>,
}

impl Proxy {
    /// Binds the client listener and starts the health monitor.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(cfg: ProxyConfig) -> io::Result<Proxy> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let local_addr = listener.local_addr()?;
        let shards = cfg
            .map
            .shards()
            .iter()
            .map(|s| ShardEndpoint {
                primary: s.primary.clone(),
                standby: s.standby.clone(),
                active: Mutex::new(s.primary.clone()),
                promoted: AtomicBool::new(false),
                promote_lock: Mutex::new(()),
                hb_failures: AtomicU32::new(0),
                lookups: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                failover_ms: Mutex::new(None),
            })
            .collect();
        let shared = Arc::new(Shared {
            map: cfg.map.clone(),
            shards,
            last_acked: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            update_fanout: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let runtime = match cfg.transport {
            Transport::Threads => {
                listener.set_nonblocking(true)?;
                let cfg = cfg.clone();
                let shared = Arc::clone(&shared);
                let shutdown = Arc::clone(&shutdown);
                Runtime::Threads {
                    accept: thread::spawn(move || accept_loop(&listener, &cfg, &shared, &shutdown)),
                }
            }
            Transport::Evloop => {
                let (handle, event_loop, workers) =
                    crate::evproxy::start(listener, &cfg, &shared, &shutdown)?;
                Runtime::Evloop {
                    handle,
                    event_loop,
                    workers,
                }
            }
        };
        let monitor = {
            let cfg = cfg.clone();
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || monitor_loop(&cfg, &shared, &shutdown))
        };
        Ok(Proxy {
            local_addr,
            shared,
            shutdown,
            runtime: Some(runtime),
            monitor: Some(monitor),
        })
    }

    /// The bound client-facing address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Completed failovers.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Relaxed)
    }

    /// Per-shard failover durations in milliseconds (`None` = never
    /// failed over).
    #[must_use]
    pub fn failover_ms(&self) -> Vec<Option<f64>> {
        self.shared
            .shards
            .iter()
            .map(|s| *s.failover_ms.lock().expect("failover lock"))
            .collect()
    }

    /// Each shard's currently active address.
    #[must_use]
    pub fn active_addrs(&self) -> Vec<String> {
        (0..self.shared.shards.len())
            .map(|i| self.shared.active(i))
            .collect()
    }

    /// The proxy's own stats JSON (no backend embeds — query through a
    /// client connection for the full per-shard breakdown).
    #[must_use]
    pub fn stats_json(&self) -> String {
        proxy_stats_json(&self.shared, None)
    }

    /// Stops the listener and monitor. Backend connections owned by
    /// per-client threads close as those clients disconnect.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        match self.runtime.take() {
            Some(Runtime::Threads { accept }) => {
                let _ = accept.join();
            }
            Some(Runtime::Evloop {
                handle,
                event_loop,
                workers,
            }) => {
                let _ = handle.send(crate::evproxy::EvMsg::Shutdown);
                let _ = event_loop.join();
                for w in workers {
                    let _ = w.join();
                }
            }
            None => {}
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Stable-ordered proxy stats. `backends` supplies each shard's
/// verbatim stats JSON when available (the per-connection stats path
/// queries live backends; the local path embeds `null`).
pub(crate) fn proxy_stats_json(shared: &Shared, backends: Option<Vec<Option<String>>>) -> String {
    let mut out = format!(
        "{{\"role\":\"proxy\",\"uptime_ms\":{},\"shards\":{},\"acked_hw\":{},\
         \"lookups\":{},\"updates\":{},\"update_fanout\":{},\"failovers\":{},\"per_shard\":[",
        shared.started.elapsed().as_millis(),
        shared.shards.len(),
        shared.last_acked.load(Ordering::SeqCst),
        shared.lookups.load(Ordering::Relaxed),
        shared.updates.load(Ordering::Relaxed),
        shared.update_fanout.load(Ordering::Relaxed),
        shared.failovers.load(Ordering::Relaxed),
    );
    for (i, shard) in shared.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let range = shared.map.shard_range(i);
        let failover = shard
            .failover_ms
            .lock()
            .expect("failover lock")
            .map_or("null".to_owned(), |ms| format!("{ms:.1}"));
        let backend = backends
            .as_ref()
            .and_then(|b| b.get(i).cloned().flatten())
            .unwrap_or_else(|| "null".to_owned());
        out.push_str(&format!(
            "{{\"shard\":{i},\"addr\":\"{}\",\"primary\":\"{}\",\"role\":\"{}\",\
             \"range\":[{},{}],\
             \"lookups\":{},\"updates\":{},\"hb_failures\":{},\"failover_ms\":{failover},\
             \"backend\":{backend}}}",
            shared.active(i),
            shard.primary,
            if shard.promoted.load(Ordering::Acquire) {
                "promoted-standby"
            } else {
                "primary"
            },
            range.start(),
            range.end(),
            shard.lookups.load(Ordering::Relaxed),
            shard.updates.load(Ordering::Relaxed),
            shard.hb_failures.load(Ordering::Relaxed),
        ));
    }
    out.push_str("]}");
    out
}

fn monitor_loop(cfg: &ProxyConfig, shared: &Arc<Shared>, shutdown: &Arc<AtomicBool>) {
    let mut nonce = 0u64;
    while !shutdown.load(Ordering::Acquire) {
        thread::sleep(cfg.heartbeat_every);
        for (i, shard) in shared.shards.iter().enumerate() {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            nonce += 1;
            let addr = shared.active(i);
            let ok = rpc::call_expect(
                &addr,
                &Frame::empty(FrameType::Heartbeat, nonce),
                FrameType::HeartbeatAck,
                Duration::from_millis(250),
                Duration::from_secs(1),
            )
            .is_ok();
            if ok {
                shard.hb_failures.store(0, Ordering::Relaxed);
            } else {
                let misses = shard.hb_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if misses >= cfg.fail_after
                    && !shard.promoted.load(Ordering::Acquire)
                    && shard.standby.is_some()
                {
                    let _ = shared.promote(i, cfg);
                }
            }
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    cfg: &ProxyConfig,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cfg = cfg.clone();
                let shared = Arc::clone(shared);
                let shutdown = Arc::clone(shutdown);
                workers.push(thread::spawn(move || {
                    serve_client(&stream, &cfg, &shared, &shutdown);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(cfg.idle_poll),
            Err(_) => thread::sleep(cfg.idle_poll),
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Per-client backend connections, opened lazily, re-pointed on
/// failover.
pub(crate) struct Backends {
    conns: Vec<Option<Connection>>,
}

impl Backends {
    pub(crate) fn new(n: usize) -> Backends {
        Backends {
            conns: (0..n).map(|_| None).collect(),
        }
    }

    /// Runs `op` against shard `i`'s active backend, promoting the
    /// shard's standby and retrying when the backend fails.
    pub(crate) fn op<T>(
        &mut self,
        i: usize,
        shared: &Shared,
        cfg: &ProxyConfig,
        mut op: impl FnMut(&mut Connection) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..8 {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(25));
            }
            let active = shared.active(i);
            let conn = match self.conns[i].as_mut() {
                Some(c) => {
                    if c.addr() != active {
                        c.redirect(active.clone());
                    }
                    c
                }
                None => match Connection::connect(backend_cfg(&active)) {
                    Ok(c) => self.conns[i].insert(c),
                    Err(e) => {
                        last_err = Some(e);
                        let _ = shared.promote(i, cfg);
                        continue;
                    }
                },
            };
            match op(conn) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = Some(e);
                    // Eager failover: do not wait for the monitor.
                    let _ = shared.promote(i, cfg);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("backend op failed")))
    }

    pub(crate) fn close_all(&mut self) {
        for c in &mut self.conns {
            if let Some(conn) = c.take() {
                let _ = conn.close();
            }
        }
    }
}

fn serve_client(
    stream: &TcpStream,
    cfg: &ProxyConfig,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let mut backends = Backends::new(shared.shards.len());
    serve_client_frames(stream, cfg, shared, shutdown, &mut backends);
    backends.close_all();
}

fn serve_client_frames(
    stream: &TcpStream,
    cfg: &ProxyConfig,
    shared: &Arc<Shared>,
    shutdown: &Arc<AtomicBool>,
    backends: &mut Backends,
) {
    loop {
        if shutdown.load(Ordering::Acquire) {
            let _ = Frame::empty(FrameType::Shutdown, 0).write_to(&mut &*stream);
            return;
        }
        if stream.set_read_timeout(Some(cfg.idle_poll)).is_err() {
            return;
        }
        let mut lead = [0u8; 1];
        match (&mut &*stream).read(&mut lead) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(cfg.io_timeout)).is_err() {
            return;
        }
        let frame = match Frame::read_after_lead(lead[0], &mut &*stream) {
            Ok(f) => f,
            Err(_) => return,
        };

        let reply = match frame.kind {
            FrameType::Hello => Frame {
                kind: FrameType::HelloAck,
                seq: frame.seq,
                payload: wire::encode_u64(shared.last_acked.load(Ordering::SeqCst)),
            },
            FrameType::Update => handle_update(&frame, cfg, shared, backends),
            FrameType::Lookup => handle_lookup(&frame, cfg, shared, backends),
            FrameType::StatsQuery => {
                let embeds: Vec<Option<String>> = (0..shared.shards.len())
                    .map(|i| backends.op(i, shared, cfg, Connection::stats_json).ok())
                    .collect();
                Frame {
                    kind: FrameType::StatsReply,
                    seq: frame.seq,
                    payload: proxy_stats_json(shared, Some(embeds)).into_bytes(),
                }
            }
            FrameType::ShardMapQuery => Frame {
                kind: FrameType::ShardMapReply,
                seq: frame.seq,
                payload: shared.map.encode(),
            },
            FrameType::Heartbeat => Frame::empty(FrameType::HeartbeatAck, frame.seq),
            FrameType::Shutdown => return,
            other => Frame {
                kind: FrameType::Error,
                seq: frame.seq,
                payload: format!("proxy does not serve {other:?}").into_bytes(),
            },
        };
        let fatal = reply.kind == FrameType::Error;
        if reply.write_to(&mut &*stream).is_err() || fatal {
            return;
        }
    }
}

/// Fans an update batch out by range intersection and acks the client
/// only after every involved shard acked its sub-batch (each shard ack
/// meaning journaled + replicated).
pub(crate) fn handle_update(
    frame: &Frame,
    cfg: &ProxyConfig,
    shared: &Shared,
    backends: &mut Backends,
) -> Frame {
    let batch = match wire::decode_updates(&frame.payload) {
        Ok(b) => b,
        Err(e) => {
            return Frame {
                kind: FrameType::Error,
                seq: frame.seq,
                payload: e.to_string().into_bytes(),
            }
        }
    };
    let mut groups: Vec<Vec<Update>> = vec![Vec::new(); shared.shards.len()];
    for u in &batch {
        for s in shared.map.shards_for_prefix(u.prefix()) {
            groups[s].push(*u);
        }
    }
    for (i, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let sent = backends.op(i, shared, cfg, |c| {
            c.send_updates(group)?;
            c.flush_acks()
        });
        if let Err(e) = sent {
            // No ack: the client's resume machinery will retransmit the
            // whole frame, which is safe (last-op-wins per prefix).
            return Frame {
                kind: FrameType::Error,
                seq: frame.seq,
                payload: format!("shard {i}: {e}").into_bytes(),
            };
        }
        shared.shards[i]
            .updates
            .fetch_add(group.len() as u64, Ordering::Relaxed);
        shared
            .update_fanout
            .fetch_add(group.len() as u64, Ordering::Relaxed);
    }
    shared
        .updates
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    shared.last_acked.fetch_max(frame.seq, Ordering::SeqCst);
    Frame {
        kind: FrameType::UpdateAck,
        seq: frame.seq,
        payload: wire::encode_ack(wire::UpdateAck {
            accepted: batch.len() as u32,
            dropped: 0,
        }),
    }
}

/// Routes each address to its owning shard and reassembles the answers
/// in request order.
pub(crate) fn handle_lookup(
    frame: &Frame,
    cfg: &ProxyConfig,
    shared: &Shared,
    backends: &mut Backends,
) -> Frame {
    let addrs = match wire::decode_lookup(&frame.payload) {
        Ok(a) => a,
        Err(e) => {
            return Frame {
                kind: FrameType::Error,
                seq: frame.seq,
                payload: e.to_string().into_bytes(),
            }
        }
    };
    let mut groups: Vec<(Vec<usize>, Vec<u32>)> =
        vec![(Vec::new(), Vec::new()); shared.shards.len()];
    for (pos, &addr) in addrs.iter().enumerate() {
        let s = shared.map.shard_of(addr);
        groups[s].0.push(pos);
        groups[s].1.push(addr);
    }
    let mut results = vec![None; addrs.len()];
    for (i, (positions, sub)) in groups.iter().enumerate() {
        if sub.is_empty() {
            continue;
        }
        match backends.op(i, shared, cfg, |c| c.lookup(sub)) {
            Ok(answers) => {
                for (&pos, answer) in positions.iter().zip(answers) {
                    results[pos] = answer;
                }
                shared.shards[i]
                    .lookups
                    .fetch_add(sub.len() as u64, Ordering::Relaxed);
            }
            Err(e) => {
                return Frame {
                    kind: FrameType::Error,
                    seq: frame.seq,
                    payload: format!("shard {i}: {e}").into_bytes(),
                }
            }
        }
    }
    shared
        .lookups
        .fetch_add(addrs.len() as u64, Ordering::Relaxed);
    Frame {
        kind: FrameType::LookupResult,
        seq: frame.seq,
        payload: wire::encode_results(&results),
    }
}
