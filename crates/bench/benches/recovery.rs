//! Machine-readable durability numbers: one run of the `clue-store`
//! experiments, emitted as `BENCH_recovery.json` for CI artifacts and
//! regression diffing (schema documented in DESIGN.md §3).
//!
//! Captures, at the current `CLUE_BENCH_SCALE`:
//!
//! * snapshot size and write/load time for the standard RIB (the load
//!   side includes the recompression integrity check);
//! * journal append overhead: the same update stream through the
//!   router runtime bare, journaled without fsync, and journaled with
//!   per-append fsync;
//! * recovery time as a function of the journal tail length replayed
//!   over the snapshot.
//!
//! The artifact path defaults to `BENCH_recovery.json` in the working
//! directory; override it with `CLUE_BENCH_RECOVERY_JSON=/path`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use clue_bench::{banner, scale, standard_rib};
use clue_compress::onrtc;
use clue_fib::{RouteTable, Update};
use clue_partition::EvenRangePartition;
use clue_router::{CheckpointView, JournalBatch, RouterConfig, RouterService, UpdateJournal};
use clue_store::{encode_snapshot, load_snapshot, write_snapshot, Snapshot, Store, StoreConfig};
use clue_traffic::UpdateGen;

/// A store whose drain "crashes": appends are real but the drain-time
/// checkpoint is skipped, so the run measures the append path alone and
/// leaves a journal tail behind for the recovery timings.
struct CrashStore(Store);

impl UpdateJournal for CrashStore {
    fn append(&mut self, batch: &JournalBatch<'_>) -> io::Result<()> {
        self.0.append(batch)
    }
    fn wants_checkpoint(&self) -> bool {
        self.0.wants_checkpoint()
    }
    fn checkpoint(&mut self, view: &CheckpointView<'_>) -> io::Result<()> {
        self.0.checkpoint(view)
    }
    fn on_drain(&mut self, _view: &CheckpointView<'_>) -> io::Result<()> {
        Ok(())
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clue-bench-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Drives `trace` through a journaled router service in a fresh data
/// dir without the drain checkpoint; returns (elapsed_ms, appends).
fn journaled_run(dir: &Path, rib: &RouteTable, trace: &[Update], scfg: StoreConfig) -> (f64, u64) {
    let (mut store, recovery) = Store::open(dir, scfg).expect("fresh bench dir opens");
    assert!(recovery.is_none(), "bench dir must start empty");
    let rcfg = RouterConfig::default();
    store
        .init_from_table(rib, rcfg.workers)
        .expect("base snapshot writes");
    let start = Instant::now();
    let svc = RouterService::start_with_journal(rib, &rcfg, Box::new(CrashStore(store)));
    for &u in trace {
        svc.submit_update(u);
    }
    let report = svc.drain();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.snapshot.journal_errors, 0, "journal must stay clean");
    (ms, report.snapshot.journal_appends)
}

fn main() {
    banner(
        "Recovery — snapshot size, journal append overhead, recovery time vs tail",
        "writes BENCH_recovery.json (override with CLUE_BENCH_RECOVERY_JSON)",
    );
    let s = scale();
    let rib = standard_rib();
    let compressed = onrtc(&rib);

    // 1. Snapshot size and write/load time. The load side re-runs ONRTC
    //    over the decoded table (the semantic integrity check), so it is
    //    the dominant term of every recovery below.
    let cuts = EvenRangePartition::split(&compressed, 4)
        .index()
        .cuts()
        .to_vec();
    let snap = Snapshot {
        jseq: 0,
        epoch: 0,
        seq_hw: 0,
        raw_total: 0,
        chips: 4,
        cuts,
        table: rib.clone(),
        compressed: compressed.clone(),
        dreds: vec![Vec::new(); 4],
    };
    let snap_bytes = encode_snapshot(&snap).len();
    let dir = bench_dir("snap");
    fs::create_dir_all(&dir).expect("bench dir creates");
    let t = Instant::now();
    let path = write_snapshot(&dir, &snap).expect("snapshot writes");
    let write_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let loaded = load_snapshot(&path).expect("snapshot loads");
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded.table.len(), rib.len());
    let _ = fs::remove_dir_all(&dir);
    println!(
        "snapshot: {} routes ({} compressed) -> {:.2} MiB | write {:.1} ms | load+verify {:.1} ms",
        rib.len(),
        compressed.len(),
        snap_bytes as f64 / (1024.0 * 1024.0),
        write_ms,
        load_ms,
    );

    // 2. Journal append overhead: bare runtime vs journaled (fsync off,
    //    then per-append fsync), identical update stream.
    let n = ((40_000.0 * s) as usize).max(2_000);
    let updates = UpdateGen::new(0xBEEF).generate(&rib, n);
    let rcfg = RouterConfig::default();
    let t = Instant::now();
    let svc = RouterService::start(&rib, &rcfg);
    for &u in &updates {
        svc.submit_update(u);
    }
    let _ = svc.drain();
    let plain_ms = t.elapsed().as_secs_f64() * 1e3;

    let nosync_cfg = StoreConfig {
        snapshot_every: u64::MAX,
        fsync: false,
        ..StoreConfig::default()
    };
    let tail_dir = bench_dir("tail-full");
    let (nosync_ms, appends) = journaled_run(&tail_dir, &rib, &updates, nosync_cfg);

    let fsync_n = (n / 8).max(500);
    let fsync_dir = bench_dir("fsync");
    let (fsync_ms, fsync_appends) = journaled_run(
        &fsync_dir,
        &rib,
        &updates[..fsync_n],
        StoreConfig {
            snapshot_every: u64::MAX,
            fsync: true,
            ..StoreConfig::default()
        },
    );
    let _ = fs::remove_dir_all(&fsync_dir);
    let overhead_us = (nosync_ms - plain_ms) * 1e3 / n as f64;
    println!(
        "journal: {n} updates bare {plain_ms:.1} ms | journaled {nosync_ms:.1} ms \
         ({appends} appends, {overhead_us:.3} us/update overhead) | \
         {fsync_n} updates fsynced {fsync_ms:.1} ms ({fsync_appends} appends)",
    );

    // 3. Recovery time vs journal tail length: crash runs leaving tails
    //    of increasing size, each reopened cold.
    let mut recoveries = String::new();
    let mut tails: Vec<(PathBuf, usize)> = vec![(tail_dir, n)];
    for frac in [8usize, 2] {
        let upto = n / frac;
        let dir = bench_dir(&format!("tail-{frac}"));
        let _ = journaled_run(&dir, &rib, &updates[..upto], nosync_cfg);
        tails.push((dir, upto));
    }
    tails.sort_by_key(|&(_, upto)| upto);
    for (dir, upto) in &tails {
        let t = Instant::now();
        let (_store, recovery) = Store::open(dir, nosync_cfg).expect("bench dir recovers");
        let open_ms = t.elapsed().as_secs_f64() * 1e3;
        let rec = recovery.expect("crash run leaves recoverable state");
        assert_eq!(rec.raw_applied, *upto as u64, "tail must replay exactly");
        println!(
            "recovery: {upto} update tail ({} records) in {open_ms:.1} ms",
            rec.replayed,
        );
        if !recoveries.is_empty() {
            recoveries.push(',');
        }
        recoveries.push_str(&format!(
            "{{\"tail_updates\":{upto},\"records\":{},\"open_ms\":{open_ms:.3}}}",
            rec.replayed,
        ));
        let _ = fs::remove_dir_all(dir);
    }

    let json = format!(
        "{{\"schema\":\"clue-bench-recovery/1\",\"scale\":{s},\
         \"snapshot\":{{\"routes\":{},\"compressed\":{},\"bytes\":{snap_bytes},\
         \"write_ms\":{write_ms:.3},\"load_ms\":{load_ms:.3}}},\
         \"journal\":{{\"updates\":{n},\"appends\":{appends},\
         \"plain_ms\":{plain_ms:.3},\"nosync_ms\":{nosync_ms:.3},\
         \"append_overhead_us_per_update\":{overhead_us:.4},\
         \"fsync_updates\":{fsync_n},\"fsync_appends\":{fsync_appends},\
         \"fsync_ms\":{fsync_ms:.3}}},\
         \"recovery\":[{recoveries}]}}",
        rib.len(),
        compressed.len(),
    );
    let path = std::env::var("CLUE_BENCH_RECOVERY_JSON")
        .unwrap_or_else(|_| "BENCH_recovery.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("recovery bench written to {path}"),
        Err(e) => {
            eprintln!("recovery bench write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
