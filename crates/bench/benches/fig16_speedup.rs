//! Figure 16: speedup factor vs DRed hit rate — CLUE, CLPL, and the
//! theoretical worst case t = (N−1)h + 1.
//!
//! Paper result: CLUE and CLPL overlap (same hit rate ⇒ same speedup)
//! and both sit above the worst-case line; speedup rises with hit rate.
//!
//! The sweep varies the DRed capacity to move the hit rate, running the
//! adversarial mapping so the DRed path dominates.

use clue_bench::{adversarial, banner};
use clue_core::theory::worst_case_speedup;
use clue_core::{DredConfig, EngineConfig};

fn main() {
    banner(
        "Figure 16 — speedup factor vs hit rate (worst-case mapping)",
        "CLUE ~= CLPL at equal hit rate; both >= (N-1)h+1",
    );
    let setup = adversarial(32, 4, 1_000_000);
    let cfg = EngineConfig::default();
    let sram_trie = clue_bench::standard_rib().to_trie();

    println!(
        "{:>9} | {:>10} {:>9} | {:>10} {:>9} | {:>10}",
        "DRed size", "CLUE hit", "CLUE t", "CLPL hit", "CLPL t", "worst t(h)"
    );
    for capacity in [32usize, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let mut clue = setup.engine(
            DredConfig::Clue {
                capacity,
                exclude_home: true,
            },
            cfg,
        );
        let (ra, _) = clue.run(&setup.trace);
        let mut clpl = setup.engine(
            DredConfig::Clpl {
                capacity,
                sram_trie: sram_trie.clone(),
            },
            cfg,
        );
        let (rb, _) = clpl.run(&setup.trace);
        let (ha, ta) = (ra.scheme.hit_rate(), ra.speedup(cfg.service_clocks));
        let (hb, tb) = (rb.scheme.hit_rate(), rb.speedup(cfg.service_clocks));
        println!(
            "{:>9} | {:>9.2}% {:>8.2}x | {:>9.2}% {:>8.2}x | {:>9.2}x",
            capacity,
            ha * 100.0,
            ta,
            hb * 100.0,
            tb,
            worst_case_speedup(cfg.chips, ha)
        );
        assert!(
            ta >= 0.95 * worst_case_speedup(cfg.chips, ha),
            "CLUE fell below the theory floor"
        );
    }
    println!("\n(same hit rate => same speedup; both schemes sit on/above the worst-case line)");
}
