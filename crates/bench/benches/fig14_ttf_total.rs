//! Figure 14: total TTF = TTF1 + TTF2 + TTF3 — a router's sensitivity
//! to network changes.
//!
//! Paper result: CLPL 0.63–0.83 µs (mean 0.666 µs) vs CLUE 0.269 µs —
//! CLPL's total TTF is 234 % of CLUE's.

use clue_bench::{banner, ttf_series};

fn main() {
    banner(
        "Figure 14 — total TTF per update window",
        "CLPL mean 0.666 us = 234% of CLUE's 0.269 us",
    );
    let series = ttf_series(12, 2_000);
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "window", "CLUE (us)", "CLPL (us)", "CLPL/CLUE"
    );
    let (mut a_sum, mut b_sum) = (0.0, 0.0);
    let mut rows = Vec::new();
    for p in &series.points {
        let a = p.clue.total_ns();
        let b = p.clpl.total_ns();
        a_sum += a;
        b_sum += b;
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>11.0}%",
            p.window,
            a / 1e3,
            b / 1e3,
            b / a.max(1.0) * 100.0
        );
        rows.push(format!("{},{:.4},{:.4}", p.window, a / 1e3, b / 1e3));
    }
    println!(
        "\nmeans: CLUE {:.4} us, CLPL {:.4} us — CLPL is {:.0}% of CLUE (paper 234%)",
        a_sum / series.points.len() as f64 / 1e3,
        b_sum / series.points.len() as f64 / 1e3,
        b_sum / a_sum.max(1.0) * 100.0
    );
    clue_bench::csv_write("fig14_ttf_total", "window,clue_us,clpl_us", &rows);
}
