//! Machine-readable adversarial-workload numbers: every named
//! `clue-trace` scenario driven through the update pipeline and the
//! router runtime, emitted as `BENCH_scenarios.json` for CI artifacts
//! and regression diffing (schema documented in DESIGN.md §3).
//!
//! Captures, per scenario, at the current `CLUE_BENCH_SCALE`:
//!
//! * the router's coalesce ratio under the scheduled burst shape (fed
//!   flat out — the ratio measures how much a storm's redundancy the
//!   ingress absorbs, not wall-clock pacing);
//! * TTF p50/p99 through the three-stage CLUE pipeline;
//! * compression-ratio drift: ONRTC ratio over the base table vs over
//!   the post-schedule table (does the workload degrade compression?);
//! * end-to-end lookups/sec over the scenario's packet trace.
//!
//! The artifact path defaults to `BENCH_scenarios.json` in the working
//! directory; override it with `CLUE_BENCH_SCENARIOS_JSON=/path`.

use std::time::Instant;

use clue_bench::{banner, scale};
use clue_compress::onrtc;
use clue_core::update_pipeline::CluePipeline;
use clue_router::{RouterConfig, RouterService};
use clue_trace::{Scenario, ScenarioConfig, ScenarioKind};

/// The `q`-th percentile of `samples` (nanoseconds), or 0.0 when empty.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite TTF"));
    let rank = (q / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// ONRTC entry count over route count — the paper's compression ratio
/// (lower is better); 0.0 for an empty table.
fn compression_ratio(table: &clue_fib::RouteTable) -> f64 {
    if table.is_empty() {
        return 0.0;
    }
    onrtc(table).len() as f64 / table.len() as f64
}

fn main() {
    banner(
        "Scenarios — coalesce ratio, TTF percentiles, compression drift, lookups/sec",
        "writes BENCH_scenarios.json (override with CLUE_BENCH_SCENARIOS_JSON)",
    );
    let s = scale();
    let cfg = ScenarioConfig {
        routes: ((20_000.0 * s) as usize).max(1_000),
        updates: ((40_000.0 * s) as usize).max(2_000),
        packets: ((200_000.0 * s) as usize).max(10_000),
        ..ScenarioConfig::default()
    };
    println!(
        "scale {s}: ~{} routes, ~{} updates, {} packets per scenario\n",
        cfg.routes, cfg.updates, cfg.packets,
    );

    let mut entries = String::new();
    for kind in ScenarioKind::ALL {
        let scn = Scenario::build(kind, &cfg);
        let updates = scn.updates();

        let ratio_before = compression_ratio(&scn.base);
        let mut final_table = scn.base.clone();
        for &u in &updates {
            final_table.apply(u);
        }
        let ratio_after = compression_ratio(&final_table);
        let drift = ratio_after - ratio_before;

        // TTF through the three-stage pipeline, one sample per update.
        let mut pipeline = CluePipeline::new(&scn.base, 4, 1024, scn.base.len());
        let mut ttf_ns: Vec<f64> = updates
            .iter()
            .map(|&u| pipeline.apply(u).total_ns())
            .collect();
        let ttf_p50_us = percentile(&mut ttf_ns, 50.0) / 1e3;
        let ttf_p99_us = percentile(&mut ttf_ns, 99.0) / 1e3;

        // Router runtime: schedule fed flat out (coalesce ratio), then
        // the packet trace looked up in batches (lookups/sec).
        let svc = RouterService::start(&scn.base, &RouterConfig::default());
        let t = Instant::now();
        for ev in &scn.schedule.events {
            svc.submit_update(ev.update);
        }
        let feed_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let mut answered = 0usize;
        for chunk in scn.packets.chunks(256) {
            answered += svc.lookup_batch(chunk.to_vec()).len();
        }
        let lookup_secs = t.elapsed().as_secs_f64().max(1e-9);
        let lookups_per_sec = answered as f64 / lookup_secs;
        let snap = svc.stats();
        let coalesce = snap.coalesce_ratio;
        let applied = snap.updates_applied;
        let _ = svc.drain();

        println!(
            "{kind:>14}: {} events fed in {feed_ms:.1} ms, coalesce {coalesce:.3} \
             ({applied} applied) | TTF p50 {ttf_p50_us:.2} us p99 {ttf_p99_us:.2} us | \
             compression {ratio_before:.4} -> {ratio_after:.4} (drift {drift:+.4}) | \
             {lookups_per_sec:.0} lookups/s",
            scn.schedule.len(),
        );

        if !entries.is_empty() {
            entries.push(',');
        }
        entries.push_str(&format!(
            "{{\"scenario\":\"{kind}\",\"base_routes\":{},\"events\":{},\
             \"packets\":{answered},\"coalesce_ratio\":{coalesce:.4},\
             \"updates_applied\":{applied},\"feed_ms\":{feed_ms:.3},\
             \"ttf_p50_us\":{ttf_p50_us:.3},\"ttf_p99_us\":{ttf_p99_us:.3},\
             \"compression_ratio_before\":{ratio_before:.5},\
             \"compression_ratio_after\":{ratio_after:.5},\
             \"compression_drift\":{drift:.5},\
             \"lookups_per_sec\":{lookups_per_sec:.1}}}",
            scn.base.len(),
            scn.schedule.len(),
        ));
    }

    let json = format!(
        "{{\"schema\":\"clue-bench-scenarios/1\",\"scale\":{s},\"scenarios\":[{entries}]}}"
    );
    let path = std::env::var("CLUE_BENCH_SCENARIOS_JSON")
        .unwrap_or_else(|_| "BENCH_scenarios.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("\nscenario bench written to {path}"),
        Err(e) => {
            eprintln!("scenario bench write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
