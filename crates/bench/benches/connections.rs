//! Machine-readable connection-scaling numbers: transport ×
//! connection count → lookups/sec, lookup latency percentiles, update
//! ack latency, and loss counters (which must be zero) — plus an
//! offered-load × connections sweep where the swarm paces itself to a
//! target aggregate rate and the achieved rate is reported against it.
//! Emitted as `BENCH_connections.json` for CI artifacts and regression
//! diffing (schema `clue-bench-connections/2`, documented in DESIGN.md
//! §3).
//!
//! The swarm client multiplexes every connection on one reactor and
//! holds all handshakes until the last dial resolves, so a point at N
//! connections really is N simultaneously-established clients. The
//! threaded transport runs up to the highest count it can reasonably
//! sustain (one OS thread per connection); the evloop transport
//! continues into the thousands on the same workload for the headline
//! ratio.
//!
//! The artifact path defaults to `BENCH_connections.json` in the
//! working directory; override with `CLUE_BENCH_CONNECTIONS_JSON`.

use std::time::Duration;

use clue_bench::{banner, scale};
use clue_fib::gen::FibGen;
use clue_fib::RouteTable;
use clue_net::swarm::percentile_us;
use clue_net::{run_swarm, Server, ServerConfig, SwarmConfig, SwarmReport, Transport};
use clue_router::RouterConfig;
use clue_traffic::{PacketGen, UpdateGen};

fn server_cfg(transport: Transport) -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".into(),
        router: RouterConfig {
            workers: 2,
            batch_size: 64,
            ..RouterConfig::default()
        },
        idle_poll: Duration::from_millis(5),
        transport,
        ..ServerConfig::default()
    }
}

struct Point {
    transport: Transport,
    connections: usize,
    /// Target offered load in lookups/sec; 0.0 means closed-loop (the
    /// swarm sends as fast as answers come back).
    offered_per_sec: f64,
    report: SwarmReport,
}

impl Point {
    fn to_json(&self) -> String {
        let r = &self.report;
        format!(
            "{{\"transport\":\"{}\",\"connections\":{},\"offered_per_sec\":{:.1},\
             \"connected\":{},\"peak_open\":{},\
             \"lookups_sent\":{},\"lookups_per_sec\":{:.1},\
             \"lookup_p50_us\":{:.1},\"lookup_p99_us\":{:.1},\
             \"ack_p50_us\":{:.1},\"ack_p99_us\":{:.1},\
             \"update_drops\":{},\"lost_answers\":{},\"lost_acks\":{},\
             \"errors\":{},\"elapsed_ms\":{}}}",
            self.transport.name(),
            self.connections,
            self.offered_per_sec,
            r.connected,
            r.peak_open,
            r.lookups_sent,
            r.lookups_per_sec(),
            percentile_us(&r.lookup_us, 50.0),
            percentile_us(&r.lookup_us, 99.0),
            percentile_us(&r.ack_us, 50.0),
            percentile_us(&r.ack_us, 99.0),
            r.updates_dropped,
            r.lost_answers(),
            r.lost_acks(),
            r.errors,
            r.elapsed.as_millis(),
        )
    }
}

/// One transport × connection-count × offered-load point: fresh
/// server, full swarm, clean drain. `offered` 0.0 runs closed-loop; a
/// positive target is converted into the per-connection inter-frame
/// gap that offers roughly that many lookups/sec in aggregate. Panics
/// on any lost answer/ack — loss is a correctness failure, not a slow
/// result.
fn point(
    rib: &RouteTable,
    addrs: &[u32],
    updates: &[clue_fib::Update],
    t: Transport,
    n: usize,
    offered: f64,
) -> Point {
    let batch = 16usize;
    let gap = if offered > 0.0 {
        Duration::from_secs_f64((n * batch) as f64 / offered)
    } else {
        Duration::ZERO
    };
    let server = Server::start(rib, &server_cfg(t)).expect("server boots");
    let cfg = SwarmConfig {
        addr: server.local_addr().to_string(),
        connections: n,
        lookup_batch: batch,
        rounds: 4,
        updates_per_conn: 2,
        gap,
        ..SwarmConfig::default()
    };
    let report = run_swarm(&cfg, addrs, updates).expect("swarm runs");
    assert_eq!(report.connected, n, "{t} at {n}: connect shortfall");
    assert_eq!(report.peak_open, n, "{t} at {n}: not all concurrent");
    assert_eq!(report.errors, 0, "{t} at {n}: errors");
    assert_eq!(report.lost_answers(), 0, "{t} at {n}: lost answers");
    assert_eq!(report.lost_acks(), 0, "{t} at {n}: lost acks");
    server.drain().expect("server drains");
    let load = if offered > 0.0 {
        format!("{offered:>9.0}/s offered")
    } else {
        "closed-loop".to_owned()
    };
    println!(
        "{:>7} x {:>5} conns ({load:>17}): {:>9.0} lookups/s | p50 {:>6.0} us | \
         p99 {:>7.0} us | ack p99 {:>7.0} us | 0 lost",
        t.name(),
        n,
        report.lookups_per_sec(),
        percentile_us(&report.lookup_us, 50.0),
        percentile_us(&report.lookup_us, 99.0),
        percentile_us(&report.ack_us, 99.0),
    );
    Point {
        transport: t,
        connections: n,
        offered_per_sec: offered,
        report,
    }
}

fn main() {
    banner(
        "Connections — transport x connection count -> lookups/s, latency, zero loss",
        "writes BENCH_connections.json (override with CLUE_BENCH_CONNECTIONS_JSON)",
    );
    let s = scale();
    let routes = ((20_000.0 * s) as usize).max(2_000);
    let rib = FibGen::new(0xC10E_000A).routes(routes).generate();
    let addrs = PacketGen::new(0xC10E_000B).generate(&rib, 8_192);
    let updates = UpdateGen::new(0xC10E_000C).generate(&rib, 4_096);
    let conns = |n: usize| ((n as f64 * s) as usize).max(16);

    // Thread-per-connection tops out on OS-thread cost; run it at the
    // highest count it sustains on CI hardware for a direct comparison.
    let mut threads_ladder = vec![conns(64), conns(256)];
    threads_ladder.dedup();
    // The reactor's ladder continues past the acceptance floor of 5000
    // simultaneously-established clients.
    let mut evloop_ladder = vec![conns(256), conns(1_024), conns(6_000)];
    evloop_ladder.dedup();

    let mut points: Vec<Point> = Vec::new();
    for &n in &threads_ladder {
        points.push(point(&rib, &addrs, &updates, Transport::Threads, n, 0.0));
    }
    for &n in &evloop_ladder {
        points.push(point(&rib, &addrs, &updates, Transport::Evloop, n, 0.0));
    }

    // Offered-load x connections sweep: the same evloop swarm paced to
    // fixed aggregate rates, showing achieved tracking offered while
    // under capacity (and the zero-loss invariant holding throughout).
    let mut sweep_conns = vec![conns(64), conns(256)];
    sweep_conns.dedup();
    let sweep_loads = [(25_000.0 * s).max(500.0), (100_000.0 * s).max(2_000.0)];
    for &n in &sweep_conns {
        for &offered in &sweep_loads {
            points.push(point(&rib, &addrs, &updates, Transport::Evloop, n, offered));
        }
    }

    let threads_max = *threads_ladder.iter().max().expect("nonempty ladder");
    let evloop_max = *evloop_ladder.iter().max().expect("nonempty ladder");
    let rate_at = |t: Transport, n: usize| {
        points
            .iter()
            .find(|p| p.transport == t && p.connections == n && p.offered_per_sec == 0.0)
            .map(|p| p.report.lookups_per_sec())
            .unwrap_or(0.0)
    };
    // Achieved/offered at the heaviest paced point: pacing adds the
    // round trip on top of the gap, so this sits below (but near) 1.0
    // whenever the server is under capacity.
    let paced_ratio = points
        .iter()
        .filter(|p| p.offered_per_sec > 0.0)
        .max_by(|a, b| {
            (a.offered_per_sec * a.connections as f64)
                .total_cmp(&(b.offered_per_sec * b.connections as f64))
        })
        .map(|p| p.report.lookups_per_sec() / p.offered_per_sec)
        .unwrap_or(0.0);
    let shared = conns(256);
    println!(
        "headline: evloop holds {evloop_max} concurrent clients ({:.1}x the threaded \
         ceiling of {threads_max}) with zero lost answers/acks; at {shared} shared \
         connections evloop/threads throughput ratio {:.2}",
        evloop_max as f64 / threads_max as f64,
        rate_at(Transport::Evloop, shared) / rate_at(Transport::Threads, shared).max(1e-9),
    );

    let body: Vec<String> = points.iter().map(Point::to_json).collect();
    let json = format!(
        "{{\"schema\":\"clue-bench-connections/2\",\"scale\":{s},\"routes\":{},\
         \"points\":[{}],\
         \"headline\":{{\"threads_max_connections\":{threads_max},\
         \"evloop_max_connections\":{evloop_max},\
         \"connection_ratio\":{:.2},\
         \"shared_count\":{shared},\
         \"throughput_ratio_at_shared\":{:.3},\
         \"paced_achieved_over_offered\":{paced_ratio:.3},\
         \"evloop_zero_loss_at_max\":true}}}}",
        rib.len(),
        body.join(","),
        evloop_max as f64 / threads_max as f64,
        rate_at(Transport::Evloop, shared) / rate_at(Transport::Threads, shared).max(1e-9),
    );
    println!(
        "load sweep: heaviest paced point achieved {:.0}% of its offered rate with zero loss",
        paced_ratio * 100.0
    );
    let path = std::env::var("CLUE_BENCH_CONNECTIONS_JSON")
        .unwrap_or_else(|_| "BENCH_connections.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("connections bench written to {path}"),
        Err(e) => {
            eprintln!("connections bench write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
