//! Tiled scale-out numbers: tile capacity × table scale → tiles used,
//! occupancy, lookup throughput, per-update tiles rewritten, and tile
//! apply-time percentiles. Emitted as `BENCH_tiles.json` for CI
//! artifacts and regression diffing (schema `clue-bench-tiles/1`,
//! documented in DESIGN.md §3).
//!
//! The headline is the update-locality claim behind the tiled backend:
//! because an update rewrites only the tiles its address range touches,
//! the **median tiles rewritten per update stays ≤ 2 even at 10× the
//! seed table size** — update cost is a function of tile geometry, not
//! table scale. Each point replays the same compressed-table diff
//! stream through a fresh [`TileSet`] and then differentially checks
//! the final tiled plane against a trie built from the final table, so
//! a point that drifts is a panic, not a silently wrong number.
//!
//! The artifact path defaults to `BENCH_tiles.json` in the working
//! directory; override with `CLUE_BENCH_TILES_JSON`.

use std::time::Instant;

use clue_bench::{banner, scale};
use clue_compress::{CompressedFib, TableDiff};
use clue_core::{build_plane, BackendKind, LookupPlane};
use clue_fib::gen::FibGen;
use clue_fib::Route;
use clue_tile::{TileConfig, TileSet};
use clue_traffic::{PacketGen, UpdateGen};

/// Base table size; the sweep runs 1×, 5×, and 10× of this.
const SEED_ROUTES: usize = 200_000;
/// Scale factors over `SEED_ROUTES`.
const FACTORS: [usize; 3] = [1, 5, 10];
/// Tile capacities swept at every table scale (the middle one is
/// `TileConfig::DEFAULT_CAPACITY`).
const CAPACITIES: [usize; 3] = [1_024, 4_096, 16_384];
/// Updates replayed per table scale (before empty-diff filtering).
const UPDATES: usize = 2_000;

/// The `q`-th percentile (0..=100) of unsorted integer samples.
fn percentile(samples: &[u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// One table scale, prepared once and shared by every capacity point:
/// the initial compressed snapshot, the diff stream the updates
/// produce, and the final table the replay must land on.
struct Workload {
    routes: usize,
    compressed: usize,
    initial: Vec<Route>,
    diffs: Vec<TableDiff>,
    finals: Vec<Route>,
    addrs: Vec<u32>,
}

impl Workload {
    fn prepare(routes: usize, updates: usize) -> Self {
        let rib = FibGen::new(0xC10E_111E).routes(routes).generate();
        let mut fib = CompressedFib::new(&rib);
        let initial: Vec<Route> = fib.compressed_table().iter().collect();
        let addrs = PacketGen::new(0xC10E_111F).generate(&rib, 65_536);
        // The diff stream is capacity-independent, so compress once and
        // replay the same diffs through every tile geometry.
        let diffs: Vec<TableDiff> = UpdateGen::new(0xC10E_1120)
            .generate(&rib, updates)
            .into_iter()
            .map(|u| fib.apply(u))
            .filter(|d| !d.is_empty())
            .collect();
        let finals: Vec<Route> = fib.compressed_table().iter().collect();
        Workload {
            routes: rib.len(),
            compressed: initial.len(),
            initial,
            diffs,
            finals,
            addrs,
        }
    }
}

struct Point {
    routes: usize,
    compressed: usize,
    capacity: usize,
    tiles: usize,
    occupancy: f64,
    heap_bytes: usize,
    lookups_per_sec: f64,
    updates: usize,
    rewrites_p50: f64,
    rewrites_p99: f64,
    rewrites_mean: f64,
    apply_p50_us: f64,
    apply_p99_us: f64,
    splits: usize,
    merges: usize,
}

impl Point {
    fn to_json(&self) -> String {
        format!(
            "{{\"routes\":{},\"compressed\":{},\"capacity\":{},\"tiles\":{},\
             \"occupancy\":{:.4},\"heap_bytes\":{},\"lookups_per_sec\":{:.1},\
             \"updates\":{},\"rewrites_p50\":{:.1},\"rewrites_p99\":{:.1},\
             \"rewrites_mean\":{:.3},\"apply_p50_us\":{:.1},\"apply_p99_us\":{:.1},\
             \"splits\":{},\"merges\":{}}}",
            self.routes,
            self.compressed,
            self.capacity,
            self.tiles,
            self.occupancy,
            self.heap_bytes,
            self.lookups_per_sec,
            self.updates,
            self.rewrites_p50,
            self.rewrites_p99,
            self.rewrites_mean,
            self.apply_p50_us,
            self.apply_p99_us,
            self.splits,
            self.merges,
        )
    }
}

/// One capacity × scale point: fresh tile set, timed lookups, timed
/// diff replay, then a differential check of the final plane against a
/// trie over the final table. Panics on any disagreement.
fn point(w: &Workload, capacity: usize) -> Point {
    let cfg = TileConfig::with_capacity(capacity);
    let mut set = TileSet::build(cfg, &w.initial);
    let tiles = set.tile_count();
    let occupancy = set.occupancy();

    // Lookup throughput over the snapshot plane — two-level path:
    // index tile then leaf tile.
    let plane = set.plane();
    let heap_bytes = plane.heap_bytes();
    let mut looked = 0u64;
    let mut sink = 0u64;
    let t0 = Instant::now();
    while looked < 1_000_000 {
        for &a in &w.addrs {
            sink = sink.wrapping_add(plane.lookup(a).map_or(0, |r| u64::from(r.next_hop.0)));
        }
        looked += w.addrs.len() as u64;
    }
    let lookups_per_sec = looked as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(sink);

    // Replay the diff stream, recording per-update rewrite counts and
    // apply latency.
    let mut rewrites: Vec<u64> = Vec::with_capacity(w.diffs.len());
    let mut apply_us: Vec<u64> = Vec::with_capacity(w.diffs.len());
    for diff in &w.diffs {
        let t = Instant::now();
        let churn = set.apply(diff);
        apply_us.push(t.elapsed().as_micros() as u64);
        rewrites.push(churn.tiles_rewritten as u64);
    }
    set.check_invariants();
    let total = set.total_churn();

    // Differential check: the replayed tile set must agree with a trie
    // built directly from the final compressed table.
    let final_plane = set.plane();
    let oracle = build_plane(BackendKind::Trie, &w.finals);
    for &a in w.addrs.iter().step_by(7) {
        assert_eq!(
            final_plane.lookup(a),
            oracle.lookup(a),
            "tiled plane diverged at {a:#x} (capacity {capacity})"
        );
    }

    let mean = rewrites.iter().sum::<u64>() as f64 / (rewrites.len() as f64).max(1.0);
    let p = Point {
        routes: w.routes,
        compressed: w.compressed,
        capacity,
        tiles,
        occupancy,
        heap_bytes,
        lookups_per_sec,
        updates: rewrites.len(),
        rewrites_p50: percentile(&rewrites, 50.0),
        rewrites_p99: percentile(&rewrites, 99.0),
        rewrites_mean: mean,
        apply_p50_us: percentile(&apply_us, 50.0),
        apply_p99_us: percentile(&apply_us, 99.0),
        splits: total.splits,
        merges: total.merges,
    };
    println!(
        "{:>9} routes ({:>9} compressed) x cap {:>6}: {:>6} tiles | occ {:>5.1}% | \
         {:>10.0} lookups/s | rewrites p50 {:>4.0} p99 {:>5.0} | apply p99 {:>6.0} us",
        p.routes,
        p.compressed,
        p.capacity,
        p.tiles,
        p.occupancy * 100.0,
        p.lookups_per_sec,
        p.rewrites_p50,
        p.rewrites_p99,
        p.apply_p99_us,
    );
    p
}

fn main() {
    banner(
        "Tiles — tile capacity x table scale -> tiles, occupancy, lookups/s, rewrite locality",
        "writes BENCH_tiles.json (override with CLUE_BENCH_TILES_JSON)",
    );
    let s = scale();
    let updates = ((UPDATES as f64 * s) as usize).max(200);

    let mut points: Vec<Point> = Vec::new();
    for factor in FACTORS {
        let routes = ((SEED_ROUTES * factor) as f64 * s) as usize;
        let w = Workload::prepare(routes.max(10_000), updates);
        println!(
            "scale {factor}x: {} routes -> {} compressed, {} effective diffs",
            w.routes,
            w.compressed,
            w.diffs.len()
        );
        for capacity in CAPACITIES {
            points.push(point(&w, capacity));
        }
    }

    // Acceptance headline: at the largest scale and the default tile
    // capacity, the median update rewrites at most 2 tiles.
    let max_routes = points.iter().map(|p| p.routes).max().expect("points");
    let at_max = points
        .iter()
        .find(|p| p.routes == max_routes && p.capacity == TileConfig::DEFAULT_CAPACITY)
        .expect("default-capacity point at max scale");
    assert!(
        at_max.rewrites_p50 <= 2.0,
        "update locality regressed: median {} tiles rewritten at {} routes",
        at_max.rewrites_p50,
        max_routes
    );
    println!(
        "headline: at {} routes (cap {}), median update rewrites {:.0} tile(s), \
         p99 {:.0}, over {} tiles total",
        at_max.routes, at_max.capacity, at_max.rewrites_p50, at_max.rewrites_p99, at_max.tiles
    );

    let body: Vec<String> = points.iter().map(Point::to_json).collect();
    let json = format!(
        "{{\"schema\":\"clue-bench-tiles/1\",\"scale\":{s},\"seed_routes\":{SEED_ROUTES},\
         \"points\":[{}],\
         \"headline\":{{\"max_routes\":{max_routes},\
         \"default_capacity\":{},\
         \"median_rewrites_at_max\":{:.1},\
         \"p99_rewrites_at_max\":{:.1},\
         \"rewrite_bound_ok\":true}}}}",
        body.join(","),
        TileConfig::DEFAULT_CAPACITY,
        at_max.rewrites_p50,
        at_max.rewrites_p99,
    );
    let path =
        std::env::var("CLUE_BENCH_TILES_JSON").unwrap_or_else(|_| "BENCH_tiles.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("tiles bench written to {path}"),
        Err(e) => {
            eprintln!("tiles bench write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
