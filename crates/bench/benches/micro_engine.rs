//! Criterion micro-benchmarks: engine throughput.
//!
//! Raw software speed of the two engine realizations — the clock-driven
//! simulator (packets per simulated clock are fixed; this measures
//! wall-clock per simulated packet) and the real-threaded engine
//! (actual Mpps on this machine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use clue_compress::onrtc;
use clue_core::engine::{Engine, EngineConfig};
use clue_core::threads::{run_threaded, ThreadedConfig};
use clue_fib::gen::FibGen;
use clue_traffic::PacketGen;

fn bench_engines(c: &mut Criterion) {
    let fib = onrtc(&FibGen::new(9).routes(50_000).generate());
    let trace = PacketGen::new(10).generate(&fib, 50_000);

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);

    group.bench_function("clock_sim_4chips", |b| {
        b.iter(|| {
            let mut engine = Engine::clue(&fib, 1024, EngineConfig::default());
            black_box(engine.run(black_box(&trace)))
        });
    });
    group.bench_function("threaded_4chips", |b| {
        b.iter(|| {
            black_box(run_threaded(
                &fib,
                black_box(&trace),
                ThreadedConfig::default(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
