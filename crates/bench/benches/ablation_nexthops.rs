//! Ablation: compression ratio vs next-hop alphabet size.
//!
//! ONRTC merges regions that resolve identically, so its win shrinks as
//! the next-hop alphabet grows — the effect the NSFIB line of work [8]
//! exploits from the other side (choosing among permissible next hops).

use clue_bench::{banner, pct, scale};
use clue_compress::{compress_with_stats, ortc};
use clue_fib::gen::FibGen;

fn main() {
    banner(
        "Ablation — ONRTC/ORTC compression vs next-hop count",
        "fewer distinct next hops => more mergeable regions => better ratio",
    );
    let routes = ((120_000.0 * scale()) as usize).max(2_000);
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "next hops", "onrtc", "ortc", "(of input)"
    );
    for hops in [2u16, 4, 8, 16, 32, 64, 128] {
        let fib = FibGen::new(0xAB1).routes(routes).next_hops(hops).generate();
        let (_, s) = compress_with_stats(&fib);
        let o = ortc(&fib).len();
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            hops,
            pct(s.ratio()),
            pct(o as f64 / fib.len() as f64),
            fib.len(),
        );
    }
    println!("\n(monotone: the ratio degrades as the alphabet grows)");
}
