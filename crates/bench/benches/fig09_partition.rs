//! Figure 9: partition comparison among SLPL (ID-bit), CLPL (sub-tree),
//! and CLUE (even-range).
//!
//! Paper result: SLPL cannot split evenly; CLPL splits evenly at the
//! cost of redundancy that grows with the partition count; CLUE splits
//! exactly evenly with zero redundancy.

use clue_bench::{banner, standard_compressed, standard_rib};
use clue_partition::{EvenRangePartition, IdBitPartition, PartitionStats, SubTreePartition};

fn main() {
    banner(
        "Figure 9 — partition shapes for SLPL / CLPL / CLUE",
        "SLPL uneven + redundant; CLPL even-ish + redundant; CLUE even, zero redundancy",
    );
    let rib = standard_rib();
    let compressed = standard_compressed();
    println!(
        "input: {} routes (SLPL/CLPL partition the raw table; CLUE partitions the {}-entry ONRTC table)\n",
        rib.len(),
        compressed.len()
    );

    println!(
        "{:>5} | {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
        "n",
        "slpl-max",
        "slpl-min",
        "slpl-redund",
        "clpl-max",
        "clpl-min",
        "clpl-redund",
        "clue-max",
        "clue-min",
        "clue-redund"
    );
    for k in [2u32, 3, 4, 5, 6, 7, 8] {
        let n = 1usize << k;

        let slpl = IdBitPartition::split(&rib, k, 16);
        let s1 = PartitionStats::measure(slpl.buckets(), rib.len());

        let clpl = SubTreePartition::split(&rib, rib.len().div_ceil(n));
        let s2 = PartitionStats::measure(clpl.buckets(), rib.len());

        let clue = EvenRangePartition::split(&compressed, n);
        let s3 = PartitionStats::measure(clue.buckets(), compressed.len());

        println!(
            "{:>5} | {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11} | {:>9} {:>9} {:>11}",
            n,
            s1.max,
            s1.min,
            s1.redundancy,
            s2.max,
            s2.min,
            s2.redundancy,
            s3.max,
            s3.min,
            s3.redundancy
        );
        assert_eq!(s3.redundancy, 0, "CLUE must have zero redundancy");
        assert!(s3.max - s3.min <= 1, "CLUE split not even");
    }
    println!("\n(CLUE max==min up to the division remainder; baselines carry replicas.)");
}
