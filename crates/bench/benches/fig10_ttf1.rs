//! Figure 10: TTF1 (trie update time) — CLUE (ONRTC incremental) vs
//! CLPL (plain trie, the ground truth).
//!
//! Paper result: TTF1-CLUE is a little longer than ground truth
//! (0.19–0.36 µs, mean 0.221 µs); it runs in the control plane and does
//! not interrupt lookups.

use clue_bench::{banner, ttf_series};

fn main() {
    banner(
        "Figure 10 — TTF1 (trie) per update window",
        "CLUE mean ~0.221 us, slightly above the uncompressed ground truth",
    );
    let series = ttf_series(12, 2_000);
    println!(
        "{:>7} {:>14} {:>14} {:>8}",
        "window", "CLUE ttf1(us)", "CLPL ttf1(us)", "ratio"
    );
    let (mut a_sum, mut b_sum) = (0.0, 0.0);
    let mut rows = Vec::new();
    for p in &series.points {
        a_sum += p.clue.ttf1_ns;
        b_sum += p.clpl.ttf1_ns;
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>8.2}",
            p.window,
            p.clue.ttf1_ns / 1e3,
            p.clpl.ttf1_ns / 1e3,
            p.clue.ttf1_ns / p.clpl.ttf1_ns.max(1.0)
        );
        rows.push(format!(
            "{},{:.4},{:.4}",
            p.window,
            p.clue.ttf1_ns / 1e3,
            p.clpl.ttf1_ns / 1e3
        ));
    }
    let n = series.points.len() as f64;
    println!(
        "\nmeans: CLUE {:.4} us vs CLPL (ground truth) {:.4} us — CLUE pays {:.2}x in the control plane",
        a_sum / n / 1e3,
        b_sum / n / 1e3,
        a_sum / b_sum.max(1.0)
    );
    let (min, p50, p99, max, _) =
        clue_bench::TtfSeries::digest_us(&series.clue_samples, |s| s.ttf1_ns);
    println!("CLUE ttf1 percentiles (us): min {min:.3} p50 {p50:.3} p99 {p99:.3} max {max:.3}");
    clue_bench::csv_write("fig10_ttf1", "window,clue_ttf1_us,clpl_ttf1_us", &rows);
}
