//! Ablation: TCAM power — entries activated per search.
//!
//! The motivation behind every partitioned scheme (CoolCAMs, SLPL,
//! CLPL, CLUE): a monolithic TCAM activates all N entries on every
//! search; a partitioned one activates only the addressed partition
//! (plus the DRed partition for overflow lookups). This harness
//! measures mean entries activated per search for a monolithic layout
//! vs CLUE's partitioning at several chip counts.

use clue_bench::{banner, standard_compressed};
use clue_core::{Engine, EngineConfig};
use clue_traffic::PacketGen;

fn main() {
    banner(
        "Ablation — power: mean entries activated per search",
        "partitioning activates ~1/n of the table per lookup (CoolCAMs motivation)",
    );
    let table = standard_compressed();
    let trace = PacketGen::new(0xA11).generate(&table, 300_000);
    println!("table: {} compressed entries\n", table.len());
    println!(
        "{:>6} {:>22} {:>16}",
        "chips", "entries activated/search", "vs monolithic"
    );

    let monolithic = table.len() as f64;
    for chips in [1usize, 2, 4, 8, 16] {
        // Keep offered load ≤ capacity so the run reflects searches,
        // not drops: one packet per (4/chips) clocks saturates exactly.
        let cfg = EngineConfig {
            chips,
            fifo_capacity: 256,
            service_clocks: 4,
            arrival_period: (4 / chips.min(4)).max(1) as u32,
            update_stall: None,
        };
        let mut engine = Engine::clue(&table, 1024, cfg);
        let (report, _) = engine.run(&trace);
        let mean = report.power.mean_activated();
        println!(
            "{:>6} {:>22.0} {:>15.1}%",
            chips,
            mean,
            mean / monolithic * 100.0
        );
    }
    println!("\n(smaller is better; DRed lookups activate only the small DRed partition)");
}
