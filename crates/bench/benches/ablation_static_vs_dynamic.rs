//! Ablation: static (SLPL) vs dynamic (CLUE) redundancy under shifting
//! traffic.
//!
//! The paper's motivating argument (§I, §II-B): SLPL provisions ~25 %
//! static redundancy from long-term statistics, but "statistics in the
//! past does not predict the future well" — bursty traffic shifts the
//! hot set and the static copy stops helping. This harness provisions
//! SLPL from a profiling window, then replays (a) traffic matching the
//! profile and (b) traffic whose popularity ranking has shifted, against
//! both schemes.

use clue_bench::{banner, pct, standard_compressed};
use clue_core::{DredConfig, Engine, EngineConfig};
use clue_partition::{EvenRangePartition, Indexer};
use clue_traffic::workload::{adversarial_mapping, profile};
use clue_traffic::PacketGen;

fn run(
    buckets: &[Vec<clue_fib::Route>],
    index: &clue_partition::RangeIndex,
    mapping: &[usize],
    dred: DredConfig,
    trace: &[u32],
) -> clue_core::EngineReport {
    let cfg = EngineConfig::default();
    let idx = index.clone();
    let mut engine = Engine::from_buckets(
        buckets,
        move |a| idx.bucket_of(a),
        mapping.to_vec(),
        dred,
        cfg,
    );
    let (report, _) = engine.run(trace);
    report
}

fn main() {
    banner(
        "Ablation — static (SLPL) vs dynamic (CLUE) redundancy under shifted traffic",
        "static redundancy from long-term stats fails when the hot set moves",
    );
    let table = standard_compressed();
    let parts = EvenRangePartition::split(&table, 32);
    let (buckets, index) = parts.into_parts();

    // Profiling window and two evaluation windows: same popularity
    // ranking (seed 1), and a shifted ranking (seed 99 permutes which
    // prefixes are hot).
    let profile_trace = PacketGen::new(1)
        .zipf_exponent(1.25)
        .generate(&table, 500_000);
    let same = PacketGen::new(1)
        .zipf_exponent(1.25)
        .generate(&table, 500_000);
    let shifted = PacketGen::new(99)
        .zipf_exponent(1.25)
        .generate(&table, 500_000);

    // Adversarial mapping from the profile (both schemes share it).
    let counts = profile(&profile_trace, 32, |a| index.bucket_of(a));
    let mapping = adversarial_mapping(&counts, 4);

    // SLPL: provision ~4096 static prefixes from the profile.
    let trie = table.to_trie();
    let static_cfg = DredConfig::slpl_from_profile(&trie, &profile_trace, 4_096);
    let dred_cfg = DredConfig::Clue {
        capacity: 1_024, // 4 × 1024 ≈ the same total redundancy budget
        exclude_home: true,
    };

    let cfg = EngineConfig::default();
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "scheme / traffic", "hit rate", "speedup", "drops"
    );
    for (name, dred, trace) in [
        ("SLPL-static / profiled", static_cfg.clone(), &same),
        ("SLPL-static / shifted", static_cfg.clone(), &shifted),
        ("CLUE-DRed  / profiled", dred_cfg.clone(), &same),
        ("CLUE-DRed  / shifted", dred_cfg.clone(), &shifted),
    ] {
        let r = run(&buckets, &index, &mapping, dred, trace);
        println!(
            "{:<26} {:>12} {:>11.2}x {:>10}",
            name,
            pct(r.scheme.hit_rate()),
            r.speedup(cfg.service_clocks),
            r.drops
        );
    }
    println!(
        "\n(the static scheme's hit rate collapses on shifted traffic; DRed adapts \
         — the burstiness argument of the paper's introduction)"
    );
}
