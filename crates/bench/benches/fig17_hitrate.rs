//! Figure 17: DRed size vs hit rate — CLUE above CLPL at every size.
//!
//! Two effects separate the curves: CLUE's DRed i never wastes slots on
//! chip i's own prefixes (the exclude-home rule; CLPL fills all N
//! caches identically), and ONRTC's merged regions cover more addresses
//! per cached entry than CLPL's minimal expansions.
//!
//! Paper conclusion: CLUE achieves a higher hit rate than CLPL with the
//! same DRed size — equivalently, the same hit rate with 3/4 of the
//! storage.

use clue_bench::{adversarial, banner};
use clue_core::{DredConfig, EngineConfig};

fn main() {
    banner(
        "Figure 17 — hit rate vs DRed size",
        "CLUE > CLPL at equal size; same hit rate at ~3/4 the storage",
    );
    let setup = adversarial(32, 4, 1_000_000);
    let cfg = EngineConfig::default();
    let sram_trie = clue_bench::standard_rib().to_trie();

    println!(
        "{:>9} | {:>10} {:>12} | {:>10} {:>12} | {:>12}",
        "DRed size", "CLUE hit", "CLUE stored", "CLPL hit", "CLPL stored", "ablation hit"
    );
    let mut clue_wins = 0usize;
    let mut rows = 0usize;
    for capacity in [32usize, 64, 128, 256, 512, 1024, 2048, 4096] {
        let mut clue = setup.engine(
            DredConfig::Clue {
                capacity,
                exclude_home: true,
            },
            cfg,
        );
        let (ra, _) = clue.run(&setup.trace);
        let clue_stored = clue.scheme_stats().fills;

        let mut clpl = setup.engine(
            DredConfig::Clpl {
                capacity,
                sram_trie: sram_trie.clone(),
            },
            cfg,
        );
        let (rb, _) = clpl.run(&setup.trace);

        // Ablation: CLUE's data-plane fill *without* the exclude-home
        // rule (isolates the 3/4-storage effect).
        let mut ablation = setup.engine(
            DredConfig::Clue {
                capacity,
                exclude_home: false,
            },
            cfg,
        );
        let (rc, _) = ablation.run(&setup.trace);

        println!(
            "{:>9} | {:>9.2}% {:>12} | {:>9.2}% {:>12} | {:>11.2}%",
            capacity,
            ra.scheme.hit_rate() * 100.0,
            clue_stored,
            rb.scheme.hit_rate() * 100.0,
            rb.scheme.fills,
            rc.scheme.hit_rate() * 100.0,
        );
        rows += 1;
        if ra.scheme.hit_rate() >= rb.scheme.hit_rate() {
            clue_wins += 1;
        }
        // The fill-count ratio shows the 3/4 claim directly: CLUE writes
        // N-1 copies per fill, CLPL writes N.
        assert!(
            clue_stored < rb.scheme.fills,
            "CLUE must store fewer copies"
        );
    }
    println!(
        "\nCLUE hit rate >= CLPL in {clue_wins}/{rows} rows; CLUE writes 3 copies per fill vs CLPL's 4 (paper's 3/4 claim)"
    );
}
