//! Lookup-plane scaling: every backend × thread count × key mix,
//! emitted as `BENCH_lookup_scaling.json` for CI artifacts and
//! regression diffing (schema documented in DESIGN.md §3).
//!
//! Each run shares one immutable plane (exactly how workers share a
//! published epoch) across 1..=cores reader threads. Threads walk a
//! common key array from staggered start offsets so the cache-residency
//! profile matches the router's per-chip readers rather than N clones
//! of the same access sequence. Uniform and Zipf(1.25) mixes cover the
//! balanced and skewed ends of the paper's traffic models.
//!
//! The artifact path defaults to `BENCH_lookup_scaling.json` in the
//! working directory; override with `CLUE_BENCH_LOOKUP_JSON=/path`.

use std::time::Instant;

use clue_bench::{banner, scale, standard_compressed};
use clue_core::lookup::{build_plane, BackendKind, LookupPlane};
use clue_fib::Route;
use clue_traffic::PacketGen;

/// Lookups timed per latency sample: coarse enough that the timer call
/// does not dominate a 2-cache-line trie probe, fine enough for a
/// usable p99.
const SAMPLE: usize = 64;

struct Run {
    mix: &'static str,
    threads: usize,
    lookups: usize,
    elapsed_ms: f64,
    per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One measurement: `threads` readers over a shared plane, staggered
/// start offsets on a shared key array, per-SAMPLE-batch latencies.
fn run_once(plane: &dyn LookupPlane, keys: &[u32], mix: &'static str, threads: usize) -> Run {
    let per_thread = keys.len() / threads;
    let start = Instant::now();
    let samples: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let offset = t * keys.len() / threads;
                    let mut lat = Vec::with_capacity(per_thread / SAMPLE + 1);
                    let mut sink = 0u64;
                    for chunk in 0..per_thread.div_ceil(SAMPLE) {
                        let base = offset + chunk * SAMPLE;
                        let n = SAMPLE.min(per_thread - chunk * SAMPLE);
                        let t0 = Instant::now();
                        for i in 0..n {
                            let addr = keys[(base + i) % keys.len()];
                            if let Some(nh) = plane.next_hop(addr) {
                                sink = sink.wrapping_add(u64::from(nh.0));
                            }
                        }
                        lat.push(t0.elapsed().as_nanos() as f64 / n as f64);
                    }
                    std::hint::black_box(sink);
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut all: Vec<f64> = samples.into_iter().flatten().collect();
    all.sort_by(f64::total_cmp);
    let lookups = per_thread * threads;
    Run {
        mix,
        threads,
        lookups,
        elapsed_ms: elapsed * 1e3,
        per_sec: lookups as f64 / elapsed,
        p50_ns: percentile(&all, 0.50),
        p99_ns: percentile(&all, 0.99),
    }
}

fn main() {
    banner(
        "Lookup scaling — backends × threads × key mixes",
        "writes BENCH_lookup_scaling.json (override with CLUE_BENCH_LOOKUP_JSON)",
    );
    let s = scale();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let table = standard_compressed();
    let routes: Vec<Route> = table.iter().collect();
    let lookups = ((400_000.0 * s) as usize).max(20_000);
    let uniform = PacketGen::new(0x10CA)
        .zipf_exponent(0.0)
        .generate(&table, lookups);
    let zipf = PacketGen::new(0x21FF)
        .zipf_exponent(1.25)
        .generate(&table, lookups);
    println!(
        "table: {} compressed routes | {} keys per mix | {} cores",
        routes.len(),
        lookups,
        cores
    );

    // 1, 2, 4, ... plus the full core count.
    let mut thread_counts: Vec<usize> = std::iter::successors(Some(1usize), |&t| Some(t * 2))
        .take_while(|&t| t < cores)
        .collect();
    thread_counts.push(cores);

    let mut backends_json = String::new();
    let mut single_thread_uniform: Vec<(BackendKind, f64)> = Vec::new();
    for kind in BackendKind::ALL {
        let plane = build_plane(kind, &routes);
        println!(
            "\n{} backend: {} entries, {} heap bytes",
            kind,
            plane.len(),
            plane.heap_bytes()
        );
        let mut runs = Vec::new();
        for &threads in &thread_counts {
            for (mix, keys) in [("uniform", &uniform), ("zipf", &zipf)] {
                let r = run_once(plane.as_ref(), keys, mix, threads);
                println!(
                    "  {:7} x{:<3} {:>12.0} lookups/s | p50 {:>7.1} ns | p99 {:>7.1} ns",
                    r.mix, r.threads, r.per_sec, r.p50_ns, r.p99_ns
                );
                if threads == 1 && mix == "uniform" {
                    single_thread_uniform.push((kind, r.per_sec));
                }
                runs.push(r);
            }
        }
        if !backends_json.is_empty() {
            backends_json.push(',');
        }
        let runs_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"mix\":\"{}\",\"threads\":{},\"lookups\":{},\
                     \"elapsed_ms\":{:.3},\"lookups_per_sec\":{:.1},\
                     \"p50_ns\":{:.1},\"p99_ns\":{:.1}}}",
                    r.mix, r.threads, r.lookups, r.elapsed_ms, r.per_sec, r.p50_ns, r.p99_ns
                )
            })
            .collect();
        backends_json.push_str(&format!(
            "{{\"backend\":\"{}\",\"entries\":{},\"heap_bytes\":{},\
             \"runs\":[{}]}}",
            kind,
            plane.len(),
            plane.heap_bytes(),
            runs_json.join(",")
        ));
    }

    // The acceptance headline: the flattened trie must beat the
    // cycle-cost TCAM sim on a single thread.
    let rate = |k: BackendKind| {
        single_thread_uniform
            .iter()
            .find(|(b, _)| *b == k)
            .map_or(0.0, |(_, r)| *r)
    };
    let (tcam1, trie1) = (rate(BackendKind::Tcam), rate(BackendKind::Trie));
    println!(
        "\nsingle-thread uniform: trie {:.0}/s vs tcam {:.0}/s ({}x)",
        trie1,
        tcam1,
        if tcam1 > 0.0 {
            format!("{:.1}", trie1 / tcam1)
        } else {
            "inf".to_owned()
        }
    );

    let json = format!(
        "{{\"schema\":\"clue-bench-lookup-scaling/1\",\"scale\":{s},\
         \"cores\":{cores},\"routes\":{},\"keys\":{},\
         \"trie_vs_tcam_single_thread\":{:.3},\
         \"backends\":[{backends_json}]}}",
        routes.len(),
        lookups,
        if tcam1 > 0.0 { trie1 / tcam1 } else { 0.0 },
    );
    let path = std::env::var("CLUE_BENCH_LOOKUP_JSON")
        .unwrap_or_else(|_| "BENCH_lookup_scaling.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("lookup scaling written to {path}"),
        Err(e) => eprintln!("write to {path} failed: {e}"),
    }
}
