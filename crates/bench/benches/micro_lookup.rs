//! Criterion micro-benchmarks: lookup paths.
//!
//! Compares the software data structures on the hot path: reference
//! trie LPM, the TCAM mirror lookup, the DRed prefix cache, and the
//! IP-address cache baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clue_cache::{IpCache, LruPrefixCache};
use clue_compress::onrtc;
use clue_fib::gen::FibGen;
use clue_fib::Route;
use clue_tcam::{load, TcamTable, UnorderedTcam};
use clue_traffic::PacketGen;

fn bench_lookups(c: &mut Criterion) {
    let fib = FibGen::new(1).routes(50_000).generate();
    let compressed = onrtc(&fib);
    let trace = PacketGen::new(2).generate(&compressed, 10_000);
    let trie = compressed.to_trie();

    let mut tcam = UnorderedTcam::new(compressed.len() + 16);
    load(&mut tcam, compressed.iter());

    let mut prefix_cache = LruPrefixCache::new(4096);
    let mut ip_cache = IpCache::new(4096);
    for &addr in &trace {
        if let Some((p, &nh)) = trie.lookup(addr) {
            prefix_cache.insert(Route::new(p, nh));
            ip_cache.insert(addr, nh);
        }
    }

    let mut group = c.benchmark_group("lookup");
    group.bench_function("trie_lpm", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % trace.len();
            black_box(trie.lookup(black_box(trace[i])))
        });
    });
    group.bench_function("tcam_mirror", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % trace.len();
            black_box(tcam.lookup(black_box(trace[i])))
        });
    });
    group.bench_function("dred_prefix_cache", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % trace.len();
            black_box(prefix_cache.lookup(black_box(trace[i])))
        });
    });
    group.bench_function("ip_cache", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % trace.len();
            black_box(ip_cache.lookup(black_box(trace[i])))
        });
    });
    group.finish();

    // The cited claim: prefix caching beats IP caching at equal size.
    let (p, q) = (prefix_cache.stats().hit_rate(), ip_cache.stats().hit_rate());
    println!("hit rates over the bench trace: prefix cache {p:.3} vs ip cache {q:.3}");
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
