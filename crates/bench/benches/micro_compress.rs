//! Criterion micro-benchmarks: the three compression algorithms and
//! the incremental engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use clue_compress::{leaf_push, onrtc, ortc, CompressedFib};
use clue_fib::gen::FibGen;
use clue_traffic::UpdateGen;

fn bench_compression(c: &mut Criterion) {
    let fib = FibGen::new(3).routes(50_000).generate();

    let mut group = c.benchmark_group("compress_50k");
    group.sample_size(20);
    group.bench_function("onrtc", |b| b.iter(|| black_box(onrtc(black_box(&fib)))));
    group.bench_function("ortc", |b| b.iter(|| black_box(ortc(black_box(&fib)))));
    group.bench_function("leaf_push", |b| {
        b.iter(|| black_box(leaf_push(black_box(&fib))));
    });
    group.finish();

    // Incremental vs from-scratch: the reason TTF1 stays sub-microsecond.
    let updates = UpdateGen::new(4).generate(&fib, 1_000);
    let mut group = c.benchmark_group("update_one_route");
    group.bench_function("incremental_apply", |b| {
        b.iter_batched_ref(
            || (CompressedFib::new(&fib), 0usize),
            |(cf, i)| {
                *i = (*i + 1) % updates.len();
                black_box(cf.apply(updates[*i]));
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
