//! Figure 8 (+ Table I): FIB size before and after ONRTC compression on
//! the 12-router catalog.
//!
//! Paper result: the compressed table averages ~71 % of the original,
//! and compression takes ~39 ms per table. Also reports ORTC and
//! leaf-pushing sizes as the trade-off baselines discussed in §II-A.

use clue_bench::{banner, pct, scale};
use clue_compress::{compress_with_stats, leaf_push, ortc};
use clue_fib::gen::catalog;

fn main() {
    banner(
        "Figure 8 / Table I — FIB compression on 12 routers",
        "compressed size ~= 71% of original on average; ~39 ms per table",
    );
    println!(
        "{:<7} {:<22} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "router", "location", "original", "onrtc", "ratio", "time(ms)", "leaf-push", "ortc"
    );

    let mut total_orig = 0usize;
    let mut total_comp = 0usize;
    for spec in catalog() {
        let rib = spec.generate(scale());
        let (_, stats) = compress_with_stats(&rib);
        let lp = leaf_push(&rib).len();
        let o = ortc(&rib).len();
        total_orig += stats.original;
        total_comp += stats.compressed;
        println!(
            "{:<7} {:<22} {:>9} {:>9} {:>8} {:>9.1} {:>10} {:>9}",
            spec.name,
            spec.location,
            stats.original,
            stats.compressed,
            pct(stats.ratio()),
            stats.millis,
            lp,
            o,
        );
        assert!(o <= stats.compressed, "ORTC must not exceed ONRTC");
        assert!(stats.compressed <= lp, "ONRTC must not exceed leaf-push");
    }
    println!(
        "\naverage compression ratio: {} (paper: ~71%)",
        pct(total_comp as f64 / total_orig as f64)
    );
}
