//! Machine-readable baseline: one run of the headline experiments,
//! emitted as `BENCH_baseline.json` for CI artifacts and regression
//! diffing (schema documented in DESIGN.md).
//!
//! Captures, at the current `CLUE_BENCH_SCALE`:
//!
//! * ONRTC compression ratio over the standard RIB;
//! * router-runtime lookup throughput with a racing update stream,
//!   plus the coalesce ratio and overflow drops of that run;
//! * per-batch TTF1/TTF2/TTF3 means from the CLUE update pipeline.
//!
//! The artifact path defaults to `BENCH_baseline.json` in the working
//! directory; override it with `CLUE_BENCH_JSON=/path/to/file.json`.

use clue_bench::{banner, scale, standard_rib, ttf_series};
use clue_compress::compress_with_stats;
use clue_router::RouterConfig;
use clue_traffic::{PacketGen, UpdateGen};

fn main() {
    banner(
        "Baseline — machine-readable snapshot of the headline numbers",
        "writes BENCH_baseline.json (override with CLUE_BENCH_JSON)",
    );
    let s = scale();

    // 1. Compression: the paper's ~71 % ONRTC ratio (Figure 8 headline).
    let rib = standard_rib();
    let (_, cstats) = compress_with_stats(&rib);
    println!(
        "compression: {} -> {} entries ({:.2}%) in {:.1} ms",
        cstats.original,
        cstats.compressed,
        cstats.ratio() * 100.0,
        cstats.millis
    );

    // 2. Lookup throughput under a racing update stream, through the
    //    live router runtime (workers, epochs, coalescing, DRed).
    let packets = PacketGen::new(0xCAFE).generate(&rib, ((400_000.0 * s) as usize).max(10_000));
    let updates = UpdateGen::new(0xBEEF).generate(&rib, ((8_000.0 * s) as usize).max(500));
    let cfg = RouterConfig::default();
    let report = clue_router::run(&rib, &packets, &updates, &cfg);
    let snap = &report.snapshot;
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    let throughput = snap.completions as f64 / secs;
    println!(
        "router: {} lookups in {:.1} ms ({:.0} pps) | {} epochs | coalesce {:.2}% | {} drops",
        snap.completions,
        secs * 1e3,
        throughput,
        snap.epochs,
        snap.coalesce_ratio * 100.0,
        snap.update_drops,
    );

    // 3. Per-batch TTF through the CLUE pipeline (Figures 10-14 data,
    //    batch-granular so regressions localize to a pipeline stage).
    let per_window = ((1_000.0 * s) as usize).max(100);
    let series = ttf_series(8, per_window);
    let mut batches = String::new();
    let (mut t1, mut t2, mut t3) = (0.0f64, 0.0, 0.0);
    for p in &series.points {
        if !batches.is_empty() {
            batches.push(',');
        }
        batches.push_str(&format!(
            "{{\"batch\":{},\"ttf1_us\":{:.4},\"ttf2_us\":{:.4},\"ttf3_us\":{:.4},\
             \"total_us\":{:.4}}}",
            p.window,
            p.clue.ttf1_ns / 1e3,
            p.clue.ttf2_ns / 1e3,
            p.clue.ttf3_ns / 1e3,
            p.clue.total_ns() / 1e3,
        ));
        t1 += p.clue.ttf1_ns;
        t2 += p.clue.ttf2_ns;
        t3 += p.clue.ttf3_ns;
    }
    let n = series.points.len().max(1) as f64;
    println!(
        "ttf: mean {:.4} us over {} batches (trie {:.4} + tcam {:.4} + dred {:.4})",
        (t1 + t2 + t3) / n / 1e3,
        series.points.len(),
        t1 / n / 1e3,
        t2 / n / 1e3,
        t3 / n / 1e3,
    );

    let json = format!(
        "{{\"schema\":\"clue-bench-baseline/1\",\"scale\":{s},\
         \"compression\":{{\"original\":{},\"compressed\":{},\"ratio\":{:.6},\
         \"millis\":{:.3}}},\
         \"lookup\":{{\"packets\":{},\"updates\":{},\"elapsed_ms\":{:.3},\
         \"throughput_pps\":{:.1},\"epochs\":{},\"coalesce_ratio\":{:.6},\
         \"update_drops\":{},\"dynamic_redundancy\":{}}},\
         \"ttf\":{{\"per_batch\":[{batches}],\
         \"mean\":{{\"ttf1_us\":{:.4},\"ttf2_us\":{:.4},\"ttf3_us\":{:.4},\
         \"total_us\":{:.4}}}}}}}",
        cstats.original,
        cstats.compressed,
        cstats.ratio(),
        cstats.millis,
        packets.len(),
        updates.len(),
        secs * 1e3,
        throughput,
        snap.epochs,
        snap.coalesce_ratio,
        snap.update_drops,
        report.dynamic_redundancy,
        t1 / n / 1e3,
        t2 / n / 1e3,
        t3 / n / 1e3,
        (t1 + t2 + t3) / n / 1e3,
    );
    let path =
        std::env::var("CLUE_BENCH_JSON").unwrap_or_else(|_| "BENCH_baseline.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => {
            eprintln!("baseline write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
