//! Figure 11: TTF2 (TCAM update time) — CLUE's unordered O(1) layout vs
//! the classical prefix-length-ordered layout charged to CLPL.
//!
//! Paper result: CLPL ~0.36 µs/update (≈15 shifts × 24 ns); CLUE 0.024 µs
//! (a single shift). Our CLPL model is slightly more charitable (pure
//! next-hop changes rewrite in place), so its mean sits below the
//! paper's; the ordering and the gap survive.

use clue_bench::{banner, ttf_series};

fn main() {
    banner(
        "Figure 11 — TTF2 (TCAM) per update window",
        "CLPL ~0.36 us/update, CLUE 0.024 us (one 24 ns write)",
    );
    let series = ttf_series(12, 2_000);
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "window", "CLUE ttf2(us)", "CLPL ttf2(us)", "CLPL/CLUE"
    );
    let (mut a_sum, mut b_sum) = (0.0, 0.0);
    let mut rows = Vec::new();
    for p in &series.points {
        a_sum += p.clue.ttf2_ns;
        b_sum += p.clpl.ttf2_ns;
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>12.2}",
            p.window,
            p.clue.ttf2_ns / 1e3,
            p.clpl.ttf2_ns / 1e3,
            p.clpl.ttf2_ns / p.clue.ttf2_ns.max(1.0)
        );
        rows.push(format!(
            "{},{:.4},{:.4}",
            p.window,
            p.clue.ttf2_ns / 1e3,
            p.clpl.ttf2_ns / 1e3
        ));
    }
    println!(
        "\nmeans: CLUE {:.4} us vs CLPL {:.4} us ({:.1}x)",
        a_sum / series.points.len() as f64 / 1e3,
        b_sum / series.points.len() as f64 / 1e3,
        b_sum / a_sum.max(1.0)
    );
    let (_, p50, p99, _, _) = clue_bench::TtfSeries::digest_us(&series.clpl_samples, |s| s.ttf2_ns);
    println!("CLPL ttf2 percentiles (us): p50 {p50:.4} p99 {p99:.4}");
    clue_bench::csv_write("fig11_ttf2", "window,clue_us,clpl_us", &rows);
}
