//! Ablation: cache replacement policies for the DRed prefix cache.
//!
//! CLPL and CLUE both use LRU; the works the paper cites ([18–20])
//! analyzed routing-cache replacement in depth. This harness replays
//! the same flow-structured Zipf trace through LRU / FIFO / LFU /
//! random prefix caches at several sizes, plus the destination-IP cache
//! baseline (prefix caching must dominate it).

use clue_bench::{banner, pct, standard_compressed};
use clue_cache::{Eviction, IpCache, PolicyPrefixCache};
use clue_traffic::PacketGen;

fn main() {
    banner(
        "Ablation — replacement policies for the DRed cache",
        "LRU is the schemes' choice; prefix caching beats IP caching",
    );
    let table = standard_compressed();
    let trie = table.to_trie();
    let trace = PacketGen::new(0xCAC4E)
        .zipf_exponent(1.1)
        .generate(&table, 400_000);

    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "size", "LRU", "FIFO", "LFU", "random", "ip-cache"
    );
    for capacity in [128usize, 512, 2048, 8192] {
        let mut rates = Vec::new();
        for policy in [
            Eviction::Lru,
            Eviction::Fifo,
            Eviction::Lfu,
            Eviction::Random { seed: 42 },
        ] {
            let mut cache = PolicyPrefixCache::new(capacity, policy);
            for &addr in &trace {
                if cache.lookup(addr).is_none() {
                    if let Some((p, &nh)) = trie.lookup(addr) {
                        cache.insert(clue_fib::Route::new(p, nh));
                    }
                }
            }
            rates.push(cache.stats().hit_rate());
        }
        let mut ip = IpCache::new(capacity);
        for &addr in &trace {
            if ip.lookup(addr).is_none() {
                if let Some((_, &nh)) = trie.lookup(addr) {
                    ip.insert(addr, nh);
                }
            }
        }
        println!(
            "{:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            capacity,
            pct(rates[0]),
            pct(rates[1]),
            pct(rates[2]),
            pct(rates[3]),
            pct(ip.stats().hit_rate()),
        );
    }
    println!("\n(prefix caching dominates IP caching at every size; LRU within the best policies)");
}
