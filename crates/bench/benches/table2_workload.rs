//! Table II: workload on 32 even partitions mapped adversarially onto
//! 4 TCAM chips.
//!
//! Paper result: per-partition traffic varies wildly (21.92 % down to
//! 0.00 %); sorting the 32 partitions by load and mapping consecutive
//! groups of 8 to chips gives per-chip shares of 77.88 / 17.43 / 4.54 /
//! 0.16 %.

use clue_bench::{adversarial, banner, pct};
use clue_traffic::workload::{chip_shares, shares};

fn main() {
    banner(
        "Table II — per-partition and per-chip workload (adversarial)",
        "chip shares ~77.88 / 17.43 / 4.54 / 0.16 %",
    );
    let setup = adversarial(32, 4, 2_000_000);
    let bucket_shares = shares(&setup.counts);

    // Rows sorted by share, grouped 8 per chip like the paper's table.
    let mut order: Vec<usize> = (0..32).collect();
    order.sort_by(|&a, &b| setup.counts[b].cmp(&setup.counts[a]));

    println!(
        "{:>5} {:>8} {:<18} {:<18} {:>10}",
        "chip", "bucket", "range low", "range high", "share"
    );
    for (rank, &b) in order.iter().enumerate() {
        let chip = rank / 8 + 1;
        let (low, high) = match (setup.buckets[b].first(), setup.buckets[b].last()) {
            (Some(f), Some(l)) => (f.prefix.low(), l.prefix.high()),
            _ => (0, 0),
        };
        // Print the three hottest buckets of each chip plus an ellipsis,
        // mirroring the paper's elided table.
        if rank % 8 < 3 {
            println!(
                "{:>5} {:>8} {:<18} {:<18} {:>10}",
                chip,
                b,
                dotted(low),
                dotted(high),
                pct(bucket_shares[b])
            );
        } else if rank % 8 == 3 {
            println!(
                "{:>5} {:>8} {:^18} {:^18} {:>10}",
                chip, "...", "...", "...", "..."
            );
        }
    }

    let cs = chip_shares(&setup.counts, &setup.mapping, 4);
    println!("\nper-chip shares (paper: 77.88 / 17.43 / 4.54 / 0.16):");
    for (i, s) in cs.iter().enumerate() {
        println!("  TCAM {}: {}", i + 1, pct(*s));
    }
    assert!(cs[0] > cs[1] && cs[1] > cs[2] && cs[2] >= cs[3]);
}

fn dotted(addr: u32) -> String {
    let o = addr.to_be_bytes();
    format!("{}.{}.{}.{}", o[0], o[1], o[2], o[3])
}
