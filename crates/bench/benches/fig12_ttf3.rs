//! Figure 12: TTF3 (DRed update time) — CLUE's data-plane
//! delete-if-present vs CLPL's control-plane RRC-ME cache repair.
//!
//! Paper result: CLPL 0.18–0.29 µs (mean 0.199 µs), 8.3× CLUE's flat
//! 0.024 µs.

use clue_bench::{banner, ttf_series};

fn main() {
    banner(
        "Figure 12 — TTF3 (DRed) per update window",
        "CLPL mean ~0.199 us = 8.3x CLUE's 0.024 us",
    );
    let series = ttf_series(12, 2_000);
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "window", "CLUE ttf3(us)", "CLPL ttf3(us)", "CLPL/CLUE"
    );
    let (mut a_sum, mut b_sum) = (0.0, 0.0);
    let mut rows = Vec::new();
    for p in &series.points {
        a_sum += p.clue.ttf3_ns;
        b_sum += p.clpl.ttf3_ns;
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>12.2}",
            p.window,
            p.clue.ttf3_ns / 1e3,
            p.clpl.ttf3_ns / 1e3,
            p.clpl.ttf3_ns / p.clue.ttf3_ns.max(1.0)
        );
        rows.push(format!(
            "{},{:.4},{:.4}",
            p.window,
            p.clue.ttf3_ns / 1e3,
            p.clpl.ttf3_ns / 1e3
        ));
    }
    println!(
        "\nmeans: CLUE {:.4} us vs CLPL {:.4} us ({:.1}x; paper 8.3x)",
        a_sum / series.points.len() as f64 / 1e3,
        b_sum / series.points.len() as f64 / 1e3,
        b_sum / a_sum.max(1.0)
    );
    let (_, p50, p99, _, _) = clue_bench::TtfSeries::digest_us(&series.clpl_samples, |s| s.ttf3_ns);
    println!("CLPL ttf3 percentiles (us): p50 {p50:.4} p99 {p99:.4}");
    clue_bench::csv_write("fig12_ttf3", "window,clue_us,clpl_us", &rows);
}
