//! Criterion micro-benchmarks: TCAM update cost under the three layout
//! policies, plus the measured shift counts (the ablation behind
//! Figures 7 and 11).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use clue_fib::gen::FibGen;
use clue_fib::Route;
use clue_tcam::{
    load, CaoTcam, FullyOrderedTcam, PrefixLengthOrderedTcam, TcamTable, UnorderedTcam,
};

fn churn<T: TcamTable>(table: &mut T, routes: &[Route]) {
    for r in routes {
        table.insert(*r).unwrap();
    }
    for r in routes {
        table.delete(r.prefix);
    }
}

fn bench_tcam_updates(c: &mut Criterion) {
    let base = FibGen::new(5).routes(20_000).generate();
    let fresh: Vec<Route> = FibGen::new(6)
        .routes(20_200)
        .generate()
        .iter()
        .filter(|r| !base.contains(r.prefix))
        .take(200)
        .collect();
    let cap = base.len() + fresh.len() + 64;

    let mut group = c.benchmark_group("tcam_churn_200");
    group.sample_size(10);
    group.bench_function("unordered_clue", |b| {
        b.iter_batched_ref(
            || {
                let mut t = UnorderedTcam::new(cap);
                load(&mut t, base.iter());
                t
            },
            |t| churn(black_box(t), &fresh),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("chain_ancestor_ordered_cao", |b| {
        b.iter_batched_ref(
            || {
                let mut t = CaoTcam::new(cap);
                load(&mut t, base.iter());
                t
            },
            |t| churn(black_box(t), &fresh),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("prefix_length_ordered_clpl", |b| {
        b.iter_batched_ref(
            || {
                let mut t = PrefixLengthOrderedTcam::new(cap);
                load(&mut t, base.iter());
                t
            },
            |t| churn(black_box(t), &fresh),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("fully_ordered_naive", |b| {
        b.iter_batched_ref(
            || {
                let mut t = FullyOrderedTcam::new(cap);
                load(&mut t, base.iter());
                t
            },
            |t| churn(black_box(t), &fresh),
            BatchSize::LargeInput,
        );
    });
    group.finish();

    // Report the hardware-relevant number: entry moves per update.
    for (name, stats, ops) in [
        {
            let mut t = UnorderedTcam::new(cap);
            load(&mut t, base.iter());
            t.reset_stats();
            churn(&mut t, &fresh);
            ("unordered (CLUE)", t.stats(), fresh.len() * 2)
        },
        {
            let mut t = CaoTcam::new(cap);
            load(&mut t, base.iter());
            t.reset_stats();
            churn(&mut t, &fresh);
            ("chain-ordered (CAO)", t.stats(), fresh.len() * 2)
        },
        {
            let mut t = PrefixLengthOrderedTcam::new(cap);
            load(&mut t, base.iter());
            t.reset_stats();
            churn(&mut t, &fresh);
            ("length-ordered (CLPL)", t.stats(), fresh.len() * 2)
        },
        {
            let mut t = FullyOrderedTcam::new(cap);
            load(&mut t, base.iter());
            t.reset_stats();
            churn(&mut t, &fresh);
            ("fully ordered (naive)", t.stats(), fresh.len() * 2)
        },
    ] {
        println!(
            "{name}: {:.3} moves/update ({:.3} us at 24 ns/move)",
            stats.moves as f64 / ops as f64,
            stats.moves as f64 / ops as f64 * 24.0 / 1e3
        );
    }
}

criterion_group!(benches, bench_tcam_updates);
criterion_main!(benches);
