//! Ablation: offered load vs goodput, speedup, and queueing.
//!
//! The paper runs the engine at exactly one packet per clock (100 % of
//! aggregate capacity with 4 chips at 4 clocks/lookup). This sweep
//! varies the offered load to show where drops begin, how the queues
//! fill, and how much reordering the balancer causes.

use clue_bench::{adversarial, banner, pct};
use clue_core::{DredConfig, EngineConfig};

fn main() {
    banner(
        "Ablation — offered load sweep (adversarial mapping, 4 chips)",
        "the paper's operating point is 100% offered load (1 pkt/clock)",
    );
    let setup = adversarial(32, 4, 1_000_000);
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>11} {:>10} {:>9}",
        "load", "goodput", "speedup", "hit rate", "mean queue", "max queue", "reorder"
    );
    for period in [4u32, 3, 2, 1] {
        let cfg = EngineConfig {
            chips: 4,
            fifo_capacity: 256,
            service_clocks: 4,
            arrival_period: period,
            update_stall: None,
        };
        let mut engine = setup.engine(
            DredConfig::Clue {
                capacity: 1024,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&setup.trace);
        println!(
            "{:>8} {:>9} {:>8.2}x {:>9} {:>11.1} {:>10} {:>9}",
            pct(cfg.offered_load()),
            pct(r.goodput()),
            r.speedup(cfg.service_clocks),
            pct(r.scheme.hit_rate()),
            r.mean_queue_occupancy(),
            r.max_queue_len,
            r.reorder_high_water,
        );
    }
    println!("\n(drops and deep queues appear only as the load approaches 100%)");
}
