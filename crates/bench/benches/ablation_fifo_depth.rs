//! Ablation: per-chip FIFO depth (the paper fixes it at 256).
//!
//! The FIFO is where the Adaptive Load Balancing Logic absorbs bursts
//! before diverting to DReds. The sweep shows the trade-off measured on
//! the Figure 15 workload: with a warm DRed, diverting *early* is cheap
//! (shallow FIFOs keep hit rate and latency high/low respectively),
//! while deep FIFOs pin packets to the overloaded home chip and only
//! add queueing latency. The paper's 256 buys burst absorption for
//! cold-DRed phases at a modest steady-state cost.

use clue_bench::{adversarial, banner, pct};
use clue_core::{DredConfig, EngineConfig};

fn main() {
    banner(
        "Ablation — FIFO depth sweep (adversarial mapping, DRed = 1024)",
        "the paper fixes the FIFO at 256 entries",
    );
    let setup = adversarial(32, 4, 1_000_000);
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11} {:>12} {:>12}",
        "fifo", "goodput", "speedup", "hit rate", "diversions", "p50 latency", "p99 latency"
    );
    for fifo in [4usize, 16, 64, 256, 1024, 4096] {
        let cfg = EngineConfig {
            chips: 4,
            fifo_capacity: fifo,
            service_clocks: 4,
            arrival_period: 1,
            update_stall: None,
        };
        let mut engine = setup.engine(
            DredConfig::Clue {
                capacity: 1024,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&setup.trace);
        println!(
            "{:>6} {:>9} {:>8.2}x {:>9} {:>11} {:>9} clk {:>9} clk",
            fifo,
            pct(r.goodput()),
            r.speedup(cfg.service_clocks),
            pct(r.scheme.hit_rate()),
            r.diversions,
            r.latency.quantile(0.5),
            r.latency.quantile(0.99),
        );
    }
    println!(
        "\n(with a warm DRed, early diversion is cheap: shallow FIFOs win on both \
         goodput and latency; depth only helps while DReds are cold)"
    );
}
