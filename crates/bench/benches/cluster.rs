//! Machine-readable cluster numbers: shard-count × offered-load →
//! client-observed lookup latency through the proxy, plus failover
//! time and the lost-ack count (which must be zero) when a primary is
//! killed mid-burst. Emitted as `BENCH_cluster.json` for CI artifacts
//! and regression diffing (schema documented in DESIGN.md §3).
//!
//! Topology per shard count: N `Primary` instances (fsync off, each
//! seeded with its slice of the RIB), one warm `Standby` each, and one
//! `Proxy` fronting the lot — all in-process, talking over real
//! loopback TCP with the production wire protocol.
//!
//! The artifact path defaults to `BENCH_cluster.json` in the working
//! directory; override it with `CLUE_BENCH_CLUSTER_JSON=/path`.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use clue_bench::{banner, scale};
use clue_cluster::{
    Primary, PrimaryConfig, Proxy, ProxyConfig, ReplConfig, ShardMap, ShardSpec, Standby,
    StandbyConfig,
};
use clue_fib::gen::FibGen;
use clue_fib::RouteTable;
use clue_net::{ClientConfig, Connection};
use clue_store::StoreConfig;
use clue_traffic::{PacketGen, UpdateGen};

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clue-bench-cluster-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct Cluster {
    dirs: Vec<PathBuf>,
    primaries: Vec<Option<Primary>>,
    standbys: Vec<Standby>,
    proxy: Proxy,
}

fn boot(tag: &str, rib: &RouteTable, shards: usize) -> Cluster {
    let placeholder =
        ShardMap::derive(rib, vec![ShardSpec::primary_only("x:0"); shards]).expect("cuts derive");
    let pcfg = PrimaryConfig {
        store: StoreConfig {
            fsync: false,
            snapshot_every: u64::MAX,
            ..StoreConfig::default()
        },
        repl: ReplConfig {
            idle_poll: Duration::from_millis(5),
            ..ReplConfig::default()
        },
        sync_timeout: Duration::from_secs(5),
        ..PrimaryConfig::default()
    };
    let mut dirs = Vec::new();
    let mut primaries = Vec::new();
    let mut standbys = Vec::new();
    let mut specs = Vec::new();
    for i in 0..shards {
        let dir = bench_dir(&format!("{tag}-{i}"));
        let shard_rib = placeholder.filter_table(rib, i);
        let primary = Primary::start(&dir, Some(&shard_rib), &pcfg).expect("primary boots");
        let standby = Standby::start(StandbyConfig {
            primary_repl: primary.repl_addr().to_string(),
            idle_poll: Duration::from_millis(5),
            reconnect_backoff: Duration::from_millis(20),
            ..StandbyConfig::default()
        })
        .expect("standby boots");
        specs.push(ShardSpec::with_standby(
            primary.local_addr().to_string(),
            standby.local_addr().to_string(),
        ));
        dirs.push(dir);
        primaries.push(Some(primary));
        standbys.push(standby);
    }
    let map = ShardMap::from_cuts(placeholder.cuts().to_vec(), specs).expect("map assembles");
    let deadline = Instant::now() + Duration::from_secs(15);
    for p in primaries.iter().flatten() {
        while p.repl_stats().synced != 1 {
            assert!(Instant::now() < deadline, "standbys never synced");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let mut proxy_cfg = ProxyConfig::new(map);
    proxy_cfg.heartbeat_every = Duration::from_millis(50);
    let proxy = Proxy::start(proxy_cfg).expect("proxy boots");
    Cluster {
        dirs,
        primaries,
        standbys,
        proxy,
    }
}

impl Cluster {
    fn teardown(mut self) {
        self.proxy.stop();
        for p in self.primaries.iter_mut().filter_map(Option::take) {
            let _ = p.stop();
        }
        for s in self.standbys.drain(..) {
            let _ = s.stop();
        }
        for d in &self.dirs {
            let _ = fs::remove_dir_all(d);
        }
    }
}

fn connect(proxy: &Proxy) -> Connection {
    Connection::connect(ClientConfig::to_addr(proxy.local_addr().to_string()))
        .expect("client connects")
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// One latency point: single-address probe lookups through the proxy
/// while a background connection offers `offered_lps` batched lookups
/// per second. Returns (p50_us, p99_us, max_us, achieved_lps).
fn latency_point(
    proxy: &Proxy,
    addrs: &[u32],
    probes: usize,
    offered_lps: u64,
) -> (f64, f64, f64, f64) {
    let stop = AtomicBool::new(false);
    let offered_done = AtomicU64::new(0);
    let mut lat_us = Vec::with_capacity(probes);
    let mut bg_secs = 0.0f64;
    std::thread::scope(|s| {
        s.spawn(|| {
            // Background load: chunks of 32 paced to the offered rate.
            let mut conn = connect(proxy);
            let chunk = 32u64;
            let interval = Duration::from_secs_f64(chunk as f64 / offered_lps as f64);
            let start = Instant::now();
            let mut next = start;
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let lo = (i * 32) % addrs.len();
                let hi = (lo + 32).min(addrs.len());
                if conn.lookup(&addrs[lo..hi]).is_err() {
                    break;
                }
                offered_done.fetch_add((hi - lo) as u64, Ordering::Relaxed);
                i = i.wrapping_add(1);
                next += interval;
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                } else {
                    next = now;
                }
            }
            bg_secs = start.elapsed().as_secs_f64();
            let _ = conn.close();
        });
        // Probe connection: one address per request, client-observed
        // round-trip latency.
        let mut conn = connect(proxy);
        for k in 0..probes {
            let addr = [addrs[k % addrs.len()]];
            let t = Instant::now();
            conn.lookup(&addr).expect("probe lookup answers");
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = conn.close();
        stop.store(true, Ordering::Release);
    });
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let achieved = offered_done.load(Ordering::Relaxed) as f64 / bg_secs.max(1e-9);
    (
        percentile(&lat_us, 0.50),
        percentile(&lat_us, 0.99),
        *lat_us.last().expect("at least one probe"),
        achieved,
    )
}

fn main() {
    banner(
        "Cluster — shards x offered load -> p99 lookup latency; failover time; lost acks",
        "writes BENCH_cluster.json (override with CLUE_BENCH_CLUSTER_JSON)",
    );
    let s = scale();
    let routes = ((60_000.0 * s) as usize).max(2_000);
    let rib = FibGen::new(0xC10E_0007).routes(routes).generate();
    let probes = ((400.0 * s) as usize).clamp(100, 400);
    let n_updates = ((8_000.0 * s) as usize).max(1_000);
    let updates = UpdateGen::new(0xC10E_0008).generate(&rib, n_updates);
    let addrs = PacketGen::new(0xC10E_0009).generate(&rib, 4_096);

    let mut sweep_json = String::new();
    for shards in [1usize, 2, 4] {
        let mut cluster = boot(&format!("lat-{shards}"), &rib, shards);
        let mut points = String::new();
        for offered in [2_000u64, 10_000, 40_000] {
            let (p50, p99, max, achieved) = latency_point(&cluster.proxy, &addrs, probes, offered);
            println!(
                "shards {shards} offered {offered}/s (achieved {achieved:.0}/s): \
                 lookup p50 {p50:.0} us | p99 {p99:.0} us | max {max:.0} us",
            );
            if !points.is_empty() {
                points.push(',');
            }
            points.push_str(&format!(
                "{{\"offered_lps\":{offered},\"achieved_lps\":{achieved:.1},\
                 \"p50_us\":{p50:.1},\"p99_us\":{p99:.1},\"max_us\":{max:.1}}}",
            ));
        }

        // Failover: an update burst through the proxy with shard 0's
        // primary killed halfway. Every accepted update must survive —
        // the client report's drop count is the lost-ack count.
        let mut conn = connect(&cluster.proxy);
        let half = updates.len() / 2;
        for chunk in updates[..half].chunks(32) {
            conn.send_updates(chunk).expect("pre-kill updates land");
        }
        conn.flush_acks().expect("pre-kill acks drain");
        let killed_at = Instant::now();
        drop(cluster.primaries[0].take());
        for chunk in updates[half..].chunks(32) {
            conn.send_updates(chunk).expect("post-kill updates land");
        }
        conn.flush_acks().expect("post-kill acks drain");
        let burst_ms = killed_at.elapsed().as_secs_f64() * 1e3;
        let report = conn.close().expect("client closes");
        assert_eq!(report.accepted, updates.len() as u64, "lost acks");
        assert_eq!(report.dropped, 0, "lost acks");
        assert_eq!(cluster.proxy.failovers(), 1, "exactly one failover");
        let failover_ms = cluster.proxy.failover_ms()[0].expect("failover recorded");
        println!(
            "shards {shards}: killed shard 0 mid-burst -> failover {failover_ms:.1} ms, \
             {} updates acked, 0 lost ({burst_ms:.0} ms post-kill burst)",
            updates.len(),
        );

        if !sweep_json.is_empty() {
            sweep_json.push(',');
        }
        sweep_json.push_str(&format!(
            "{{\"shards\":{shards},\"points\":[{points}],\
             \"failover\":{{\"updates\":{},\"lost_acks\":0,\
             \"failover_ms\":{failover_ms:.2}}}}}",
            updates.len(),
        ));
        cluster.teardown();
    }

    let json = format!(
        "{{\"schema\":\"clue-bench-cluster/1\",\"scale\":{s},\
         \"routes\":{},\"probes\":{probes},\"sweeps\":[{sweep_json}]}}",
        rib.len(),
    );
    let path = std::env::var("CLUE_BENCH_CLUSTER_JSON")
        .unwrap_or_else(|_| "BENCH_cluster.json".to_owned());
    match std::fs::write(&path, format!("{json}\n")) {
        Ok(()) => println!("cluster bench written to {path}"),
        Err(e) => {
            eprintln!("cluster bench write to {path} failed: {e}");
            std::process::exit(1);
        }
    }
}
