//! Ablation: routing-update interference with lookups (premise 1 of
//! Section III-D).
//!
//! The paper's proof ignores update cost, justified by Lin et al.'s
//! observation that with a 1024-entry cache and "only one cache-missed
//! element updated within 5000 clock cycles, the system can still
//! easily achieve 100% throughput", and by CLUE's O(1) update. This
//! harness injects periodic update stalls on every chip and sweeps the
//! update rate until throughput finally degrades — quantifying how much
//! headroom the premise actually has.

use clue_bench::{adversarial, banner, pct};
use clue_core::{DredConfig, EngineConfig};

fn main() {
    banner(
        "Ablation — update interference (premise 1 of the speedup proof)",
        "1 update op / 5000 clocks is negligible; find where it stops being",
    );
    let setup = adversarial(32, 4, 1_000_000);

    println!(
        "{:>18} {:>10} {:>9} {:>9} {:>12}",
        "update interval", "stall ops", "goodput", "speedup", "stall clocks"
    );
    for (interval, ops) in [
        (0u64, 0u32), // baseline: no updates
        (5_000, 1),   // the paper's quoted operating point
        (1_000, 1),
        (100, 1),
        (100, 4),
        (10, 1),
        (10, 4),
    ] {
        let cfg = EngineConfig {
            chips: 4,
            fifo_capacity: 256,
            service_clocks: 4,
            arrival_period: 1,
            update_stall: (interval > 0).then_some((interval, ops)),
        };
        let mut engine = setup.engine(
            DredConfig::Clue {
                capacity: 1024,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&setup.trace);
        let label = if interval == 0 {
            "none".to_owned()
        } else {
            format!("every {interval} clk")
        };
        println!(
            "{:>18} {:>10} {:>9} {:>8.2}x {:>12}",
            label,
            ops,
            pct(r.goodput()),
            r.speedup(cfg.service_clocks),
            r.update_stall_clocks,
        );
    }
    println!(
        "\n(the paper's 5000-clock update interval is far inside the flat region — \
         premise 1 confirmed; degradation needs ~100x more update traffic)"
    );
}
