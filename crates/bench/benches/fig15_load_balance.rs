//! Figure 15: load balancing of the adversarial workload by CLUE's
//! Dynamic Redundancy.
//!
//! Setup (as in the paper): 32 even partitions, hottest 8 on chip 1;
//! FIFO = 256 entries, DRed = 1024 prefixes, one packet arrives per
//! clock, each TCAM takes 4 clocks per lookup.
//!
//! Paper result: the "Original" offered load is wildly uneven
//! (77.88 %…0.16 %); the serviced distribution after DRed balancing is
//! nearly flat.

use clue_bench::{adversarial, banner, pct};
use clue_core::{DredConfig, EngineConfig};
use clue_traffic::workload::chip_shares;

fn main() {
    banner(
        "Figure 15 — offered vs DRed-balanced per-chip load",
        "original 77.88/17.43/4.54/0.16% -> balanced to near-even",
    );
    let setup = adversarial(32, 4, 2_000_000);
    let cfg = EngineConfig {
        chips: 4,
        fifo_capacity: 256,
        service_clocks: 4,
        arrival_period: 1,
        update_stall: None,
    };
    let mut engine = setup.engine(
        DredConfig::Clue {
            capacity: 1024,
            exclude_home: true,
        },
        cfg,
    );
    let (report, _) = engine.run(&setup.trace);

    let original = chip_shares(&setup.counts, &setup.mapping, 4);
    let balanced = report.chip_shares();
    println!("{:>6} {:>12} {:>12}", "chip", "Original", "CLUE");
    for i in 0..4 {
        println!(
            "{:>6} {:>12} {:>12}",
            i + 1,
            pct(original[i]),
            pct(balanced[i])
        );
    }
    println!(
        "\nspeedup {:.2}x, DRed hit rate {:.1}%, drops {} of {} ({}), diversions {}",
        report.speedup(cfg.service_clocks),
        report.scheme.hit_rate() * 100.0,
        report.drops,
        report.arrivals,
        pct(report.drops as f64 / report.arrivals as f64),
        report.diversions
    );
    let spread = balanced.iter().cloned().fold(f64::MIN, f64::max)
        - balanced.iter().cloned().fold(f64::MAX, f64::min);
    let orig_spread = original.iter().cloned().fold(f64::MIN, f64::max)
        - original.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "load spread (max-min share): original {} -> balanced {}",
        pct(orig_spread),
        pct(spread)
    );
    assert!(
        spread < orig_spread / 2.0,
        "DRed failed to flatten the load"
    );
}
