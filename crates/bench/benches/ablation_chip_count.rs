//! Ablation: scaling the chip count N.
//!
//! The paper's analysis (Section III-D) holds for any N ≥ 2: the
//! worst-case speedup is (N−1)h + 1 and the required hit rate
//! (N−2)/(N−1) climbs toward 1. This sweep runs the adversarial
//! experiment at N = 2…8 (offered load scaled to keep the system at
//! 100 % capacity) and checks the bound at every N.

use clue_bench::{banner, standard_compressed};
use clue_core::theory::{required_hit_rate, worst_case_speedup};
use clue_core::{DredConfig, Engine, EngineConfig};
use clue_partition::{EvenRangePartition, Indexer};
use clue_traffic::workload::{adversarial_mapping, profile};
use clue_traffic::PacketGen;

fn main() {
    banner(
        "Ablation — chip count sweep (worst-case mapping at 100% load)",
        "t >= (N-1)h + 1 for every N; required hit rate (N-2)/(N-1) climbs",
    );
    let table = standard_compressed();
    let trace = PacketGen::new(0xF00D)
        .zipf_exponent(1.25)
        .generate(&table, 1_000_000);
    println!(
        "{:>6} {:>10} {:>9} {:>12} {:>12}",
        "chips", "hit rate", "speedup", "(N-1)h+1", "req. h"
    );
    for chips in [2usize, 3, 4, 6, 8] {
        let buckets_n = chips * 8;
        let parts = EvenRangePartition::split(&table, buckets_n);
        let (buckets, index) = parts.into_parts();
        let counts = profile(&trace, buckets_n, |a| index.bucket_of(a));
        let mapping = adversarial_mapping(&counts, chips);
        let cfg = EngineConfig {
            chips,
            fifo_capacity: 256,
            // Keep offered load at 100 % of capacity: N chips at
            // N clocks/lookup serve exactly one packet per clock.
            service_clocks: chips as u32,
            arrival_period: 1,
            update_stall: None,
        };
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| index.bucket_of(a),
            mapping,
            DredConfig::Clue {
                capacity: 1024,
                exclude_home: true,
            },
            cfg,
        );
        let (r, _) = engine.run(&trace);
        let h = r.scheme.hit_rate();
        let t = r.speedup(cfg.service_clocks);
        println!(
            "{:>6} {:>9.2}% {:>8.2}x {:>11.2}x {:>11.3}",
            chips,
            h * 100.0,
            t,
            worst_case_speedup(chips, h),
            required_hit_rate(chips),
        );
        assert!(
            t >= 0.93 * worst_case_speedup(chips, h),
            "bound broken at N={chips}"
        );
    }
    println!("\n(the Section III-D bound holds at every chip count)");
}
