//! Figure 13: TTF2+TTF3 — the part of the update cost that interrupts
//! routing lookups.
//!
//! Paper result: CLUE's TTF2+TTF3 is 4.29 % of CLPL's on average
//! (3.65 % in the worst case).

use clue_bench::{banner, ttf_series};

fn main() {
    banner(
        "Figure 13 — TTF2+TTF3 (lookup-interrupting) per window",
        "CLUE = 4.29% of CLPL on average",
    );
    let series = ttf_series(12, 2_000);
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "window", "CLUE (us)", "CLPL (us)", "CLUE/CLPL"
    );
    let (mut a_sum, mut b_sum) = (0.0, 0.0);
    let mut worst: f64 = 1.0;
    let mut rows = Vec::new();
    for p in &series.points {
        let a = p.clue.ttf2_ns + p.clue.ttf3_ns;
        let b = p.clpl.ttf2_ns + p.clpl.ttf3_ns;
        a_sum += a;
        b_sum += b;
        worst = worst.min(a / b.max(1.0));
        println!(
            "{:>7} {:>14.4} {:>14.4} {:>11.2}%",
            p.window,
            a / 1e3,
            b / 1e3,
            a / b.max(1.0) * 100.0
        );
        rows.push(format!("{},{:.4},{:.4}", p.window, a / 1e3, b / 1e3));
    }
    println!(
        "\nmean: CLUE is {:.2}% of CLPL (paper 4.29%); best window {:.2}%",
        a_sum / b_sum.max(1.0) * 100.0,
        worst * 100.0
    );
    clue_bench::csv_write("fig13_ttf23", "window,clue_us,clpl_us", &rows);
}
