//! Shared plumbing for the paper-reproduction benchmark harnesses.
//!
//! Every `benches/figNN_*.rs` / `benches/tableN_*.rs` binary regenerates
//! one table or figure from the paper (workload, parameter sweep,
//! baselines, and the printed rows/series). The helpers here keep the
//! datasets and the output format consistent across harnesses.
//!
//! Set `CLUE_BENCH_SCALE` (default `1.0`) to shrink the synthetic RIBs
//! for quick runs, e.g. `CLUE_BENCH_SCALE=0.1 cargo bench --bench
//! fig08_compression`.

#![warn(missing_docs)]

use clue_compress::onrtc;
use clue_fib::gen::FibGen;
use clue_fib::RouteTable;

/// Scale factor for dataset sizes, from `CLUE_BENCH_SCALE`.
#[must_use]
pub fn scale() -> f64 {
    std::env::var("CLUE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

/// The standard single-router dataset most figures use (the paper uses
/// rrc01): a synthetic RIB around 390 K routes at scale 1.
#[must_use]
pub fn standard_rib() -> RouteTable {
    let routes = (390_000.0 * scale()) as usize;
    FibGen::new(0xC10E_0001)
        .routes(routes.max(1_000))
        .generate()
}

/// The compressed (ONRTC) form of [`standard_rib`].
#[must_use]
pub fn standard_compressed() -> RouteTable {
    onrtc(&standard_rib())
}

/// One point of the TTF time series: window index plus the mean TTF of
/// CLUE and CLPL over that window.
pub struct TtfPoint {
    /// Window number (x-axis of Figures 10–14).
    pub window: usize,
    /// CLUE's mean TTF over the window.
    pub clue: clue_core::TtfSample,
    /// CLPL's mean TTF over the window.
    pub clpl: clue_core::TtfSample,
}

/// Full output of the shared TTF experiment: per-window means plus the
/// raw per-update samples for percentile digests.
pub struct TtfSeries {
    /// Per-window means (the plotted series).
    pub points: Vec<TtfPoint>,
    /// Every CLUE sample, in trace order.
    pub clue_samples: Vec<clue_core::TtfSample>,
    /// Every CLPL sample, in trace order.
    pub clpl_samples: Vec<clue_core::TtfSample>,
}

impl TtfSeries {
    /// `(min, p50, p99, max, mean)` in microseconds of a component over
    /// one system's samples.
    pub fn digest_us(
        samples: &[clue_core::TtfSample],
        component: impl Fn(&clue_core::TtfSample) -> f64,
    ) -> (f64, f64, f64, f64, f64) {
        let mut s = clue_core::metrics::Summary::new();
        for x in samples {
            s.record(component(x) / 1e3);
        }
        s.digest()
    }
}

/// Runs the shared TTF experiment behind Figures 10–14: one update
/// trace replayed through both complete pipelines, averaged per arrival
/// window.
#[must_use]
pub fn ttf_series(windows: usize, per_window: usize) -> TtfSeries {
    use clue_core::{mean_ttf, ClplPipeline, CluePipeline};
    use clue_traffic::{PacketGen, UpdateGen};

    let rib = standard_rib();
    let updates = UpdateGen::new(0xBEEF).generate(&rib, windows * per_window);
    let warm = PacketGen::new(0xCAFE).generate(&rib, 50_000);

    let mut clue = CluePipeline::new(&rib, 4, 1024, rib.len());
    let mut clpl = ClplPipeline::new(&rib, 4, 1024, rib.len());
    clue.warm(&warm);
    clpl.warm(&warm);

    let mut series = TtfSeries {
        points: Vec::new(),
        clue_samples: Vec::new(),
        clpl_samples: Vec::new(),
    };
    for (window, chunk) in updates.chunks(per_window).enumerate() {
        let a: Vec<_> = chunk.iter().map(|&u| clue.apply(u)).collect();
        let b: Vec<_> = chunk.iter().map(|&u| clpl.apply(u)).collect();
        series.points.push(TtfPoint {
            window,
            clue: mean_ttf(&a),
            clpl: mean_ttf(&b),
        });
        series.clue_samples.extend(a);
        series.clpl_samples.extend(b);
    }
    series
}

/// Writes a CSV artifact when `CLUE_BENCH_CSV` names a directory
/// (silently does nothing otherwise). Each row is already comma-joined.
pub fn csv_write(name: &str, header: &str, rows: &[String]) {
    let Ok(dir) = std::env::var("CLUE_BENCH_CSV") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    let mut text = String::with_capacity(rows.len() * 32 + header.len() + 1);
    text.push_str(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("(csv write to {} failed: {e})", path.display()),
    }
}

/// The adversarial lookup experiment shared by Table II and Figures
/// 15–17: an ONRTC table split into even partitions, a Zipf trace
/// profiled over them, and the hottest partitions stacked onto chip 0.
pub struct Adversarial {
    /// The compressed table.
    pub table: RouteTable,
    /// The even-range buckets.
    pub buckets: Vec<Vec<clue_fib::Route>>,
    /// The range index (Indexing Logic).
    pub index: clue_partition::RangeIndex,
    /// Adversarial bucket→chip mapping.
    pub mapping: Vec<usize>,
    /// Per-bucket traffic counts from the profiling pass.
    pub counts: Vec<u64>,
    /// The packet trace.
    pub trace: Vec<u32>,
}

/// Builds the adversarial experiment with `buckets_n` partitions over
/// `chips` chips and a `packets`-long Zipf trace.
#[must_use]
pub fn adversarial(buckets_n: usize, chips: usize, packets: usize) -> Adversarial {
    use clue_partition::Indexer;

    let table = standard_compressed();
    let parts = clue_partition::EvenRangePartition::split(&table, buckets_n);
    let (buckets, index) = parts.into_parts();
    let trace = clue_traffic::PacketGen::new(0xF00D)
        .zipf_exponent(1.25)
        .generate(&table, packets);
    let counts = clue_traffic::workload::profile(&trace, buckets_n, |a| index.bucket_of(a));
    let mapping = clue_traffic::workload::adversarial_mapping(&counts, chips);
    Adversarial {
        table,
        buckets,
        index,
        mapping,
        counts,
        trace,
    }
}

impl Adversarial {
    /// Builds an engine over this setup with the given redundancy
    /// scheme.
    #[must_use]
    pub fn engine(
        &self,
        dred: clue_core::DredConfig,
        cfg: clue_core::EngineConfig,
    ) -> clue_core::Engine {
        use clue_partition::Indexer;
        let index = self.index.clone();
        clue_core::Engine::from_buckets(
            &self.buckets,
            move |a| index.bucket_of(a),
            self.mapping.clone(),
            dred,
            cfg,
        )
    }
}

/// Prints the harness banner.
pub fn banner(figure: &str, paper_says: &str) {
    println!("==================================================================");
    println!("{figure}");
    println!("paper: {paper_says}");
    println!("scale: {} (set CLUE_BENCH_SCALE to adjust)", scale());
    println!("==================================================================");
}

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // The env var is not set under `cargo test`.
        if std::env::var("CLUE_BENCH_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7788), "77.88%");
    }
}
