//! CLUE: the paper's primary contribution, assembled from the workspace
//! substrates.
//!
//! * [`engine`] — the clock-driven parallel lookup engine of Figure 1:
//!   Indexing Logic, adaptive load balancing over per-chip FIFOs,
//!   DRed-only overflow lookups, and miss bouncing.
//! * [`dred`] — the three redundancy schemes: CLUE's data-plane DRed,
//!   CLPL's control-plane logical caches (RRC-ME), and SLPL's static
//!   redundancy.
//! * [`lookup`] — the multi-backend lookup data plane: the
//!   [`LookupPlane`](lookup::LookupPlane) trait with the cycle-cost
//!   TCAM sim, a flattened 16/8/8 multibit trie, and an entropy-style
//!   interval-compressed FIB behind one interface.
//! * [`update_pipeline`] — the whole incremental update path with TTF
//!   accounting (trie → TCAM → DRed), for both CLUE and CLPL.
//! * [`theory`] — the Section III-D lower bound `t = (N−1)h + 1`.
//! * [`threads`] — a real-thread (crossbeam + parking_lot) realization
//!   of the same pipeline for cross-validation and raw throughput.
//! * [`crc`] / [`codec`] — the shared CRC-32 and update-batch binary
//!   codec used by both the `clue-net` wire protocol and the
//!   `clue-store` write-ahead journal.
//!
//! # Examples
//!
//! Build a four-chip CLUE engine and push a trace through it:
//!
//! ```
//! use clue_compress::onrtc;
//! use clue_core::engine::{Engine, EngineConfig};
//! use clue_fib::gen::FibGen;
//! use clue_traffic::PacketGen;
//!
//! let fib = onrtc(&FibGen::new(1).routes(2_000).generate());
//! let trace = PacketGen::new(2).generate(&fib, 10_000);
//! let cfg = EngineConfig::default();
//! let mut engine = Engine::clue(&fib, 1024, cfg);
//! let (report, _outcomes) = engine.run(&trace);
//! assert!(report.speedup(cfg.service_clocks) > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod crc;
pub mod dred;
pub mod engine;
pub mod lookup;
pub mod metrics;
pub mod reorder;
pub mod theory;
pub mod threads;
pub mod update_pipeline;

pub use dred::{DredConfig, RedundancyScheme, SchemeStats};
pub use engine::{balanced_mapping, Engine, EngineConfig, EngineReport, Outcome};
pub use lookup::{
    backend_available, build_plane, plane_from_table, register_tiled_builder, try_build_plane,
    BackendKind, LookupPlane, PlaneBuilder,
};
pub use reorder::ReorderBuffer;
pub use theory::{implied_hit_rate, required_hit_rate, worst_case_speedup};
pub use threads::{run_threaded, ThreadedConfig, ThreadedReport};
pub use update_pipeline::{mean_ttf, ClplPipeline, CluePipeline, TtfSample};
