//! The shared binary codec for route-update batches, plus the strict
//! bounds-checked [`Cursor`] every decoder in the workspace builds on.
//!
//! Two independent byte streams carry update batches: `clue-net` frames
//! them onto TCP, and `clue-store` journals them into the write-ahead
//! log. Both must agree byte-for-byte (a journaled batch is the durable
//! twin of an acknowledged wire batch), so the encoding lives here,
//! beneath both.
//!
//! All integers are big-endian. A batch encodes as a `u32` count
//! followed by tagged records (`1` announce: bits/len/next-hop, `2`
//! withdraw: bits/len). Decoders reject unknown tags, out-of-range
//! prefix lengths, truncation, and trailing garbage, so a mis-framed
//! payload cannot half-parse.

use std::io::{self, ErrorKind};

use clue_fib::{NextHop, Prefix, Update};

/// Announce record tag.
const ANNOUNCE: u8 = 1;
/// Withdraw record tag.
const WITHDRAW: u8 = 2;

/// An `InvalidData` error with a formatted message — the uniform
/// rejection every strict decoder in the workspace returns.
#[must_use]
pub fn bad_data(msg: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// A strict little cursor: every read is bounds-checked and the caller
/// asserts emptiness at the end with [`Cursor::finish`].
pub struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data(format!("payload truncated at byte {}", self.at)))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on exhaustion.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on exhaustion.
    pub fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on exhaustion.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` on exhaustion.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.at
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` if bytes remain.
    pub fn finish(self) -> io::Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )))
        }
    }
}

/// Encodes a batch of route updates.
#[must_use]
pub fn encode_updates(batch: &[Update]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + batch.len() * 8);
    buf.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for u in batch {
        match *u {
            Update::Announce { prefix, next_hop } => {
                buf.push(ANNOUNCE);
                buf.extend_from_slice(&prefix.bits().to_be_bytes());
                buf.push(prefix.len());
                buf.extend_from_slice(&next_hop.0.to_be_bytes());
            }
            Update::Withdraw { prefix } => {
                buf.push(WITHDRAW);
                buf.extend_from_slice(&prefix.bits().to_be_bytes());
                buf.push(prefix.len());
            }
        }
    }
    buf
}

/// Decodes a batch of route updates.
///
/// # Errors
///
/// Fails with `InvalidData` on truncation, trailing garbage, unknown
/// record tags, or a prefix length beyond 32.
pub fn decode_updates(payload: &[u8]) -> io::Result<Vec<Update>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let tag = c.u8()?;
        let bits = c.u32()?;
        let len = c.u8()?;
        if len > 32 {
            return Err(bad_data(format!("update {i}: prefix length {len} > 32")));
        }
        let prefix = Prefix::new(bits, len);
        out.push(match tag {
            ANNOUNCE => Update::Announce {
                prefix,
                next_hop: NextHop(c.u16()?),
            },
            WITHDRAW => Update::Withdraw { prefix },
            other => return Err(bad_data(format!("update {i}: unknown tag {other}"))),
        });
    }
    c.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix {
        Prefix::new(bits, len)
    }

    #[test]
    fn updates_round_trip() {
        let batch = vec![
            Update::Announce {
                prefix: p(0x0A00_0000, 8),
                next_hop: NextHop(7),
            },
            Update::Withdraw {
                prefix: p(0xC0A8_0000, 16),
            },
            Update::Announce {
                prefix: p(0, 0),
                next_hop: NextHop(u16::MAX),
            },
        ];
        assert_eq!(decode_updates(&encode_updates(&batch)).unwrap(), batch);
        assert_eq!(decode_updates(&encode_updates(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let good = encode_updates(&[Update::Withdraw {
            prefix: p(0x0A00_0000, 8),
        }]);
        assert!(decode_updates(&good[..good.len() - 1]).is_err());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_updates(&padded).is_err());
        // A count promising more records than the payload holds.
        let mut forged = good;
        forged[3] = 200;
        assert!(decode_updates(&forged).is_err());
    }

    #[test]
    fn bad_tags_and_lengths_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(9); // unknown tag
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.push(8);
        assert!(decode_updates(&buf).is_err());

        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(WITHDRAW);
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.push(33); // prefix length out of range
        assert!(decode_updates(&buf).is_err());
    }

    #[test]
    fn cursor_rejects_reads_past_the_end() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u16().unwrap(), 0x0102);
        assert!(c.u32().is_err(), "only one byte left");
    }
}
