//! A real-thread validation of the parallel lookup engine.
//!
//! The clock-driven [`Engine`](crate::engine::Engine) models Figure 1's
//! hardware; this module re-implements the same pipeline with actual
//! concurrency — one OS thread per TCAM chip, bounded crossbeam channels
//! as the FIFOs, shared DReds behind `parking_lot` mutexes, and a
//! tag-ordered collector — so the architecture's behaviour (correct
//! results under diversion and bouncing, load spreading) can be
//! cross-checked outside the simulator, and raw software throughput can
//! be benchmarked.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use clue_cache::LruPrefixCache;
use clue_fib::{NextHop, Route, RouteTable, Trie};
use clue_partition::{EvenRangePartition, Indexer};

/// Configuration for the threaded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadedConfig {
    /// Worker (chip) count.
    pub chips: usize,
    /// Bounded channel capacity (the FIFO of Figure 1).
    pub fifo_capacity: usize,
    /// Per-chip DRed capacity.
    pub dred_capacity: usize,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            chips: 4,
            fifo_capacity: 256,
            dred_capacity: 1024,
        }
    }
}

/// Result of a threaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedReport {
    /// Packets completed (all of them — the threaded engine blocks
    /// instead of dropping).
    pub completions: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Lookups served per worker.
    pub serviced_per_chip: Vec<u64>,
    /// Packets diverted off a full home FIFO.
    pub diversions: u64,
    /// DRed hits across all workers.
    pub dred_hits: u64,
    /// DRed misses (bounced home).
    pub dred_misses: u64,
}

impl ThreadedReport {
    /// Throughput in packets per second.
    #[must_use]
    pub fn pps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completions as f64 / self.elapsed.as_secs_f64()
    }
}

enum Job {
    Home { addr: u32, tag: u64, bounced: bool },
    Dred { addr: u32, tag: u64 },
    Quit,
}

struct Shared {
    dreds: Vec<Mutex<LruPrefixCache>>,
    serviced: Vec<AtomicU64>,
    dred_hits: AtomicU64,
    dred_misses: AtomicU64,
}

/// Runs `trace` through a threaded CLUE engine built over the
/// (non-overlapping) `table` and returns the report plus per-packet
/// results in arrival order.
///
/// # Panics
///
/// Panics if `table` overlaps, is empty, or `cfg` is degenerate.
#[must_use]
pub fn run_threaded(
    table: &RouteTable,
    trace: &[u32],
    cfg: ThreadedConfig,
) -> (ThreadedReport, Vec<Option<NextHop>>) {
    assert!(cfg.chips > 0 && cfg.fifo_capacity > 0 && cfg.dred_capacity > 0);
    let parts = EvenRangePartition::split(table, cfg.chips);
    let (buckets, index) = parts.into_parts();

    let shared = Arc::new(Shared {
        dreds: (0..cfg.chips)
            .map(|_| Mutex::new(LruPrefixCache::new(cfg.dred_capacity)))
            .collect(),
        serviced: (0..cfg.chips).map(|_| AtomicU64::new(0)).collect(),
        dred_hits: AtomicU64::new(0),
        dred_misses: AtomicU64::new(0),
    });

    // Per-worker channels: a bounded "FIFO" for fresh work and an
    // unbounded lane for bounced jobs (so bouncing can never deadlock).
    let mut fifo_tx = Vec::new();
    let mut fifo_rx = Vec::new();
    let mut bounce_tx = Vec::new();
    let mut bounce_rx = Vec::new();
    for _ in 0..cfg.chips {
        let (tx, rx) = bounded::<Job>(cfg.fifo_capacity);
        fifo_tx.push(tx);
        fifo_rx.push(rx);
        let (tx, rx) = unbounded::<Job>();
        bounce_tx.push(tx);
        bounce_rx.push(rx);
    }
    let (done_tx, done_rx) = unbounded::<(u64, Option<NextHop>, usize)>();

    let start = Instant::now();
    let mut workers = Vec::new();
    for chip in 0..cfg.chips {
        let trie: Trie<NextHop> = buckets[chip]
            .iter()
            .map(|r| (r.prefix, r.next_hop))
            .collect();
        let shared = Arc::clone(&shared);
        let my_fifo = fifo_rx[chip].clone();
        let my_bounce = bounce_rx[chip].clone();
        let done = done_tx.clone();
        let home_bounce_tx: Vec<Sender<Job>> = bounce_tx.clone();
        let index = index.clone();
        workers.push(std::thread::spawn(move || {
            worker_loop(
                chip,
                &trie,
                &shared,
                &my_fifo,
                &my_bounce,
                &done,
                &home_bounce_tx,
                &index,
            );
        }));
    }
    drop(done_tx);

    // Dispatcher (this thread): Indexing Logic + Adaptive Load Balancer.
    let mut diversions = 0u64;
    for (tag, &addr) in trace.iter().enumerate() {
        let home = index.bucket_of(addr);
        let job = Job::Home {
            addr,
            tag: tag as u64,
            bounced: false,
        };
        if let Err(err) = fifo_tx[home].try_send(job) {
            // Home FIFO full → idlest queue, DRed-only lookup.
            diversions += 1;
            let job = match err.into_inner() {
                Job::Home { addr, tag, .. } => Job::Dred { addr, tag },
                other => other,
            };
            let idlest = (0..cfg.chips)
                .min_by_key(|&c| fifo_tx[c].len())
                .expect("chips > 0");
            // Blocking send: the threaded engine applies backpressure
            // instead of dropping.
            fifo_tx[idlest].send(job).expect("worker alive");
        }
    }

    // Collect every completion, then shut the workers down.
    let mut results: Vec<Option<NextHop>> = vec![None; trace.len()];
    let mut completions = 0u64;
    while completions < trace.len() as u64 {
        let (tag, nh, _chip) = done_rx.recv().expect("workers alive until quit");
        results[tag as usize] = nh;
        completions += 1;
    }
    for tx in &fifo_tx {
        tx.send(Job::Quit).expect("worker alive");
    }
    for w in workers {
        w.join().expect("worker exits cleanly");
    }
    let elapsed = start.elapsed();

    let report = ThreadedReport {
        completions,
        elapsed,
        serviced_per_chip: shared
            .serviced
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        diversions,
        dred_hits: shared.dred_hits.load(Ordering::Relaxed),
        dred_misses: shared.dred_misses.load(Ordering::Relaxed),
    };
    (report, results)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    chip: usize,
    trie: &Trie<NextHop>,
    shared: &Shared,
    fifo: &Receiver<Job>,
    bounce: &Receiver<Job>,
    done: &Sender<(u64, Option<NextHop>, usize)>,
    bounce_tx: &[Sender<Job>],
    index: &clue_partition::RangeIndex,
) {
    loop {
        // Bounced jobs first (they have been waiting longest); when both
        // lanes are empty, block on *either* — blocking on the FIFO alone
        // would deadlock a worker whose last pending job arrives on the
        // bounce lane after it went to sleep.
        let job = match bounce.try_recv() {
            Ok(job) => job,
            Err(_) => {
                crossbeam::channel::select! {
                    recv(bounce) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                    recv(fifo) -> job => match job {
                        Ok(job) => job,
                        Err(_) => return,
                    },
                }
            }
        };
        match job {
            Job::Quit => return,
            Job::Home { addr, tag, bounced } => {
                shared.serviced[chip].fetch_add(1, Ordering::Relaxed);
                let matched = trie.lookup(addr).map(|(p, &nh)| Route::new(p, nh));
                if bounced {
                    if let Some(route) = matched {
                        // CLUE fill: all DReds except this chip's.
                        for (i, dred) in shared.dreds.iter().enumerate() {
                            if i != chip {
                                dred.lock().insert(route);
                            }
                        }
                    }
                }
                done.send((tag, matched.map(|r| r.next_hop), chip))
                    .expect("collector alive");
            }
            Job::Dred { addr, tag } => {
                shared.serviced[chip].fetch_add(1, Ordering::Relaxed);
                let hit = shared.dreds[chip].lock().lookup(addr);
                match hit {
                    Some(nh) => {
                        shared.dred_hits.fetch_add(1, Ordering::Relaxed);
                        done.send((tag, Some(nh), chip)).expect("collector alive");
                    }
                    None => {
                        shared.dred_misses.fetch_add(1, Ordering::Relaxed);
                        let home = index.bucket_of(addr);
                        bounce_tx[home]
                            .send(Job::Home {
                                addr,
                                tag,
                                bounced: true,
                            })
                            .expect("home worker alive");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;
    use clue_traffic::PacketGen;

    fn setup() -> (RouteTable, Vec<u32>) {
        let fib = onrtc(&FibGen::new(41).routes(3_000).generate());
        let trace = PacketGen::new(42).generate(&fib, 30_000);
        (fib, trace)
    }

    #[test]
    fn threaded_results_match_reference_trie() {
        let (fib, trace) = setup();
        let reference = fib.to_trie();
        let (report, results) = run_threaded(&fib, &trace, ThreadedConfig::default());
        assert_eq!(report.completions, trace.len() as u64);
        for (&addr, nh) in trace.iter().zip(&results) {
            assert_eq!(
                *nh,
                reference.lookup(addr).map(|(_, &v)| v),
                "divergence at {addr:#x}"
            );
        }
    }

    #[test]
    fn all_workers_participate() {
        let (fib, trace) = setup();
        let (report, _) = run_threaded(&fib, &trace, ThreadedConfig::default());
        assert_eq!(report.serviced_per_chip.len(), 4);
        assert!(
            report.serviced_per_chip.iter().all(|&s| s > 0),
            "idle worker: {:?}",
            report.serviced_per_chip
        );
        assert!(report.pps() > 0.0);
    }

    #[test]
    fn tiny_fifo_forces_diversions_and_stays_correct() {
        let (fib, trace) = setup();
        let cfg = ThreadedConfig {
            chips: 4,
            fifo_capacity: 2,
            dred_capacity: 512,
        };
        let reference = fib.to_trie();
        let (report, results) = run_threaded(&fib, &trace, cfg);
        assert!(report.diversions > 0, "tiny FIFOs must overflow");
        assert!(report.dred_hits + report.dred_misses > 0);
        for (&addr, nh) in trace.iter().zip(&results) {
            assert_eq!(*nh, reference.lookup(addr).map(|(_, &v)| v));
        }
    }

    #[test]
    fn single_worker_still_completes() {
        let (fib, trace) = setup();
        let cfg = ThreadedConfig {
            chips: 1,
            fifo_capacity: 64,
            dred_capacity: 64,
        };
        let (report, _) = run_threaded(&fib, &trace[..5_000], cfg);
        assert_eq!(report.completions, 5_000);
    }
}
