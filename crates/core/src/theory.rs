//! The lower-bound analysis of Section III-D.
//!
//! In the worst case all traffic targets one TCAM; the other `N − 1`
//! chips contribute only through their DReds. With DRed hit rate `h`,
//! the achievable speedup factor is
//!
//! ```text
//! t = (N − 1)·h + 1
//! ```
//!
//! and sustaining `t ≥ N − 1` requires `h ≥ (N − 2)/(N − 1)`. Real
//! traffic always does at least this well (Figure 16), which is what the
//! engine integration tests assert.

/// Worst-case speedup factor for `n` chips at DRed hit rate `h`
/// (equation (5) of the paper).
///
/// # Panics
///
/// Panics if `n < 2` or `h ∉ [0, 1]`.
#[must_use]
pub fn worst_case_speedup(n: usize, h: f64) -> f64 {
    assert!(n >= 2, "the parallel system needs at least two chips");
    assert!((0.0..=1.0).contains(&h), "hit rate must be in [0, 1]");
    (n as f64 - 1.0) * h + 1.0
}

/// Minimum DRed hit rate for the system to keep a speedup of `n − 1`
/// in the worst case (equation (4)).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn required_hit_rate(n: usize) -> f64 {
    assert!(n >= 2, "the parallel system needs at least two chips");
    (n as f64 - 2.0) / (n as f64 - 1.0)
}

/// Solves equation (3) for the hit rate implied by an observed speedup:
/// `h = (t − 1)/(N − 1)` — the inverse of [`worst_case_speedup`].
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn implied_hit_rate(n: usize, t: f64) -> f64 {
    assert!(n >= 2, "the parallel system needs at least two chips");
    (t - 1.0) / (n as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_hit_rate_gives_full_parallelism() {
        assert!((worst_case_speedup(4, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_hit_rate_degenerates_to_one_chip() {
        assert!((worst_case_speedup(4, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_chips_need_two_thirds() {
        assert!((required_hit_rate(4) - 2.0 / 3.0).abs() < 1e-12);
        // And that hit rate indeed yields t = N − 1.
        let t = worst_case_speedup(4, required_hit_rate(4));
        assert!((t - 3.0).abs() < 1e-12);
    }

    #[test]
    fn implied_inverts_speedup() {
        for &h in &[0.0, 0.3, 0.8, 1.0] {
            let t = worst_case_speedup(8, h);
            assert!((implied_hit_rate(8, t) - h).abs() < 1e-12);
        }
    }

    #[test]
    fn two_chip_system_needs_no_cache() {
        assert_eq!(required_hit_rate(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_chip() {
        let _ = worst_case_speedup(1, 0.5);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn rejects_bad_hit_rate() {
        let _ = worst_case_speedup(4, 1.5);
    }
}
