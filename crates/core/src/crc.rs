//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) computed with
//! a compile-time table.
//!
//! This is the single checksum implementation shared by everything in
//! the workspace that frames bytes for an unreliable medium: the
//! `clue-net` wire protocol (socket frames) and the `clue-store`
//! write-ahead journal and snapshot files (disk records). The workspace
//! carries no external dependencies, so the checksum is hand-rolled;
//! the known-answer test below pins it to the standard
//! (`crc32(b"123456789") == 0xCBF4_3926`), which is what `zlib`,
//! Ethernet, and every other IEEE-CRC implementation produce.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Feeds `data` into a running (pre-final-XOR) CRC state. Start from
/// `0xFFFF_FFFF` and XOR with `0xFFFF_FFFF` when done; [`crc32`] does
/// both for the single-shot case.
#[must_use]
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The universal CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_single_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"CLUE frame payload".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), good, "bit {i} flip undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
