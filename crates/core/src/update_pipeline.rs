//! The whole incremental update pipeline and its TTF accounting
//! (Section IV, Figures 10–14).
//!
//! An update message takes effect only after three stages:
//!
//! 1. **trie update** — control-plane computation (TTF1, measured as
//!    wall-clock time);
//! 2. **TCAM update** — slot writes/moves on the lookup TCAMs (TTF2 =
//!    operations × 24 ns);
//! 3. **DRed update** — synchronizing the redundancy storage (TTF3).
//!
//! Two complete pipelines are provided:
//!
//! * [`CluePipeline`] — ONRTC incremental trie + unordered TCAM (O(1)
//!   per entry) + DRed delete-if-present. The trie stage is slightly
//!   more expensive than a raw trie (it maintains the compressed form);
//!   the TCAM/DRed stages collapse to a handful of writes.
//! * [`ClplPipeline`] — raw trie (ground-truth TTF1) +
//!   prefix-length-ordered TCAM (the Figure 7(b) layout, ~15 moves per
//!   update) + RRC-ME-style cache repair that must interrogate each
//!   logical cache from the control plane.
//!
//! Cost-model note (documented asymmetry): CLUE's DRed synchronization
//! is driven by the data plane, which already knows each DRed's
//! contents through its local mirror, so only *actual* DRed writes cost
//! TCAM cycles. CLPL's control plane has no such mirror; each repair
//! pays one probe per cache per affected prefix plus the invalidation
//! writes.

use std::time::Instant;

use clue_cache::LruPrefixCache;
use clue_compress::CompressedFib;
use clue_fib::{NextHop, Route, RouteTable, Trie, Update};
use clue_tcam::{PrefixLengthOrderedTcam, TcamTable, TcamTiming, UnorderedTcam, UpdateCost};

/// The three-part Time-To-Fresh of one update message.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TtfSample {
    /// Trie (control-plane) computation time, nanoseconds.
    pub ttf1_ns: f64,
    /// TCAM update time, nanoseconds.
    pub ttf2_ns: f64,
    /// DRed/cache synchronization time, nanoseconds.
    pub ttf3_ns: f64,
}

impl TtfSample {
    /// Total TTF.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.ttf1_ns + self.ttf2_ns + self.ttf3_ns
    }
}

/// Mean of each TTF component over a window of samples.
#[must_use]
pub fn mean_ttf(samples: &[TtfSample]) -> TtfSample {
    if samples.is_empty() {
        return TtfSample::default();
    }
    let n = samples.len() as f64;
    TtfSample {
        ttf1_ns: samples.iter().map(|s| s.ttf1_ns).sum::<f64>() / n,
        ttf2_ns: samples.iter().map(|s| s.ttf2_ns).sum::<f64>() / n,
        ttf3_ns: samples.iter().map(|s| s.ttf3_ns).sum::<f64>() / n,
    }
}

/// CLUE's end-to-end update pipeline.
#[derive(Debug)]
pub struct CluePipeline {
    fib: CompressedFib,
    tcam: UnorderedTcam,
    dreds: Vec<LruPrefixCache>,
    timing: TcamTiming,
}

impl CluePipeline {
    /// Builds the pipeline: compresses `table`, loads the compressed
    /// entries into an unordered TCAM with `headroom` spare slots, and
    /// attaches `chips` DReds of `dred_capacity` prefixes.
    ///
    /// # Panics
    ///
    /// Panics if parameters are degenerate (zero chips/capacity).
    #[must_use]
    pub fn new(table: &RouteTable, chips: usize, dred_capacity: usize, headroom: usize) -> Self {
        assert!(chips > 0 && dred_capacity > 0);
        let fib = CompressedFib::new(table);
        let compressed = fib.compressed_table();
        let mut tcam = UnorderedTcam::new(compressed.len() * 2 + headroom + 64);
        clue_tcam::load(&mut tcam, compressed.iter());
        CluePipeline {
            fib,
            tcam,
            dreds: (0..chips)
                .map(|_| LruPrefixCache::new(dred_capacity))
                .collect(),
            timing: TcamTiming::default(),
        }
    }

    /// Pre-fills the DReds by resolving `addrs` against the compressed
    /// table (so TTF3 has realistic victims).
    pub fn warm(&mut self, addrs: &[u32]) {
        for &addr in addrs {
            if let Some((p, &nh)) = self.fib.compressed().lookup(addr) {
                for dred in &mut self.dreds {
                    dred.insert(Route::new(p, nh));
                }
            }
        }
    }

    /// Applies one update through all three stages.
    pub fn apply(&mut self, update: Update) -> TtfSample {
        self.apply_with_diff(update).0
    }

    /// Applies one update through all three stages and also returns the
    /// entry-level [`TableDiff`] the trie stage produced.
    ///
    /// The diff is what a data plane mirroring the compressed table
    /// (e.g. the `clue-router` runtime's worker DReds) needs to stay
    /// synchronized: deleted and modified prefixes must be flushed from
    /// any redundancy storage that may hold them.
    pub fn apply_with_diff(&mut self, update: Update) -> (TtfSample, clue_compress::TableDiff) {
        // Stage 1: trie (measures itself).
        let diff = self.fib.apply(update);
        let ttf1_ns = self.fib.last_update_time().as_nanos() as f64;

        // Stage 2: TCAM. Deletes first so capacity is available.
        let mut cost = UpdateCost::default();
        for &p in &diff.deletes {
            cost += self.tcam.delete(p).expect("diff deletes an existing entry");
        }
        for r in diff.modifies.iter().chain(&diff.inserts) {
            cost += self
                .tcam
                .insert(*r)
                .expect("TCAM sized with headroom for the diff");
        }
        let ttf2_ns = self.timing.cost_ns(cost);

        // Stage 3: DRed. The paper's rule: inserts need no DRed action;
        // a delete is "just look it up in the DRed; if it exists,
        // delete it" — one broadcast search across the DRed partitions
        // (24 ns) plus a write wherever the entry actually exists.
        let mut searches = 0u64;
        let mut dred_writes = 0u64;
        for &p in &diff.deletes {
            searches += 1;
            for dred in &mut self.dreds {
                if dred.remove(p).is_some() {
                    dred_writes += 1;
                }
            }
        }
        for m in &diff.modifies {
            searches += 1;
            for dred in &mut self.dreds {
                if dred.remove(m.prefix).is_some() {
                    dred.insert(*m);
                    dred_writes += 1;
                }
            }
        }
        let ttf3_ns =
            searches as f64 * self.timing.search_ns + dred_writes as f64 * self.timing.write_ns;

        (
            TtfSample {
                ttf1_ns,
                ttf2_ns,
                ttf3_ns,
            },
            diff,
        )
    }

    /// The compressed table size (TCAM occupancy).
    #[must_use]
    pub fn tcam_entries(&self) -> usize {
        self.tcam.len()
    }

    /// Verifies TCAM contents equal the compressed table (test hook).
    #[must_use]
    pub fn tcam_synced(&self) -> bool {
        let mut routes = self.tcam.routes();
        routes.sort();
        let expect: Vec<Route> = self.fib.compressed_table().iter().collect();
        routes == expect
    }

    /// Access to the maintained FIB (for verification).
    #[must_use]
    pub fn fib(&self) -> &CompressedFib {
        &self.fib
    }

    /// The per-chip DRed caches (for verification: the conformance
    /// harness checks every cached entry is still live in the
    /// compressed table after each batch).
    #[must_use]
    pub fn dreds(&self) -> &[LruPrefixCache] {
        &self.dreds
    }
}

/// CLPL's end-to-end update pipeline (the comparison baseline).
#[derive(Debug)]
pub struct ClplPipeline {
    trie: Trie<NextHop>,
    tcam: PrefixLengthOrderedTcam,
    caches: Vec<LruPrefixCache>,
    timing: TcamTiming,
    /// SRAM access time for the RRC-ME repair walks, nanoseconds.
    sram_ns: f64,
}

impl ClplPipeline {
    /// Builds the pipeline: loads the *uncompressed* table into a
    /// length-ordered TCAM and attaches `chips` logical caches.
    ///
    /// # Panics
    ///
    /// Panics if parameters are degenerate.
    #[must_use]
    pub fn new(table: &RouteTable, chips: usize, cache_capacity: usize, headroom: usize) -> Self {
        assert!(chips > 0 && cache_capacity > 0);
        let mut tcam = PrefixLengthOrderedTcam::new(table.len() * 2 + headroom + 64);
        clue_tcam::load(&mut tcam, table.iter());
        ClplPipeline {
            trie: table.to_trie(),
            tcam,
            caches: (0..chips)
                .map(|_| LruPrefixCache::new(cache_capacity))
                .collect(),
            timing: TcamTiming::default(),
            sram_ns: 6.0,
        }
    }

    /// Pre-fills the logical caches with RRC-ME results for `addrs`.
    pub fn warm(&mut self, addrs: &[u32]) {
        for &addr in addrs {
            if let Some(me) = clue_cache::rrc_me(&self.trie, addr) {
                for cache in &mut self.caches {
                    cache.insert(me.route);
                }
            }
        }
    }

    /// Applies one update through all three stages.
    pub fn apply(&mut self, update: Update) -> TtfSample {
        // Stage 1: plain trie update (the paper's ground truth TTF1).
        let start = Instant::now();
        let changed = match update {
            Update::Announce { prefix, next_hop } => {
                self.trie.insert(prefix, next_hop) != Some(next_hop)
            }
            Update::Withdraw { prefix } => self.trie.remove(prefix).is_some(),
        };
        let ttf1_ns = start.elapsed().as_nanos() as f64;
        if !changed {
            return TtfSample {
                ttf1_ns,
                ttf2_ns: 0.0,
                ttf3_ns: 0.0,
            };
        }

        // Stage 2: one entry changes in the ordered TCAM — but the
        // partial order makes it cost a cascade of boundary moves.
        let cost = match update {
            Update::Announce { prefix, next_hop } => self
                .tcam
                .insert(Route::new(prefix, next_hop))
                .expect("TCAM sized with headroom"),
            Update::Withdraw { prefix } => self
                .tcam
                .delete(prefix)
                .expect("withdraw of a stored route"),
        };
        let ttf2_ns = self.timing.cost_ns(cost);

        // Stage 3: cache repair through the control plane. RRC-ME's
        // update algorithm must re-walk the SRAM trie around the changed
        // prefix and interrogate every cache for overlapping minimal
        // expansions, then erase them.
        let prefix = update.prefix();
        let walk = self.repair_walk_accesses(prefix);
        let mut probes = 0u64;
        let mut erases = 0u64;
        for cache in &mut self.caches {
            probes += 1;
            erases += cache.invalidate_overlapping(prefix) as u64;
        }
        let ttf3_ns = walk as f64 * self.sram_ns + (probes + erases) as f64 * self.timing.write_ns;

        TtfSample {
            ttf1_ns,
            ttf2_ns,
            ttf3_ns,
        }
    }

    /// SRAM nodes the repair walk visits: the path to the prefix plus
    /// its immediate neighbourhood (children inspected for affected
    /// minimal expansions).
    fn repair_walk_accesses(&self, prefix: clue_fib::Prefix) -> u64 {
        let mut accesses = u64::from(prefix.len()) + 1; // root → prefix path
        if let Some(node) = self.trie.node(prefix) {
            accesses += u64::from(node.descendant_routes().min(8));
        }
        accesses
    }

    /// The TCAM occupancy (uncompressed table size).
    #[must_use]
    pub fn tcam_entries(&self) -> usize {
        self.tcam.len()
    }

    /// Verifies TCAM contents equal the routing table (test hook).
    #[must_use]
    pub fn tcam_synced(&self) -> bool {
        let mut routes = self.tcam.routes();
        routes.sort();
        let expect: Vec<Route> = RouteTable::from_trie(&self.trie).iter().collect();
        routes == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::gen::FibGen;
    use clue_fib::Prefix;
    use clue_traffic::{PacketGen, UpdateGen};

    fn setup() -> (RouteTable, Vec<Update>, Vec<u32>) {
        let fib = FibGen::new(31).routes(3_000).generate();
        let updates = UpdateGen::new(32).generate(&fib, 400);
        let warm = PacketGen::new(33).generate(&fib, 2_000);
        (fib, updates, warm)
    }

    #[test]
    fn clue_pipeline_stays_synced_through_a_storm() {
        let (fib, updates, warm) = setup();
        let mut p = CluePipeline::new(&fib, 4, 256, 4_096);
        p.warm(&warm);
        for u in updates {
            p.apply(u);
        }
        assert!(p.tcam_synced(), "TCAM diverged from compressed table");
    }

    #[test]
    fn clpl_pipeline_stays_synced_through_a_storm() {
        let (fib, updates, warm) = setup();
        let mut p = ClplPipeline::new(&fib, 4, 256, 4_096);
        p.warm(&warm);
        for u in updates {
            p.apply(u);
        }
        assert!(p.tcam_synced(), "TCAM diverged from routing table");
    }

    #[test]
    fn clue_ttf2_is_tiny_and_clpl_ttf2_is_a_cascade() {
        let (fib, updates, _) = setup();
        let mut clue = CluePipeline::new(&fib, 4, 256, 4_096);
        let mut clpl = ClplPipeline::new(&fib, 4, 256, 4_096);
        let mut clue_sum = 0.0;
        let mut clpl_sum = 0.0;
        let mut n = 0u32;
        for &u in &updates {
            let a = clue.apply(u);
            let b = clpl.apply(u);
            clue_sum += a.ttf2_ns;
            clpl_sum += b.ttf2_ns;
            n += 1;
        }
        let (clue_mean, clpl_mean) = (clue_sum / f64::from(n), clpl_sum / f64::from(n));
        // Paper: CLUE ≈ 24 ns/update-entry vs CLPL ≈ 360 ns. Our CLPL
        // model is more charitable than the paper's (in-place action
        // rewrites for pure next-hop changes), so assert the direction
        // here and leave the magnitude to the fig11 bench.
        assert!(
            clpl_mean > clue_mean,
            "CLPL TTF2 {clpl_mean:.1} ns not above CLUE {clue_mean:.1} ns"
        );
    }

    #[test]
    fn clue_ttf3_beats_clpl_ttf3_with_warm_caches() {
        let (fib, updates, warm) = setup();
        let mut clue = CluePipeline::new(&fib, 4, 1024, 4_096);
        let mut clpl = ClplPipeline::new(&fib, 4, 1024, 4_096);
        clue.warm(&warm);
        clpl.warm(&warm);
        let clue_mean: f64 =
            updates.iter().map(|&u| clue.apply(u).ttf3_ns).sum::<f64>() / updates.len() as f64;
        let clpl_mean: f64 =
            updates.iter().map(|&u| clpl.apply(u).ttf3_ns).sum::<f64>() / updates.len() as f64;
        assert!(
            clpl_mean > 2.0 * clue_mean,
            "CLPL TTF3 {clpl_mean:.1} ns not ≫ CLUE {clue_mean:.1} ns"
        );
    }

    #[test]
    fn noop_update_costs_almost_nothing() {
        let (fib, _, _) = setup();
        let route = fib.iter().next().unwrap();
        let mut p = CluePipeline::new(&fib, 4, 64, 1_024);
        let s = p.apply(Update::Announce {
            prefix: route.prefix,
            next_hop: route.next_hop,
        });
        assert_eq!(s.ttf2_ns, 0.0);
        assert_eq!(s.ttf3_ns, 0.0);
    }

    #[test]
    fn mean_ttf_averages_componentwise() {
        let samples = vec![
            TtfSample {
                ttf1_ns: 10.0,
                ttf2_ns: 20.0,
                ttf3_ns: 30.0,
            },
            TtfSample {
                ttf1_ns: 30.0,
                ttf2_ns: 0.0,
                ttf3_ns: 10.0,
            },
        ];
        let m = mean_ttf(&samples);
        assert_eq!(m.ttf1_ns, 20.0);
        assert_eq!(m.ttf2_ns, 10.0);
        assert_eq!(m.ttf3_ns, 20.0);
        assert_eq!(m.total_ns(), 50.0);
        assert_eq!(mean_ttf(&[]), TtfSample::default());
    }

    #[test]
    fn apply_with_diff_exposes_the_entry_changes() {
        let mut table = RouteTable::new();
        table.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(1));
        let mut p = CluePipeline::new(&table, 2, 64, 1_024);
        let (sample, diff) = p.apply_with_diff(Update::Announce {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: NextHop(2),
        });
        assert_eq!(diff.modifies.len(), 1, "next-hop rewrite is a modify");
        assert!(diff.inserts.is_empty() && diff.deletes.is_empty());
        assert!(sample.ttf2_ns > 0.0);
        // And the diff-less `apply` stays behaviourally identical.
        let (_, diff) = p.apply_with_diff(Update::Withdraw {
            prefix: "10.0.0.0/8".parse().unwrap(),
        });
        assert_eq!(diff.deletes.len(), 1);
        assert!(p.tcam_synced());
    }

    #[test]
    fn clue_dred_delete_if_present() {
        let mut table = RouteTable::new();
        table.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(1));
        let mut p = CluePipeline::new(&table, 4, 64, 1_024);
        p.warm(&[0x0A00_0001]); // caches 10/8 in all DReds
        let s = p.apply(Update::Withdraw {
            prefix: "10.0.0.0/8".parse().unwrap(),
        });
        // One broadcast search + 4 DRed deletions, 24 ns each.
        assert_eq!(s.ttf3_ns, (1.0 + 4.0) * 24.0);
    }
}
