//! Measurement utilities: histograms and percentile summaries.
//!
//! The paper reports min/mean/max for its TTF series and per-chip bars
//! for load; a reproduction should also expose tails (p99 queueing
//! latency is what a linecard actually provisions for). [`Histogram`]
//! is a log-bucketed counter good for nanosecond-to-millisecond ranges;
//! [`Summary`] is an exact small-sample percentile helper used by the
//! bench harnesses.

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 covers `[0, 2)`), so
/// relative error is bounded by 2× — plenty for latency reporting.
///
/// # Examples
///
/// ```
/// use clue_core::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) >= 2);
/// assert!(h.quantile(1.0) >= 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()).saturating_sub(1) as usize
    }

    /// Records one sample. Counters saturate instead of overflowing,
    /// so a histogram fed for arbitrarily long degrades (mean becomes a
    /// lower bound) rather than panicking or wrapping.
    pub fn record(&mut self, value: u64) {
        let b = &mut self.buckets[Self::bucket_of(value)];
        *b = b.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (exact).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (exact).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the lower bound of the bucket
    /// containing the q-th sample (within 2× of the true value).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Renders the histogram as a one-line JSON object with the digest
    /// every consumer (router stats, net stats, bench baselines) prints:
    /// `{"count":…,"min":…,"mean":…,"p50":…,"p90":…,"p99":…,"max":…}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count(),
            self.min(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.max()
        )
    }

    /// Merges another histogram into this one. Like [`Histogram::record`],
    /// all counters saturate.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }
}

/// Exact percentile summary over an owned sample set (bench-side).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are not NaN"));
            self.sorted = true;
        }
    }

    /// Exact percentile by nearest-rank (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]` or a sample is NaN.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1);
        self.samples[rank - 1]
    }

    /// Merges another summary into this one (sample-set union).
    ///
    /// Mirrors [`Histogram::merge`] for the exact-sample side: after the
    /// merge, `count`/`mean`/`quantile` behave as if every sample of
    /// both summaries had been recorded into one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// `(min, p50, p99, max, mean)` in one call.
    pub fn digest(&mut self) -> (f64, f64, f64, f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        self.ensure_sorted();
        (
            self.samples[0],
            self.quantile(0.5),
            self.quantile(0.99),
            *self.samples.last().expect("non-empty"),
            self.mean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn histogram_quantiles_within_2x() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((250..=512).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((512..=1024).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn histogram_empty_is_defined() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_json_digest() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(1_000);
        let json = h.to_json();
        for key in ["\"count\":2", "\"min\":100", "\"max\":1000", "\"p99\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!Histogram::new().to_json().contains("NaN"));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_bad_quantile() {
        let _ = Histogram::new().quantile(1.5);
    }

    #[test]
    fn summary_exact_percentiles() {
        let mut s = Summary::new();
        for v in (1..=100).rev() {
            s.record(f64::from(v));
        }
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(0.99), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
        let (min, p50, p99, max, mean) = s.digest();
        assert_eq!((min, p50, p99, max), (1.0, 50.0, 99.0, 100.0));
        assert!((mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_digest() {
        assert_eq!(Summary::new().digest(), (0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn histogram_merge_equals_bulk_record() {
        // Splitting a sample stream across two histograms and merging
        // must be indistinguishable from recording it all into one:
        // same count/sum (via mean), same exact min/max, and the same
        // bucket counts, hence identical quantiles everywhere.
        let stream: Vec<u64> = (0..500u64).map(|i| (i * 2_654_435_761) % 100_000).collect();
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in stream.iter().enumerate() {
            whole.record(v);
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(left.count(), 500);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 0..1_000u64 {
            h.record((i * 7_919) % 65_536);
        }
        let mut prev = 0;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn summary_merge_preserves_min_max_count_sum() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        for v in [4.0, 8.0, 15.0] {
            a.record(v);
        }
        for v in [16.0, 23.0, 42.0, 0.5] {
            b.record(v);
        }
        let sum_before = a.mean() * a.count() as f64 + b.mean() * b.count() as f64;
        a.merge(&b);
        assert_eq!(a.count(), 7);
        let (min, _, _, max, mean) = a.digest();
        assert_eq!(min, 0.5);
        assert_eq!(max, 42.0);
        assert!(
            (mean * 7.0 - sum_before).abs() < 1e-9,
            "sum must be preserved"
        );
        // Merging an empty summary is the identity.
        let count = a.count();
        a.merge(&Summary::new());
        assert_eq!(a.count(), count);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        for v in [3u64, 17, 4_096] {
            a.record(v);
        }
        let reference = a.clone();
        // Non-empty ← empty: nothing changes, min/max untouched.
        a.merge(&Histogram::new());
        assert_eq!(a, reference);
        // Empty ← non-empty: becomes an exact copy, including the
        // empty side's sentinel min (u64::MAX) being replaced.
        let mut e = Histogram::new();
        e.merge(&reference);
        assert_eq!(e, reference);
        assert_eq!(e.min(), 3);
        assert_eq!(e.max(), 4_096);
        // Empty ← empty stays empty and well-defined.
        let mut ee = Histogram::new();
        ee.merge(&Histogram::new());
        assert_eq!(ee.count(), 0);
        assert_eq!(ee.min(), 0);
        assert_eq!(ee.max(), 0);
    }

    #[test]
    fn histogram_merge_single_sample_each_side() {
        let mut a = Histogram::new();
        a.record(7);
        let mut b = Histogram::new();
        b.record(9_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), 9_000_000);
        assert_eq!(a.mean(), (7.0 + 9_000_000.0) / 2.0);
        // Rank-1 quantile lands in 7's bucket [4, 8).
        assert_eq!(a.quantile(0.01), 4);
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        // Sum saturation: two near-max samples cannot wrap.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // The sum pegged at u64::MAX; the mean degrades to a lower
        // bound rather than going negative-ish garbage.
        assert!(h.mean() <= u64::MAX as f64);
        assert!(h.mean() >= (u64::MAX / 2) as f64);

        // Count saturation: doubling via self-merge 64+ times pegs the
        // counters at u64::MAX without panicking in debug builds.
        let mut d = Histogram::new();
        d.record(1);
        for _ in 0..70 {
            let snapshot = d.clone();
            d.merge(&snapshot);
        }
        assert_eq!(d.count(), u64::MAX);
        assert_eq!(d.quantile(0.5), 0, "bucket 0 lower bound");
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 1);
    }

    #[test]
    fn summary_merge_with_empty_and_single_sample() {
        // Empty ← empty.
        let mut e = Summary::new();
        e.merge(&Summary::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.digest(), (0.0, 0.0, 0.0, 0.0, 0.0));
        // Empty ← single.
        let mut one = Summary::new();
        one.record(42.0);
        let mut s = Summary::new();
        s.merge(&one);
        assert_eq!(s.count(), 1);
        assert_eq!(s.digest(), (42.0, 42.0, 42.0, 42.0, 42.0));
        // Single ← single keeps exact quantiles at every rank.
        let mut other = Summary::new();
        other.record(-1.5);
        s.merge(&other);
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile(0.0), -1.5);
        assert_eq!(s.quantile(0.5), -1.5);
        assert_eq!(s.quantile(1.0), 42.0);
    }

    #[test]
    fn summary_merge_after_sort_resets_sorted_state() {
        // Querying a quantile sorts in place; a merge after that must
        // not leave the summary believing it is still sorted.
        let mut a = Summary::new();
        for v in [5.0, 1.0, 3.0] {
            a.record(v);
        }
        assert_eq!(a.quantile(1.0), 5.0); // forces the sort
        let mut b = Summary::new();
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.quantile(0.0), 0.5, "new minimum must be visible");
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn summary_merge_quantiles_are_monotone_and_exact() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        for i in 0..50 {
            a.record(f64::from(i * 2)); // evens 0..98
            b.record(f64::from(i * 2 + 1)); // odds 1..99
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        // Exact nearest-rank over the interleaved union…
        assert_eq!(a.quantile(0.5), 49.0);
        assert_eq!(a.quantile(1.0), 99.0);
        // …and monotone along the whole grid.
        let mut prev = f64::NEG_INFINITY;
        for step in 0..=100 {
            let q = f64::from(step) / 100.0;
            let v = a.quantile(q);
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }
}
