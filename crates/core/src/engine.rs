//! The clock-driven parallel lookup engine (Figure 1 of the paper).
//!
//! Per clock cycle: one packet may arrive; the Indexing Logic names its
//! *home* chip; the Adaptive Load Balancing Logic enqueues it there —
//! or, if the home FIFO is full, on the **idlest** queue, where it will
//! be looked up *only in that chip's DRed* (never both, which is why
//! DRed `i` need not store chip `i`'s prefixes). A DRed miss bounces the
//! packet back to its home queue; when the home chip resolves it, the
//! redundancy scheme is filled (rule (c) + the DRed update flow of
//! Figures 3/4). Each chip serves one lookup every `service_clocks`
//! cycles.
//!
//! Packets carry tags (Step III) so the reorder depth at the output can
//! be observed.

use std::collections::VecDeque;

use clue_fib::{NextHop, Route, Trie};
use clue_tcam::PowerStats;

use crate::dred::{DredConfig, RedundancyScheme, SchemeStats};
use crate::metrics::Histogram;
use crate::reorder::ReorderBuffer;

/// Engine parameters (defaults = the Figure 15 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of TCAM chips `N`.
    pub chips: usize,
    /// Per-chip FIFO capacity (paper: 256).
    pub fifo_capacity: usize,
    /// Clocks per TCAM lookup (paper: 4 — so 4 chips exactly match an
    /// arrival per clock).
    pub service_clocks: u32,
    /// Clocks between packet arrivals (paper: 1). Larger values model a
    /// link running below line rate; the offered load relative to the
    /// system's capacity is `service_clocks / (chips · arrival_period)`.
    pub arrival_period: u32,
    /// Periodic routing-update interruptions: every `.0` clocks, every
    /// chip spends `.1` write cycles applying updates instead of
    /// serving lookups. `None` = no updates (the premise-1 check of
    /// Section III-D uses `Some((5000, 1))`).
    pub update_stall: Option<(u64, u32)>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            chips: 4,
            fifo_capacity: 256,
            service_clocks: 4,
            arrival_period: 1,
            update_stall: None,
        }
    }
}

impl EngineConfig {
    /// Offered load as a fraction of aggregate service capacity.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        f64::from(self.service_clocks) / (self.chips as f64 * f64::from(self.arrival_period))
    }
}

/// What happened to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with this LPM result (`None` = table miss).
    Forwarded(Option<NextHop>),
    /// Dropped because every eligible queue was full.
    Dropped,
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineReport {
    /// Clock cycles simulated.
    pub clocks: u64,
    /// Packets offered.
    pub arrivals: u64,
    /// Packets completed.
    pub completions: u64,
    /// Packets dropped on arrival.
    pub drops: u64,
    /// Clocks elapsed while packets were still arriving (the
    /// steady-state window the speedup is measured over).
    pub arrival_clocks: u64,
    /// Completions within the arrival window.
    pub arrival_completions: u64,
    /// Lookups served per chip (home + DRed) — the Figure 15 bars.
    pub serviced_per_chip: Vec<u64>,
    /// Packets diverted off their full home queue.
    pub diversions: u64,
    /// Completions that finished after a higher-tagged packet.
    pub out_of_order: u64,
    /// Peak occupancy of the output reorder buffer (Step III).
    pub reorder_high_water: usize,
    /// Sum over clocks of total queued jobs (for mean occupancy).
    pub queue_len_sum: u64,
    /// Largest single-queue depth observed (bounced jobs may exceed the
    /// FIFO capacity).
    pub max_queue_len: usize,
    /// Redundancy-scheme counters (hit rate etc.).
    pub scheme: SchemeStats,
    /// Entries activated per search (power model).
    pub power: PowerStats,
    /// Per-packet latency in clocks (admission → completion).
    pub latency: Histogram,
    /// Clocks chips spent applying injected routing updates instead of
    /// serving lookups (premise 1 of Section III-D).
    pub update_stall_clocks: u64,
}

impl EngineReport {
    /// Achieved speedup factor: throughput relative to a single chip.
    ///
    /// A lone chip completes `1/service_clocks` packets per clock, so
    /// `t = completions · service_clocks / clocks`, measured over the
    /// arrival window (the steady state the Section III-D bound talks
    /// about) so the post-trace drain does not dilute the rate.
    #[must_use]
    pub fn speedup(&self, service_clocks: u32) -> f64 {
        let (clocks, completions) = if self.arrival_clocks > 0 {
            (self.arrival_clocks, self.arrival_completions)
        } else {
            (self.clocks, self.completions)
        };
        if clocks == 0 {
            return 0.0;
        }
        completions as f64 * f64::from(service_clocks) / clocks as f64
    }

    /// Fraction of offered packets that completed.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.completions as f64 / self.arrivals as f64
    }

    /// Mean jobs queued across all FIFOs per clock.
    #[must_use]
    pub fn mean_queue_occupancy(&self) -> f64 {
        if self.clocks == 0 {
            return 0.0;
        }
        self.queue_len_sum as f64 / self.clocks as f64
    }

    /// Per-chip share of serviced lookups.
    #[must_use]
    pub fn chip_shares(&self) -> Vec<f64> {
        let total: u64 = self.serviced_per_chip.iter().sum();
        if total == 0 {
            return vec![0.0; self.serviced_per_chip.len()];
        }
        self.serviced_per_chip
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum JobKind {
    /// Normal home-TCAM lookup.
    Home,
    /// Overflow lookup in this queue's DRed only.
    Dred,
    /// DRed miss sent back home; resolving it triggers a fill.
    Bounced,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    addr: u32,
    tag: u64,
    kind: JobKind,
    admitted: u64,
}

/// The parallel lookup engine.
pub struct Engine {
    cfg: EngineConfig,
    chip_tables: Vec<Trie<NextHop>>,
    chip_entries: Vec<usize>,
    index: Box<dyn Fn(u32) -> usize + Send>,
    mapping: Vec<usize>,
    scheme: RedundancyScheme,
    queues: Vec<VecDeque<Job>>,
    busy: Vec<u32>,
    report: EngineReport,
    results: Vec<Outcome>,
    reorder: ReorderBuffer<()>,
    next_tag: u64,
    max_completed_tag: Option<u64>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cfg", &self.cfg)
            .field("chips", &self.chip_tables.len())
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine from explicit buckets, an indexing function, and
    /// a bucket→chip mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping length differs from the bucket count, maps
    /// to a chip `≥ cfg.chips`, or `cfg` is degenerate.
    pub fn from_buckets(
        buckets: &[Vec<Route>],
        index: impl Fn(u32) -> usize + Send + 'static,
        mapping: Vec<usize>,
        dred: DredConfig,
        cfg: EngineConfig,
    ) -> Self {
        assert!(cfg.chips >= 1, "need at least one chip");
        assert!(cfg.fifo_capacity >= 1, "FIFOs must hold at least one job");
        assert!(cfg.service_clocks >= 1, "service time must be positive");
        assert!(cfg.arrival_period >= 1, "arrival period must be positive");
        assert_eq!(
            mapping.len(),
            buckets.len(),
            "mapping must cover every bucket"
        );
        assert!(
            mapping.iter().all(|&c| c < cfg.chips),
            "mapping targets a nonexistent chip"
        );
        let mut chip_tables: Vec<Trie<NextHop>> = (0..cfg.chips).map(|_| Trie::new()).collect();
        for (bucket, &chip) in buckets.iter().zip(&mapping) {
            for r in bucket {
                chip_tables[chip].insert(r.prefix, r.next_hop);
            }
        }
        let chip_entries = chip_tables.iter().map(Trie::len).collect();
        let scheme = RedundancyScheme::new(dred, cfg.chips);
        Engine {
            chip_tables,
            chip_entries,
            index: Box::new(index),
            mapping,
            scheme,
            queues: (0..cfg.chips).map(|_| VecDeque::new()).collect(),
            busy: vec![0; cfg.chips],
            report: EngineReport {
                serviced_per_chip: vec![0; cfg.chips],
                ..EngineReport::default()
            },
            results: Vec::new(),
            reorder: ReorderBuffer::new(),
            next_tag: 0,
            max_completed_tag: None,
            cfg,
        }
    }

    /// Convenience constructor for the CLUE configuration: an ONRTC
    /// table split into `cfg.chips` even ranges, one bucket per chip.
    ///
    /// # Panics
    ///
    /// Panics if `table` overlaps (run ONRTC first).
    pub fn clue(table: &clue_fib::RouteTable, dred_capacity: usize, cfg: EngineConfig) -> Self {
        let parts = clue_partition::EvenRangePartition::split(table, cfg.chips);
        let (buckets, index) = parts.into_parts();
        let mapping = (0..cfg.chips).collect();
        Engine::from_buckets(
            &buckets,
            move |addr| clue_partition::Indexer::bucket_of(&index, addr),
            mapping,
            DredConfig::Clue {
                capacity: dred_capacity,
                exclude_home: true,
            },
            cfg,
        )
    }

    /// CLUE configuration with `buckets` even ranges spread round-robin
    /// over the chips (the paper's 32-partitions-on-4-chips shape, with
    /// a neutral mapping; use [`Engine::from_buckets`] with an explicit
    /// mapping for adversarial placements).
    ///
    /// # Panics
    ///
    /// Panics if `table` overlaps or `buckets < cfg.chips`.
    pub fn clue_with_buckets(
        table: &clue_fib::RouteTable,
        buckets: usize,
        dred_capacity: usize,
        cfg: EngineConfig,
    ) -> Self {
        assert!(buckets >= cfg.chips, "need at least one bucket per chip");
        let parts = clue_partition::EvenRangePartition::split(table, buckets);
        let (bucket_vec, index) = parts.into_parts();
        let mapping = (0..buckets).map(|b| b % cfg.chips).collect();
        Engine::from_buckets(
            &bucket_vec,
            move |addr| clue_partition::Indexer::bucket_of(&index, addr),
            mapping,
            DredConfig::Clue {
                capacity: dred_capacity,
                exclude_home: true,
            },
            cfg,
        )
    }

    /// The home chip for an address.
    #[must_use]
    pub fn home_chip(&self, addr: u32) -> usize {
        self.mapping[(self.index)(addr)]
    }

    /// Runs a trace: one arrival per clock, then drains the queues.
    ///
    /// Returns the report and the per-packet outcomes in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if draining exceeds a generous safety bound (would mean a
    /// livelock in the balancing logic).
    pub fn run(&mut self, trace: &[u32]) -> (EngineReport, Vec<Outcome>) {
        // Each run reports independently; DRed contents and chip tables
        // persist across runs (the hardware state), counters do not.
        self.report = EngineReport {
            serviced_per_chip: vec![0; self.cfg.chips],
            ..EngineReport::default()
        };
        self.scheme.reset_stats();
        self.next_tag = 0;
        self.max_completed_tag = None;
        self.reorder = ReorderBuffer::new();
        self.results = vec![Outcome::Dropped; trace.len()];
        for &addr in trace {
            self.step(Some(addr));
            for _ in 1..self.cfg.arrival_period {
                self.step(None);
            }
        }
        self.report.arrival_clocks = self.report.clocks;
        self.report.arrival_completions = self.report.completions;
        let limit = self.report.clocks
            + 64
            + (trace.len() as u64 + 1) * 8 * u64::from(self.cfg.service_clocks);
        while self.outstanding() > 0 {
            self.step(None);
            assert!(
                self.report.clocks < limit,
                "engine failed to drain — balancing livelock"
            );
        }
        self.report.scheme = self.scheme.stats();
        self.report.reorder_high_water = self.reorder.high_water_mark();
        (self.report.clone(), std::mem::take(&mut self.results))
    }

    fn outstanding(&self) -> u64 {
        self.report.arrivals - self.report.completions - self.report.drops
    }

    /// Advances one clock: optional arrival, then one service step per
    /// chip.
    fn step(&mut self, arrival: Option<u32>) {
        self.report.clocks += 1;
        if let Some((interval, ops)) = self.cfg.update_stall {
            if interval > 0 && self.report.clocks.is_multiple_of(interval) {
                for chip in 0..self.cfg.chips {
                    self.busy[chip] += ops;
                }
                self.report.update_stall_clocks += u64::from(ops) * self.cfg.chips as u64;
            }
        }
        if let Some(addr) = arrival {
            self.admit(addr);
        }
        let queued: usize = self
            .queues
            .iter()
            .map(std::collections::VecDeque::len)
            .sum();
        self.report.queue_len_sum += queued as u64;
        self.report.max_queue_len = self.report.max_queue_len.max(
            self.queues
                .iter()
                .map(std::collections::VecDeque::len)
                .max()
                .unwrap_or(0),
        );
        for chip in 0..self.cfg.chips {
            if self.busy[chip] > 0 {
                self.busy[chip] -= 1;
            }
            if self.busy[chip] == 0 {
                if let Some(job) = self.queues[chip].pop_front() {
                    self.busy[chip] = self.cfg.service_clocks;
                    self.service(chip, job);
                }
            }
        }
    }

    fn admit(&mut self, addr: u32) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.report.arrivals += 1;
        let home = self.home_chip(addr);
        let admitted = self.report.clocks;
        if self.queues[home].len() < self.cfg.fifo_capacity {
            self.queues[home].push_back(Job {
                addr,
                tag,
                kind: JobKind::Home,
                admitted,
            });
            return;
        }
        // Home queue full: send to the idlest queue for a DRed-only
        // lookup (rule (b)).
        self.report.diversions += 1;
        let idlest = (0..self.cfg.chips)
            .min_by_key(|&c| self.queues[c].len())
            .expect("at least one chip");
        if self.queues[idlest].len() < self.cfg.fifo_capacity {
            self.queues[idlest].push_back(Job {
                addr,
                tag,
                kind: JobKind::Dred,
                admitted,
            });
        } else {
            // Every queue is full: the input stage drops the packet.
            self.report.drops += 1;
            self.record(tag, Outcome::Dropped, None);
        }
    }

    fn service(&mut self, chip: usize, job: Job) {
        self.report.serviced_per_chip[chip] += 1;
        match job.kind {
            JobKind::Home | JobKind::Bounced => {
                self.report.power.record_search(self.chip_entries[chip]);
                let matched = self.chip_tables[chip]
                    .lookup(job.addr)
                    .map(|(p, &nh)| Route::new(p, nh));
                if matches!(job.kind, JobKind::Bounced) {
                    if let Some(route) = matched {
                        self.scheme.on_miss_resolved(chip, job.addr, route);
                    }
                }
                self.complete(job, matched.map(|r| r.next_hop));
            }
            JobKind::Dred => {
                // DRed search activates only the redundancy partition.
                self.report.power.record_search(self.scheme_stored_on(chip));
                match self.scheme.lookup(chip, job.addr) {
                    Some(nh) => self.complete(job, Some(nh)),
                    None => {
                        // Rule (c): back to the home queue. Bounced jobs
                        // bypass the capacity check so they cannot cycle
                        // forever between full queues.
                        let home = self.home_chip(job.addr);
                        self.queues[home].push_back(Job {
                            addr: job.addr,
                            tag: job.tag,
                            kind: JobKind::Bounced,
                            admitted: job.admitted,
                        });
                    }
                }
            }
        }
    }

    fn scheme_stored_on(&self, chip: usize) -> usize {
        self.scheme.stored_on(chip)
    }

    fn complete(&mut self, job: Job, result: Option<NextHop>) {
        self.report.completions += 1;
        self.report
            .latency
            .record(self.report.clocks.saturating_sub(job.admitted));
        self.record(job.tag, Outcome::Forwarded(result), Some(job.tag));
    }

    fn record(&mut self, tag: u64, outcome: Outcome, completed_tag: Option<u64>) {
        match completed_tag {
            Some(t) => {
                match self.max_completed_tag {
                    Some(max) if t < max => self.report.out_of_order += 1,
                    Some(max) => self.max_completed_tag = Some(max.max(t)),
                    None => self.max_completed_tag = Some(t),
                }
                let _ = self.reorder.push(t, ());
            }
            None => {
                let _ = self.reorder.skip(tag);
            }
        }
        if let Some(slot) = self.results.get_mut(tag as usize) {
            *slot = outcome;
        }
    }

    /// Injects a routing-update interruption on `chip`: the chip is
    /// kept busy for `ops` extra write cycles (each costing one
    /// `service_clocks`-equivalent of lookup time is *not* assumed —
    /// TCAM writes take one clock each in this model).
    ///
    /// This models premise 1 of Section III-D: route updates steal
    /// lookup slots. Use between [`run`](Engine::run) calls or interleave
    /// by splitting the trace.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn inject_update_stall(&mut self, chip: usize, ops: u32) {
        assert!(chip < self.cfg.chips, "no such chip {chip}");
        self.busy[chip] += ops;
        self.report.update_stall_clocks += u64::from(ops);
    }

    /// The redundancy scheme's counters so far.
    #[must_use]
    pub fn scheme_stats(&self) -> SchemeStats {
        self.scheme.stats()
    }

    /// Pre-warms the redundancy scheme by resolving each address as if
    /// it had missed (fills DReds without running the clock model).
    pub fn warm_dreds(&mut self, addrs: &[u32]) {
        for &addr in addrs {
            let home = self.home_chip(addr);
            if let Some((p, &nh)) = self.chip_tables[home].lookup(addr) {
                self.scheme.on_miss_resolved(home, addr, Route::new(p, nh));
            }
        }
        self.scheme.reset_stats();
    }

    /// Reference lookup against the engine's union table (test hook).
    #[must_use]
    pub fn reference_lookup(&self, addr: u32) -> Option<NextHop> {
        let chip = self.home_chip(addr);
        self.chip_tables[chip].lookup(addr).map(|(_, &nh)| nh)
    }

    /// Entries stored per chip (home partitions, without DRed).
    #[must_use]
    pub fn chip_entries(&self) -> &[usize] {
        &self.chip_entries
    }
}

/// Least-loaded (by entry count) bucket→chip mapping: sort buckets by
/// size descending, place each on the currently lightest chip.
#[must_use]
pub fn balanced_mapping(bucket_sizes: &[usize], chips: usize) -> Vec<usize> {
    assert!(chips > 0, "need at least one chip");
    let mut order: Vec<usize> = (0..bucket_sizes.len()).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(bucket_sizes[b]));
    let mut load = vec![0usize; chips];
    let mut mapping = vec![0usize; bucket_sizes.len()];
    for b in order {
        let chip = (0..chips).min_by_key(|&c| load[c]).expect("chips > 0");
        mapping[b] = chip;
        load[chip] += bucket_sizes[b];
    }
    mapping
}

/// A `Prefix`-keyed helper: returns the union table a set of buckets
/// represents (test/debug aid).
#[must_use]
pub fn union_table(buckets: &[Vec<Route>]) -> Trie<NextHop> {
    let mut t = Trie::new();
    for bucket in buckets {
        for r in bucket {
            t.insert(r.prefix, r.next_hop);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;
    use clue_fib::RouteTable;
    use clue_traffic::PacketGen;

    fn small_setup() -> (RouteTable, Vec<u32>) {
        let fib = onrtc(&FibGen::new(21).routes(4_000).generate());
        let trace = PacketGen::new(22).generate(&fib, 20_000);
        (fib, trace)
    }

    #[test]
    fn all_packets_complete_and_match_reference() {
        let (fib, trace) = small_setup();
        let mut engine = Engine::clue(&fib, 1024, EngineConfig::default());
        let reference = fib.to_trie();
        let (report, outcomes) = engine.run(&trace);
        assert_eq!(report.arrivals, trace.len() as u64);
        assert_eq!(report.completions + report.drops, report.arrivals);
        for (&addr, outcome) in trace.iter().zip(&outcomes) {
            if let Outcome::Forwarded(nh) = *outcome {
                assert_eq!(
                    nh,
                    reference.lookup(addr).map(|(_, &v)| v),
                    "wrong next hop for {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn balanced_load_achieves_near_full_speedup() {
        let (fib, trace) = small_setup();
        let cfg = EngineConfig::default();
        let mut engine = Engine::clue(&fib, 1024, cfg);
        let (report, _) = engine.run(&trace);
        let t = report.speedup(cfg.service_clocks);
        assert!(t > 3.0, "speedup {t:.2} too low for 4 chips");
    }

    #[test]
    fn worst_case_respects_theory_bound() {
        use crate::theory::worst_case_speedup;
        let (fib, trace) = small_setup();
        let cfg = EngineConfig::default();
        // Adversarial: all four buckets on chip 0.
        let parts = clue_partition::EvenRangePartition::split(&fib, 4);
        let (buckets, index) = parts.into_parts();
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| clue_partition::Indexer::bucket_of(&index, a),
            vec![0, 0, 0, 0],
            DredConfig::Clue {
                capacity: 1024,
                exclude_home: true,
            },
            cfg,
        );
        let (report, _) = engine.run(&trace);
        let t = report.speedup(cfg.service_clocks);
        let h = report.scheme.hit_rate();
        // The bound assumes every chip is saturated; the simulator's
        // cold start leaves chips 2..N briefly idle, so allow a small
        // finite-horizon tolerance.
        assert!(
            t >= 0.97 * worst_case_speedup(cfg.chips, h),
            "t = {t:.3} below the (N−1)h+1 = {:.3} bound",
            worst_case_speedup(cfg.chips, h)
        );
        assert!(report.diversions > 0, "worst case must overflow the home");
    }

    #[test]
    fn single_chip_degenerates_gracefully() {
        let (fib, trace) = small_setup();
        let cfg = EngineConfig {
            chips: 1,
            fifo_capacity: 16,
            service_clocks: 1,
            arrival_period: 1,
            update_stall: None,
        };
        let mut engine = Engine::clue(&fib, 64, cfg);
        let (report, _) = engine.run(&trace[..2000]);
        // One chip at 1 clock/lookup exactly keeps up with 1 pkt/clock.
        assert_eq!(report.drops, 0);
        assert!((report.speedup(1) - 1.0).abs() < 0.1);
    }

    #[test]
    fn drops_happen_when_system_is_oversubscribed() {
        let (fib, trace) = small_setup();
        // 2 chips × (1/4 per clock) = 0.5 service for 1.0 offered load.
        let cfg = EngineConfig {
            chips: 2,
            fifo_capacity: 8,
            service_clocks: 4,
            arrival_period: 1,
            update_stall: None,
        };
        let mut engine = Engine::clue(&fib, 64, cfg);
        let (report, _) = engine.run(&trace);
        assert!(report.drops > 0);
        assert!(report.completions > 0);
    }

    #[test]
    fn out_of_order_completions_are_observed() {
        let (fib, trace) = small_setup();
        let cfg = EngineConfig::default();
        let parts = clue_partition::EvenRangePartition::split(&fib, 4);
        let (buckets, index) = parts.into_parts();
        // Adversarial mapping with a tiny DRed: lots of bounces → lots
        // of reordering (this is why Step III tags packets).
        let mut engine = Engine::from_buckets(
            &buckets,
            move |a| clue_partition::Indexer::bucket_of(&index, a),
            vec![0, 0, 0, 0],
            DredConfig::Clue {
                capacity: 4,
                exclude_home: true,
            },
            cfg,
        );
        let (report, _) = engine.run(&trace);
        assert!(report.out_of_order > 0);
    }

    #[test]
    fn clue_with_buckets_uses_every_chip() {
        let (fib, trace) = small_setup();
        let cfg = EngineConfig::default();
        let mut engine = Engine::clue_with_buckets(&fib, 32, 512, cfg);
        let (report, _) = engine.run(&trace[..10_000]);
        assert!(report.serviced_per_chip.iter().all(|&s| s > 0));
        assert!(report.completions > 0);
    }

    #[test]
    fn latency_histogram_tracks_completions() {
        let (fib, trace) = small_setup();
        let mut engine = Engine::clue(&fib, 512, EngineConfig::default());
        let (report, _) = engine.run(&trace[..5_000]);
        assert_eq!(report.latency.count(), report.completions);
        // (a packet admitted and served within the same clock has
        // latency 0, so only the ordering of quantiles is guaranteed)
        assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.5));
        assert!(report.latency.max() >= report.latency.min());
    }

    #[test]
    fn update_stalls_consume_throughput() {
        let (fib, trace) = small_setup();
        let base_cfg = EngineConfig::default();
        let stall_cfg = EngineConfig {
            update_stall: Some((8, 4)),
            ..base_cfg
        };
        let mut base = Engine::clue(&fib, 1024, base_cfg);
        let mut stalled = Engine::clue(&fib, 1024, stall_cfg);
        let (rb, _) = base.run(&trace);
        let (rs, _) = stalled.run(&trace);
        assert!(rs.update_stall_clocks > 0);
        assert!(
            rs.speedup(4) < rb.speedup(4),
            "heavy update stalls must cost throughput"
        );
    }

    #[test]
    fn balanced_mapping_spreads_sizes() {
        let mapping = balanced_mapping(&[10, 9, 1, 1, 1, 1], 2);
        let load0: usize = mapping
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(b, _)| [10, 9, 1, 1, 1, 1][b])
            .sum();
        assert!((10..=13).contains(&load0), "load0 = {load0}");
    }

    #[test]
    fn report_shares_sum_to_one() {
        let (fib, trace) = small_setup();
        let mut engine = Engine::clue(&fib, 1024, EngineConfig::default());
        let (report, _) = engine.run(&trace);
        let total: f64 = report.chip_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
