//! Output reorder buffer (Step III of Figure 1).
//!
//! The load balancer may complete packets out of order — DRed hits
//! overtake packets queued at a busy home chip, and bounced packets fall
//! behind. Step III therefore tags each packet with a sequence number;
//! this buffer restores arrival order at the output, which is what a
//! real linecard must do to avoid TCP reordering penalties downstream.
//!
//! The buffer holds completions whose predecessors are still in flight.
//! Its high-water mark measures how much reordering the balancing
//! actually causes (reported alongside the Figure 15/16 runs).

use std::collections::{BTreeMap, BTreeSet};

/// A sequence-number reorder buffer.
///
/// Push completions in any order; pop them in strict tag order. Dropped
/// packets are declared with [`skip`](ReorderBuffer::skip) so the stream
/// does not stall waiting for them.
///
/// # Examples
///
/// ```
/// use clue_core::reorder::ReorderBuffer;
///
/// let mut buf: ReorderBuffer<&str> = ReorderBuffer::new();
/// assert_eq!(buf.push(1, "b"), Vec::<&str>::new()); // tag 0 missing
/// assert_eq!(buf.push(0, "a"), vec!["a", "b"]);     // both release
/// assert_eq!(buf.push(2, "c"), vec!["c"]);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer<T> {
    pending: BTreeMap<u64, T>,
    skipped: BTreeSet<u64>,
    next: u64,
    high_water: usize,
    released: u64,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// Creates an empty buffer expecting tag 0 first.
    #[must_use]
    pub fn new() -> Self {
        ReorderBuffer {
            pending: BTreeMap::new(),
            skipped: BTreeSet::new(),
            next: 0,
            high_water: 0,
            released: 0,
        }
    }

    fn drain_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        loop {
            if let Some(item) = self.pending.remove(&self.next) {
                out.push(item);
                self.released += 1;
                self.next += 1;
            } else if self.skipped.remove(&self.next) {
                self.next += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Accepts the completion for `tag` and returns every item that is
    /// now in-order deliverable (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `tag` was already delivered, skipped, or is currently
    /// buffered — tags are unique by construction.
    pub fn push(&mut self, tag: u64, item: T) -> Vec<T> {
        assert!(tag >= self.next, "tag {tag} already released");
        assert!(!self.skipped.contains(&tag), "tag {tag} was skipped");
        let clash = self.pending.insert(tag, item);
        assert!(clash.is_none(), "tag {tag} pushed twice");
        self.high_water = self.high_water.max(self.pending.len());
        self.drain_ready()
    }

    /// Declares `tag` lost (the packet was dropped) so later tags are
    /// not held up waiting for it. Returns items released by the skip.
    /// Idempotent for already-released tags.
    ///
    /// # Panics
    ///
    /// Panics if a completion for `tag` is currently buffered.
    pub fn skip(&mut self, tag: u64) -> Vec<T> {
        if tag < self.next {
            return Vec::new();
        }
        assert!(
            !self.pending.contains_key(&tag),
            "tag {tag} completed; cannot skip it"
        );
        self.skipped.insert(tag);
        self.drain_ready()
    }

    /// Completions waiting for a predecessor.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Largest number of completions ever buffered at once.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Items delivered in order so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// The tag the output is waiting for.
    #[must_use]
    pub fn next_tag(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut buf = ReorderBuffer::new();
        for tag in 0..10u64 {
            let out = buf.push(tag, tag);
            assert_eq!(out, vec![tag]);
        }
        assert_eq!(buf.pending(), 0);
        assert_eq!(buf.high_water_mark(), 1);
        assert_eq!(buf.released(), 10);
    }

    #[test]
    fn reversed_burst_releases_at_once() {
        let mut buf = ReorderBuffer::new();
        for tag in (1..5u64).rev() {
            assert!(buf.push(tag, tag).is_empty());
        }
        assert_eq!(buf.pending(), 4);
        let out = buf.push(0, 0);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(buf.high_water_mark(), 5);
    }

    #[test]
    fn skip_at_head_unblocks_the_stream() {
        let mut buf = ReorderBuffer::new();
        assert!(buf.push(1, "b").is_empty());
        // Tag 0 was dropped at admission.
        assert_eq!(buf.skip(0), vec!["b"]);
        assert_eq!(buf.next_tag(), 2);
        // Skipping an already-released tag is a no-op.
        assert!(buf.skip(0).is_empty());
    }

    #[test]
    fn skip_of_future_tag_does_not_stall_later() {
        let mut buf = ReorderBuffer::new();
        // Packet 2 dropped while 0 and 1 are still in flight.
        assert!(buf.skip(2).is_empty());
        assert_eq!(buf.push(0, 0), vec![0]);
        // Releasing 1 must hop over the skipped 2.
        assert_eq!(buf.push(1, 1), vec![1]);
        assert_eq!(buf.next_tag(), 3);
        assert_eq!(buf.push(3, 3), vec![3]);
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_tag_panics() {
        let mut buf = ReorderBuffer::new();
        let _ = buf.push(5, ());
        let _ = buf.push(5, ());
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn stale_tag_panics() {
        let mut buf = ReorderBuffer::new();
        let _ = buf.push(0, ());
        let _ = buf.push(0, ());
    }

    #[test]
    #[should_panic(expected = "cannot skip")]
    fn skipping_a_buffered_completion_panics() {
        let mut buf = ReorderBuffer::new();
        let _ = buf.push(3, ());
        let _ = buf.skip(3);
    }

    #[test]
    fn interleaved_pattern() {
        let mut buf = ReorderBuffer::new();
        assert_eq!(buf.push(0, 0), vec![0]);
        assert!(buf.push(2, 2).is_empty());
        assert!(buf.push(4, 4).is_empty());
        assert_eq!(buf.push(1, 1), vec![1, 2]);
        assert_eq!(buf.push(3, 3), vec![3, 4]);
        assert_eq!(buf.released(), 5);
    }
}
