//! The multi-backend lookup data plane: one trait, three engines.
//!
//! Everything that answers "which route matches this address?" at
//! packet rate sits behind [`LookupPlane`]. The router's epoch
//! publication builds one plane per worker from the (non-overlapping)
//! compressed table and swaps them atomically; a backend therefore
//! never sees an in-place mutation — it is built once from a route
//! snapshot and read concurrently until the epoch is retired.
//!
//! Three implementations, selectable by [`BackendKind`]:
//!
//! * [`TcamPlane`] — the paper's cycle-cost TCAM simulator
//!   ([`clue_tcam::SlotArray`]) moved behind the trait, behavior
//!   preserving: LPM over the stored ternary entries exactly as the
//!   encoder-free hardware of the paper resolves it.
//! * [`TriePlane`] — a flattened multibit trie with level-compressed
//!   16/8/8 strides. The root level is one 2^16 slot array (256 KiB of
//!   u32 slots, sequential-prefetch friendly); longer prefixes expand
//!   into 256-entry child blocks packed contiguously in one arena so a
//!   lookup touches at most three cache lines.
//! * [`CfibPlane`] — an entropy-style compressed FIB in the spirit of
//!   Rétvári et al. ("Compressing IP Forwarding Tables: Towards
//!   Entropy Bounds and Beyond"): the LPM function is flattened into
//!   disjoint address intervals, adjacent intervals with equal labels
//!   are merged, and the per-interval labels are dictionary-coded and
//!   bit-packed to ⌈log2(distinct labels)⌉ bits each.
//!
//! All three resolve the *matched route* (prefix and next hop), not
//! just the next hop — the router's DRed fill path caches the route so
//! the update plane's delete-if-present flush stays coherent.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use clue_fib::{mask, NextHop, Prefix, Route, RouteTable, Trie};
use clue_tcam::SlotArray;

/// Which lookup backend a router (or bench, or check) runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// The cycle-cost TCAM simulator (the paper's hardware model).
    #[default]
    Tcam,
    /// The flattened 16/8/8 multibit trie.
    Trie,
    /// The entropy-style interval-compressed FIB.
    Cfib,
    /// The tiled TCAM scale-out plane (provided by `clue-tile`; its
    /// builder arrives through [`register_tiled_builder`]).
    Tiled,
}

impl BackendKind {
    /// Every backend, in conformance-matrix order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Tcam,
        BackendKind::Trie,
        BackendKind::Cfib,
        BackendKind::Tiled,
    ];

    /// The CLI / JSON name (`tcam`, `trie`, `cfib`, `tiled`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Tcam => "tcam",
            BackendKind::Trie => "trie",
            BackendKind::Cfib => "cfib",
            BackendKind::Tiled => "tiled",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    got: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected tcam, trie, cfib, or tiled)",
            self.got
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tcam" => Ok(BackendKind::Tcam),
            "trie" => Ok(BackendKind::Trie),
            "cfib" => Ok(BackendKind::Cfib),
            "tiled" => Ok(BackendKind::Tiled),
            other => Err(ParseBackendError {
                got: other.to_owned(),
            }),
        }
    }
}

/// An immutable, concurrently readable longest-prefix-match engine.
///
/// # Contract
///
/// A plane is built from one snapshot of routes and never mutated;
/// updates are applied by building a *new* plane from the post-batch
/// table and publishing it (the router's epoch swap). Implementations
/// may therefore precompute freely and must be `Send + Sync`.
///
/// When the route set is non-overlapping (ONRTC output — the only
/// thing the router ever publishes), [`lookup`](Self::lookup) must
/// return the unique containing route. Backends built from general
/// (overlapping) sets must return the longest match, so the flat-scan
/// oracle is the reference for every input.
pub trait LookupPlane: fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The longest-prefix match for `addr`: the matched route itself,
    /// because callers (the DRed fill path) need the prefix, not just
    /// the next hop.
    fn lookup(&self, addr: u32) -> Option<Route>;

    /// Routes the plane was built from.
    fn len(&self) -> usize;

    /// Whether the plane holds no routes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes (for compression reporting).
    fn heap_bytes(&self) -> usize;

    /// Convenience: just the next hop of the match.
    fn next_hop(&self, addr: u32) -> Option<NextHop> {
        self.lookup(addr).map(|r| r.next_hop)
    }
}

/// A registered out-of-crate plane constructor (see
/// [`register_tiled_builder`]).
pub type PlaneBuilder = fn(&[Route]) -> Box<dyn LookupPlane>;

/// The `tiled` backend's builder, installed by `clue_tile::install()`.
///
/// `clue-core` defines the [`BackendKind::Tiled`] name so every layer
/// (CLI parsing, the oracle's conformance matrix, epoch publication)
/// can route on it, but the implementation lives upstream in
/// `crates/tile` — which depends on this crate and therefore cannot be
/// linked from here. The builder is injected instead.
static TILED_BUILDER: OnceLock<PlaneBuilder> = OnceLock::new();

/// Registers the `tiled` plane constructor. Idempotent; the first
/// registration wins (all callers register the same function).
pub fn register_tiled_builder(builder: PlaneBuilder) {
    let _ = TILED_BUILDER.set(builder);
}

/// Whether `kind` can be built in this process (always true for the
/// in-crate backends; true for `tiled` once `clue_tile::install()` has
/// run).
#[must_use]
pub fn backend_available(kind: BackendKind) -> bool {
    kind != BackendKind::Tiled || TILED_BUILDER.get().is_some()
}

/// Builds the backend of `kind` over a route snapshot.
///
/// # Panics
///
/// Panics if `routes` contains duplicate prefixes (a route *set* is
/// required; next-hop collisions on distinct prefixes are fine), or if
/// `kind` is [`BackendKind::Tiled`] and no builder was registered —
/// call `clue_tile::install()` first (the router, oracle, and CLI
/// entry points all do).
#[must_use]
pub fn build_plane(kind: BackendKind, routes: &[Route]) -> Box<dyn LookupPlane> {
    try_build_plane(kind, routes)
        .unwrap_or_else(|| panic!("backend {kind} not registered (call clue_tile::install())"))
}

/// Builds the backend of `kind`, or `None` if `kind` is a registered
/// backend whose builder has not been installed in this process.
#[must_use]
pub fn try_build_plane(kind: BackendKind, routes: &[Route]) -> Option<Box<dyn LookupPlane>> {
    Some(match kind {
        BackendKind::Tcam => Box::new(TcamPlane::build(routes)),
        BackendKind::Trie => Box::new(TriePlane::build(routes)),
        BackendKind::Cfib => Box::new(CfibPlane::build(routes)),
        BackendKind::Tiled => TILED_BUILDER.get()?(routes),
    })
}

/// Builds the backend of `kind` over a whole table.
#[must_use]
pub fn plane_from_table(kind: BackendKind, table: &RouteTable) -> Box<dyn LookupPlane> {
    let routes: Vec<Route> = table.iter().collect();
    build_plane(kind, &routes)
}

/// The cycle-cost TCAM simulator behind the trait: ternary entries in
/// a [`SlotArray`], resolved through the software mirror exactly as
/// the rest of the paper pipeline models the hardware.
#[derive(Debug)]
pub struct TcamPlane {
    slots: SlotArray,
}

impl TcamPlane {
    /// Loads `routes` into consecutive slots (CLUE's unordered mode —
    /// non-overlapping content needs no priority encoding).
    ///
    /// # Panics
    ///
    /// Panics on duplicate prefixes.
    #[must_use]
    pub fn build(routes: &[Route]) -> Self {
        TcamPlane {
            slots: SlotArray::from_routes(routes),
        }
    }
}

impl LookupPlane for TcamPlane {
    fn kind(&self) -> BackendKind {
        BackendKind::Tcam
    }

    fn lookup(&self, addr: u32) -> Option<Route> {
        self.slots.lookup(addr).map(|(p, nh)| Route::new(p, nh))
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn heap_bytes(&self) -> usize {
        // Slot words plus the mirror's (prefix, slot) pairs.
        self.slots.capacity() * std::mem::size_of::<Option<clue_tcam::TernaryEntry>>()
            + self.slots.len() * (std::mem::size_of::<Prefix>() + std::mem::size_of::<usize>())
    }
}

/// Pointer flag: the slot refers to a 256-entry child block.
const PTR: u32 = 1 << 31;
/// Leaf flag: the slot holds a (next hop, prefix length) match.
const LEAF: u32 = 1 << 30;
/// Shift of the prefix length inside a leaf slot.
const PLEN_SHIFT: u32 = 16;

/// The flattened multibit trie: 16/8/8 strides, leaf-pushed.
///
/// `root` is a 2^16 slot array indexed by the top 16 address bits;
/// child blocks of 256 slots each (for the middle and low bytes) live
/// packed in one `blocks` arena. A slot is either empty (`0`), a leaf
/// (`LEAF | plen << 16 | nh`), or a pointer (`PTR | block id`), so a
/// lookup is at most three dependent u32 loads with no branches on
/// route count.
///
/// Build inserts routes in ascending prefix-length order: a shorter
/// prefix then never lands on top of a pointer installed by a longer
/// one, so leaf pushing happens only at block creation (the new block
/// inherits the covering leaf) and never needs recursive repair.
#[derive(Debug)]
pub struct TriePlane {
    root: Vec<u32>,
    blocks: Vec<u32>,
    entries: usize,
}

impl TriePlane {
    /// Builds the flattened trie over `routes` (overlap allowed; the
    /// longest match wins, as the oracle demands).
    #[must_use]
    pub fn build(routes: &[Route]) -> Self {
        let mut sorted: Vec<Route> = routes.to_vec();
        sorted.sort_unstable_by_key(|r| (r.prefix.len(), r.prefix.bits()));
        let mut plane = TriePlane {
            root: vec![0u32; 1 << 16],
            blocks: Vec::new(),
            entries: sorted.len(),
        };
        for r in sorted {
            plane.insert(r);
        }
        plane
    }

    fn leaf(nh: NextHop, plen: u8) -> u32 {
        LEAF | (u32::from(plen) << PLEN_SHIFT) | u32::from(nh.0)
    }

    /// Child-block base for `root[ri]`, allocating (and inheriting the
    /// covering leaf) if the slot is not a pointer yet.
    fn block_under_root(&mut self, ri: usize) -> usize {
        let v = self.root[ri];
        if v & PTR != 0 {
            return ((v & !PTR) as usize) << 8;
        }
        let id = (self.blocks.len() >> 8) as u32;
        self.blocks.extend(std::iter::repeat_n(v, 256));
        self.root[ri] = PTR | id;
        (id as usize) << 8
    }

    /// Child-block base for arena slot `idx`, allocating likewise.
    fn block_under(&mut self, idx: usize) -> usize {
        let v = self.blocks[idx];
        if v & PTR != 0 {
            return ((v & !PTR) as usize) << 8;
        }
        let id = (self.blocks.len() >> 8) as u32;
        self.blocks.extend(std::iter::repeat_n(v, 256));
        self.blocks[idx] = PTR | id;
        (id as usize) << 8
    }

    fn insert(&mut self, r: Route) {
        let plen = r.prefix.len();
        let leaf = Self::leaf(r.next_hop, plen);
        let (lo, hi) = (r.prefix.low(), r.prefix.high());
        if plen <= 16 {
            // Ascending-length build: these slots cannot be pointers
            // yet (pointers are installed only by longer prefixes).
            for slot in &mut self.root[(lo >> 16) as usize..=(hi >> 16) as usize] {
                debug_assert_eq!(*slot & PTR, 0, "short prefix over a pointer");
                *slot = leaf;
            }
        } else if plen <= 24 {
            let base = self.block_under_root((lo >> 16) as usize);
            let (bl, bh) = (((lo >> 8) & 0xFF) as usize, ((hi >> 8) & 0xFF) as usize);
            for slot in &mut self.blocks[base + bl..=base + bh] {
                debug_assert_eq!(*slot & PTR, 0, "mid prefix over a pointer");
                *slot = leaf;
            }
        } else {
            let base = self.block_under_root((lo >> 16) as usize);
            let base = self.block_under(base + (((lo >> 8) & 0xFF) as usize));
            let (bl, bh) = ((lo & 0xFF) as usize, (hi & 0xFF) as usize);
            for slot in &mut self.blocks[base + bl..=base + bh] {
                *slot = leaf;
            }
        }
    }
}

impl LookupPlane for TriePlane {
    fn kind(&self) -> BackendKind {
        BackendKind::Trie
    }

    fn lookup(&self, addr: u32) -> Option<Route> {
        let mut v = self.root[(addr >> 16) as usize];
        if v & PTR != 0 {
            v = self.blocks[(((v & !PTR) as usize) << 8) | ((addr >> 8) & 0xFF) as usize];
            if v & PTR != 0 {
                v = self.blocks[(((v & !PTR) as usize) << 8) | (addr & 0xFF) as usize];
            }
        }
        if v & LEAF == 0 {
            return None;
        }
        let plen = ((v >> PLEN_SHIFT) & 0x3F) as u8;
        let nh = NextHop((v & 0xFFFF) as u16);
        Some(Route::new(Prefix::new(addr & mask(plen), plen), nh))
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn heap_bytes(&self) -> usize {
        (self.root.len() + self.blocks.len()) * std::mem::size_of::<u32>()
    }
}

/// An interval label: the `(prefix length, next hop)` of the match, or
/// none. Encoded as a dense u32 key for dictionary building.
fn label_key(label: Option<(u8, NextHop)>) -> u32 {
    match label {
        None => u32::MAX,
        Some((plen, nh)) => (u32::from(plen) << 16) | u32::from(nh.0),
    }
}

/// The entropy-style compressed FIB: LPM flattened to disjoint address
/// intervals with dictionary-coded, bit-packed labels.
///
/// Every prefix boundary (`low`, `high + 1`) becomes a candidate
/// interval start; between consecutive boundaries the LPM answer is
/// constant, so adjacent intervals with equal `(plen, next hop)`
/// labels merge. The surviving labels are coded through a dictionary
/// and stored in ⌈log2(dictionary size)⌉ bits each — the
/// information-theoretic floor for a memoryless label stream, per the
/// Rétvári et al. line of work. A lookup is one `partition_point`
/// binary search plus one bit-extract.
#[derive(Debug)]
pub struct CfibPlane {
    /// Sorted interval starts; `starts[0] == 0` always.
    starts: Vec<u32>,
    /// Bit-packed label codes, one per interval.
    packed: Vec<u64>,
    /// Bits per code.
    code_bits: u32,
    /// Code → label.
    dict: Vec<Option<(u8, NextHop)>>,
    entries: usize,
}

impl CfibPlane {
    /// Flattens `routes` (overlap allowed; longest match wins) into
    /// the interval-coded form.
    #[must_use]
    pub fn build(routes: &[Route]) -> Self {
        let reference: Trie<NextHop> =
            Trie::from_pairs(routes.iter().map(|r| (r.prefix, r.next_hop)));
        let mut bounds: Vec<u32> = Vec::with_capacity(routes.len() * 2 + 1);
        bounds.push(0);
        for r in routes {
            bounds.push(r.prefix.low());
            if r.prefix.high() != u32::MAX {
                bounds.push(r.prefix.high() + 1);
            }
        }
        bounds.sort_unstable();
        bounds.dedup();

        // Evaluate the LPM label at each boundary and merge runs.
        let mut starts: Vec<u32> = Vec::new();
        let mut labels: Vec<Option<(u8, NextHop)>> = Vec::new();
        for &b in &bounds {
            let label = reference.lookup(b).map(|(p, &nh)| (p.len(), nh));
            if labels.last() == Some(&label) {
                continue;
            }
            starts.push(b);
            labels.push(label);
        }

        // Dictionary-code the labels.
        let mut dict: Vec<Option<(u8, NextHop)>> = Vec::new();
        let mut code_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let codes: Vec<usize> = labels
            .iter()
            .map(|&label| {
                *code_of.entry(label_key(label)).or_insert_with(|| {
                    dict.push(label);
                    dict.len() - 1
                })
            })
            .collect();
        let code_bits = usize::BITS - (dict.len() - 1).leading_zeros().min(usize::BITS - 1);
        let code_bits = code_bits.max(1);

        // Bit-pack the code stream.
        let mut packed = vec![0u64; (codes.len() * code_bits as usize).div_ceil(64)];
        for (i, &c) in codes.iter().enumerate() {
            let bit = i * code_bits as usize;
            let (word, off) = (bit / 64, (bit % 64) as u32);
            packed[word] |= (c as u64) << off;
            if off + code_bits > 64 {
                packed[word + 1] |= (c as u64) >> (64 - off);
            }
        }

        CfibPlane {
            starts,
            packed,
            code_bits,
            dict,
            entries: routes.len(),
        }
    }

    fn code_at(&self, i: usize) -> usize {
        let bit = i * self.code_bits as usize;
        let (word, off) = (bit / 64, (bit % 64) as u32);
        let mut v = self.packed[word] >> off;
        if off + self.code_bits > 64 {
            v |= self.packed[word + 1] << (64 - off);
        }
        (v & ((1u64 << self.code_bits) - 1)) as usize
    }

    /// Distinct labels in the dictionary (compression diagnostics).
    #[must_use]
    pub fn dictionary_len(&self) -> usize {
        self.dict.len()
    }

    /// Intervals after merging (compression diagnostics).
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.starts.len()
    }
}

impl LookupPlane for CfibPlane {
    fn kind(&self) -> BackendKind {
        BackendKind::Cfib
    }

    fn lookup(&self, addr: u32) -> Option<Route> {
        let idx = self.starts.partition_point(|&s| s <= addr) - 1;
        let (plen, nh) = self.dict[self.code_at(idx)]?;
        Some(Route::new(Prefix::new(addr & mask(plen), plen), nh))
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn heap_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u32>()
            + self.packed.len() * std::mem::size_of::<u64>()
            + self.dict.len() * std::mem::size_of::<Option<(u8, NextHop)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_compress::onrtc;
    use clue_fib::gen::FibGen;

    fn flat_lpm(routes: &[Route], addr: u32) -> Option<Route> {
        routes
            .iter()
            .filter(|r| r.prefix.contains_addr(addr))
            .max_by_key(|r| r.prefix.len())
            .copied()
    }

    fn probe_addrs(routes: &[Route]) -> Vec<u32> {
        let mut addrs = vec![0, 1, u32::MAX, u32::MAX - 1, 0x8000_0000];
        for r in routes {
            let (lo, hi) = (r.prefix.low(), r.prefix.high());
            addrs.extend([lo, hi, lo.wrapping_sub(1), hi.wrapping_add(1)]);
            addrs.push(lo ^ (1 << (31 - u32::from(r.prefix.len().max(1) - 1))));
        }
        addrs
    }

    fn assert_all_agree(routes: &[Route]) {
        // `tiled` is registered by clue-tile's install(); in clue-core's
        // own test binary it is absent and skipped.
        let planes: Vec<Box<dyn LookupPlane>> = BackendKind::ALL
            .iter()
            .filter_map(|&k| try_build_plane(k, routes))
            .collect();
        for addr in probe_addrs(routes) {
            let want = flat_lpm(routes, addr);
            for plane in &planes {
                assert_eq!(
                    plane.lookup(addr),
                    want,
                    "{} backend at {addr:#010x}",
                    plane.kind()
                );
            }
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("fpga".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Tcam);
    }

    #[test]
    fn empty_plane_answers_none() {
        for kind in BackendKind::ALL {
            let Some(plane) = try_build_plane(kind, &[]) else {
                continue;
            };
            assert!(plane.is_empty());
            for addr in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
                assert_eq!(plane.lookup(addr), None, "{kind}");
            }
        }
    }

    #[test]
    fn unregistered_tiled_reports_unavailable() {
        // No clue-tile in this binary, so the registry slot is empty.
        assert!(backend_available(BackendKind::Tcam));
        if TILED_BUILDER.get().is_none() {
            assert!(!backend_available(BackendKind::Tiled));
            assert!(try_build_plane(BackendKind::Tiled, &[]).is_none());
        }
    }

    #[test]
    fn default_route_matches_everything() {
        let routes = [Route::new(Prefix::root(), NextHop(7))];
        assert_all_agree(&routes);
    }

    #[test]
    fn host_routes_and_sibling_edges() {
        let routes = [
            Route::new(Prefix::new(0x0A00_0000, 8), NextHop(1)),
            Route::new(Prefix::new(0x0A01_0203, 32), NextHop(2)),
            Route::new(Prefix::new(0x0A01_0202, 32), NextHop(3)),
            Route::new(Prefix::new(0x8000_0000, 1), NextHop(4)),
        ];
        assert_all_agree(&routes);
    }

    #[test]
    fn overlapping_set_resolves_longest_match() {
        let routes = [
            Route::new(Prefix::root(), NextHop(0)),
            Route::new(Prefix::new(0xC000_0000, 2), NextHop(1)),
            Route::new(Prefix::new(0xC0A8_0000, 16), NextHop(2)),
            Route::new(Prefix::new(0xC0A8_0100, 24), NextHop(3)),
            Route::new(Prefix::new(0xC0A8_0180, 25), NextHop(4)),
            Route::new(Prefix::new(0xC0A8_01FE, 31), NextHop(5)),
        ];
        assert_all_agree(&routes);
    }

    #[test]
    fn generated_compressed_table_agrees_with_binary_trie() {
        let table = onrtc(&FibGen::new(42).routes(3_000).generate());
        let routes: Vec<Route> = table.iter().collect();
        let reference = table.to_trie();
        let planes: Vec<Box<dyn LookupPlane>> = BackendKind::ALL
            .iter()
            .filter_map(|&k| try_build_plane(k, &routes))
            .collect();
        let mut addr = 0x0137_9B51u32;
        for _ in 0..20_000 {
            addr = addr.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
            let want = reference.lookup(addr).map(|(p, &nh)| Route::new(p, nh));
            for plane in &planes {
                assert_eq!(plane.lookup(addr), want, "{}", plane.kind());
            }
        }
        for plane in &planes {
            assert_eq!(plane.len(), routes.len());
            assert!(plane.heap_bytes() > 0);
        }
    }

    #[test]
    fn cfib_compresses_below_raw_route_storage() {
        let table = onrtc(&FibGen::new(7).routes(10_000).generate());
        let routes: Vec<Route> = table.iter().collect();
        let cfib = CfibPlane::build(&routes);
        assert!(cfib.dictionary_len() < cfib.interval_count());
        // Dictionary coding must beat one u32 label per interval.
        let naive = cfib.interval_count() * 2 * std::mem::size_of::<u32>();
        assert!(
            cfib.heap_bytes() < naive,
            "packed {} >= naive {naive}",
            cfib.heap_bytes()
        );
    }
}
