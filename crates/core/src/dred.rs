//! Dynamic-redundancy maintenance schemes.
//!
//! All three load-balancing redundancy designs from the paper live
//! behind [`RedundancyScheme`]:
//!
//! * [`DredConfig::Clue`] — the paper's contribution. A home-TCAM match
//!   is, after ONRTC, itself a cacheable region, so the *data plane*
//!   inserts it straight into the other `N − 1` DReds; DRed *i* never
//!   stores chip *i*'s prefixes (they can never be queried there), which
//!   is where the "3/4 of the redundancy for the same hit rate" saving
//!   comes from. Zero control-plane interactions, zero SRAM walks.
//! * [`DredConfig::Clpl`] — Lin et al.'s logical caches. The matched
//!   prefix may be un-cacheable (overlap), so the address goes to the
//!   **control plane**, RRC-ME walks the SRAM trie, and the resulting
//!   minimal-expansion prefix is installed in *all* `N` caches.
//! * [`DredConfig::SlplStatic`] — Zheng et al.'s statically provisioned
//!   redundancy: the top prefixes of a long-term profile, never updated
//!   at run time (the design burstiness defeats).

use clue_cache::{rrc_me, LruPrefixCache};
use clue_fib::{NextHop, Route, Trie};

/// Which redundancy scheme an engine runs.
#[derive(Debug, Clone)]
pub enum DredConfig {
    /// CLUE's DRed: data-plane fill into the other `N − 1` DReds.
    Clue {
        /// Per-DRed capacity in prefixes.
        capacity: usize,
        /// Skip DRed *i* when filling from chip *i* (the paper's rule;
        /// set to `false` only for the ablation in Figure 17).
        exclude_home: bool,
    },
    /// CLPL's logical caches: control-plane RRC-ME fill into all `N`.
    Clpl {
        /// Per-cache capacity in prefixes.
        capacity: usize,
        /// SRAM copy of the (overlapping) table RRC-ME walks.
        sram_trie: Trie<NextHop>,
    },
    /// SLPL's static redundancy: a fixed prefix set in every chip.
    SlplStatic {
        /// The statically provisioned routes (same set per chip).
        routes: Vec<Route>,
    },
}

impl DredConfig {
    /// Builds SLPL's static redundancy the way Zheng et al. provision
    /// it: profile a long-term trace against the table and replicate the
    /// `budget` most popular prefixes into every chip.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    #[must_use]
    pub fn slpl_from_profile(table: &Trie<NextHop>, trace: &[u32], budget: usize) -> Self {
        assert!(budget > 0, "static redundancy needs a budget");
        let mut counts: std::collections::HashMap<clue_fib::Prefix, (u64, NextHop)> =
            std::collections::HashMap::new();
        for &addr in trace {
            if let Some((p, &nh)) = table.lookup(addr) {
                counts.entry(p).or_insert((0, nh)).0 += 1;
            }
        }
        let mut ranked: Vec<_> = counts.into_iter().collect();
        ranked.sort_by_key(|&(_, (n, _))| std::cmp::Reverse(n));
        DredConfig::SlplStatic {
            routes: ranked
                .into_iter()
                .take(budget)
                .map(|(p, (_, nh))| Route::new(p, nh))
                .collect(),
        }
    }
}

/// Counters separating the data-plane/control-plane story.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// DRed lookups that hit.
    pub hits: u64,
    /// DRed lookups that missed.
    pub misses: u64,
    /// Prefixes installed into DReds/caches.
    pub fills: u64,
    /// Round trips to the control plane (CLUE: always 0).
    pub control_plane_interactions: u64,
    /// SRAM trie nodes visited by RRC-ME (CLUE: always 0).
    pub sram_accesses: u64,
}

impl SchemeStats {
    /// DRed hit rate over all lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A running redundancy scheme with per-chip storage.
#[derive(Debug)]
pub struct RedundancyScheme {
    kind: Kind,
    stats: SchemeStats,
}

#[derive(Debug)]
enum Kind {
    Clue {
        dreds: Vec<LruPrefixCache>,
        exclude_home: bool,
    },
    Clpl {
        caches: Vec<LruPrefixCache>,
        sram_trie: Trie<NextHop>,
    },
    SlplStatic {
        tries: Vec<Trie<NextHop>>,
    },
}

impl RedundancyScheme {
    /// Instantiates the scheme for `chips` chips.
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0` or a dynamic scheme has zero capacity.
    #[must_use]
    pub fn new(config: DredConfig, chips: usize) -> Self {
        assert!(chips > 0, "need at least one chip");
        let kind = match config {
            DredConfig::Clue {
                capacity,
                exclude_home,
            } => Kind::Clue {
                dreds: (0..chips).map(|_| LruPrefixCache::new(capacity)).collect(),
                exclude_home,
            },
            DredConfig::Clpl {
                capacity,
                sram_trie,
            } => Kind::Clpl {
                caches: (0..chips).map(|_| LruPrefixCache::new(capacity)).collect(),
                sram_trie,
            },
            DredConfig::SlplStatic { routes } => {
                let trie: Trie<NextHop> = routes.iter().map(|r| (r.prefix, r.next_hop)).collect();
                Kind::SlplStatic {
                    tries: vec![trie; chips],
                }
            }
        };
        RedundancyScheme {
            kind,
            stats: SchemeStats::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> SchemeStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    /// Looks `addr` up in chip `chip`'s redundancy storage.
    pub fn lookup(&mut self, chip: usize, addr: u32) -> Option<NextHop> {
        let result = match &mut self.kind {
            Kind::Clue { dreds, .. } => dreds[chip].lookup(addr),
            Kind::Clpl { caches, .. } => caches[chip].lookup(addr),
            Kind::SlplStatic { tries } => tries[chip].lookup(addr).map(|(_, &nh)| nh),
        };
        if result.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        result
    }

    /// Notifies the scheme that a DRed-missed packet was resolved by its
    /// home chip `home`, matching `route` for `addr` — the fill trigger.
    pub fn on_miss_resolved(&mut self, home: usize, addr: u32, route: Route) {
        match &mut self.kind {
            Kind::Clue {
                dreds,
                exclude_home,
            } => {
                // Data plane: the matched (non-overlapping) prefix is
                // cacheable as-is. DRed `home` is skipped under the
                // paper's rule.
                for (i, dred) in dreds.iter_mut().enumerate() {
                    if *exclude_home && i == home {
                        continue;
                    }
                    dred.insert(route);
                    self.stats.fills += 1;
                }
            }
            Kind::Clpl { caches, sram_trie } => {
                // Control plane: RRC-ME over the SRAM trie, then install
                // in every logical cache (including the home's — wasted
                // space, but CLPL cannot know better).
                self.stats.control_plane_interactions += 1;
                let Some(me) = rrc_me(sram_trie, addr) else {
                    return;
                };
                self.stats.sram_accesses += u64::from(me.sram_accesses);
                for cache in caches.iter_mut() {
                    cache.insert(me.route);
                    self.stats.fills += 1;
                }
            }
            Kind::SlplStatic { .. } => {
                // Static redundancy never adapts.
            }
        }
    }

    /// Total prefixes currently stored across all chips (the redundancy
    /// footprint compared in Figure 17 / the 3/4 claim).
    #[must_use]
    pub fn stored_entries(&self) -> usize {
        match &self.kind {
            Kind::Clue { dreds, .. } => dreds.iter().map(LruPrefixCache::len).sum(),
            Kind::Clpl { caches, .. } => caches.iter().map(LruPrefixCache::len).sum(),
            Kind::SlplStatic { tries } => tries.iter().map(Trie::len).sum(),
        }
    }

    /// Prefixes currently stored in chip `chip`'s redundancy partition.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    #[must_use]
    pub fn stored_on(&self, chip: usize) -> usize {
        match &self.kind {
            Kind::Clue { dreds, .. } => dreds[chip].len(),
            Kind::Clpl { caches, .. } => caches[chip].len(),
            Kind::SlplStatic { tries } => tries[chip].len(),
        }
    }

    /// Whether chip `chip`'s storage contains `route.prefix` (test hook).
    #[must_use]
    pub fn contains(&self, chip: usize, route: Route) -> bool {
        match &self.kind {
            Kind::Clue { dreds, .. } => dreds[chip].contains(route.prefix),
            Kind::Clpl { caches, .. } => caches[chip].contains(route.prefix),
            Kind::SlplStatic { tries } => tries[chip].contains_prefix(route.prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clue_fib::Prefix;

    fn route(s: &str, nh: u16) -> Route {
        Route::new(s.parse().unwrap(), NextHop(nh))
    }

    #[test]
    fn clue_fill_skips_home_dred() {
        let mut s = RedundancyScheme::new(
            DredConfig::Clue {
                capacity: 8,
                exclude_home: true,
            },
            4,
        );
        let r = route("10.0.0.0/8", 1);
        s.on_miss_resolved(2, 0x0A00_0001, r);
        for chip in 0..4 {
            assert_eq!(s.contains(chip, r), chip != 2);
        }
        assert_eq!(s.stats().fills, 3);
        assert_eq!(s.stats().control_plane_interactions, 0);
        assert_eq!(s.stats().sram_accesses, 0);
        // The 3/4 storage claim in miniature.
        assert_eq!(s.stored_entries(), 3);
    }

    #[test]
    fn clue_without_exclusion_fills_all() {
        let mut s = RedundancyScheme::new(
            DredConfig::Clue {
                capacity: 8,
                exclude_home: false,
            },
            4,
        );
        s.on_miss_resolved(2, 0x0A00_0001, route("10.0.0.0/8", 1));
        assert_eq!(s.stored_entries(), 4);
    }

    #[test]
    fn clpl_fill_goes_through_control_plane() {
        let mut trie = Trie::new();
        trie.insert("128.0.0.0/1".parse::<Prefix>().unwrap(), NextHop(1));
        trie.insert("160.0.0.0/3".parse::<Prefix>().unwrap(), NextHop(2));
        let mut s = RedundancyScheme::new(
            DredConfig::Clpl {
                capacity: 8,
                sram_trie: trie,
            },
            4,
        );
        // TCAM matched 1* for 100…; RRC-ME must install 100* instead.
        s.on_miss_resolved(0, 0x8000_0001, route("128.0.0.0/1", 1));
        assert_eq!(s.stats().control_plane_interactions, 1);
        assert!(s.stats().sram_accesses > 0);
        assert_eq!(s.stats().fills, 4); // all caches, home included
        for chip in 0..4 {
            assert_eq!(s.lookup(chip, 0x8000_0001), Some(NextHop(1)));
            // The expansion, not the raw match, was cached.
            assert!(!s.contains(chip, route("128.0.0.0/1", 1)));
        }
    }

    #[test]
    fn slpl_static_never_adapts() {
        let mut s = RedundancyScheme::new(
            DredConfig::SlplStatic {
                routes: vec![route("10.0.0.0/8", 1)],
            },
            2,
        );
        assert_eq!(s.lookup(0, 0x0A00_0001), Some(NextHop(1)));
        assert_eq!(s.lookup(1, 0x0B00_0001), None);
        s.on_miss_resolved(0, 0x0B00_0001, route("11.0.0.0/8", 2));
        assert_eq!(s.lookup(1, 0x0B00_0001), None, "static set must not grow");
        assert_eq!(s.stats().fills, 0);
    }

    #[test]
    fn slpl_profile_keeps_the_hottest_prefixes() {
        let mut trie = Trie::new();
        trie.insert("10.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(1));
        trie.insert("11.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(2));
        trie.insert("12.0.0.0/8".parse::<Prefix>().unwrap(), NextHop(3));
        // 10/8 is hot, 11/8 lukewarm, 12/8 cold.
        let mut trace = vec![0x0A00_0001u32; 10];
        trace.extend([0x0B00_0001; 3]);
        trace.push(0x0C00_0001);
        let cfg = DredConfig::slpl_from_profile(&trie, &trace, 2);
        let DredConfig::SlplStatic { routes } = cfg else {
            panic!("wrong config kind");
        };
        let prefixes: Vec<String> = routes.iter().map(|r| r.prefix.to_string()).collect();
        assert_eq!(prefixes, vec!["10.0.0.0/8", "11.0.0.0/8"]);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut s = RedundancyScheme::new(
            DredConfig::SlplStatic {
                routes: vec![route("10.0.0.0/8", 1)],
            },
            1,
        );
        s.lookup(0, 0x0A00_0001); // hit
        s.lookup(0, 0x0B00_0001); // miss
        s.lookup(0, 0x0A00_0002); // hit
        assert!((s.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
