//! Property-based tests for the prefix algebra and the trie.

use std::collections::BTreeMap;

use clue_fib::{Bit, NextHop, Prefix, Trie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(bits, len))
}

/// Short prefixes make overlap and containment likely.
fn arb_short_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=10).prop_map(|(bits, len)| Prefix::new(bits, len))
}

proptest! {
    #[test]
    fn display_parse_round_trip(p in arb_prefix()) {
        let s = p.to_string();
        let back: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn containment_matches_range_containment(a in arb_short_prefix(), b in arb_short_prefix()) {
        let by_range = a.low() <= b.low() && b.high() <= a.high();
        prop_assert_eq!(a.contains(b), by_range);
    }

    #[test]
    fn laminar_ranges(a in arb_short_prefix(), b in arb_short_prefix()) {
        // Prefix ranges either nest or are disjoint — never partially
        // overlap.
        let disjoint = a.high() < b.low() || b.high() < a.low();
        prop_assert!(disjoint || a.contains(b) || b.contains(a));
    }

    #[test]
    fn parent_child_inverse(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            let bit = p.branch().unwrap();
            prop_assert_eq!(parent.child(bit), Some(p));
            prop_assert!(parent.contains(p));
        }
        for bit in [Bit::Zero, Bit::One] {
            if let Some(c) = p.child(bit) {
                prop_assert_eq!(c.parent(), Some(p));
                prop_assert_eq!(c.branch(), Some(bit));
            }
        }
    }

    #[test]
    fn children_partition_parent(p in (any::<u32>(), 0u8..=31).prop_map(|(b, l)| Prefix::new(b, l))) {
        let l = p.child(Bit::Zero).unwrap();
        let r = p.child(Bit::One).unwrap();
        prop_assert_eq!(l.low(), p.low());
        prop_assert_eq!(l.high() + 1, r.low());
        prop_assert_eq!(r.high(), p.high());
    }

    #[test]
    fn contains_addr_matches_bounds(p in arb_prefix(), addr in any::<u32>()) {
        prop_assert_eq!(p.contains_addr(addr), (p.low()..=p.high()).contains(&addr));
    }

    #[test]
    fn sibling_is_disjoint_same_size(p in (any::<u32>(), 1u8..=32).prop_map(|(b, l)| Prefix::new(b, l))) {
        let s = p.sibling().unwrap();
        prop_assert_eq!(s.len(), p.len());
        prop_assert!(!p.overlaps(s));
        prop_assert_eq!(s.sibling(), Some(p));
    }
}

/// Reference LPM: linear scan over the stored routes.
fn reference_lpm(map: &BTreeMap<Prefix, NextHop>, addr: u32) -> Option<(Prefix, NextHop)> {
    map.iter()
        .filter(|(p, _)| p.contains_addr(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(&p, &nh)| (p, nh))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_agrees_with_map_model(
        ops in prop::collection::vec(
            (any::<u32>(), 0u8..=16, 0u16..4, any::<bool>()), 1..120),
        probes in prop::collection::vec(any::<u32>(), 16),
    ) {
        let mut trie = Trie::new();
        let mut model: BTreeMap<Prefix, NextHop> = BTreeMap::new();
        for (bits, len, nh, insert) in ops {
            let p = Prefix::new(bits, len);
            if insert {
                prop_assert_eq!(trie.insert(p, NextHop(nh)), model.insert(p, NextHop(nh)));
            } else {
                prop_assert_eq!(trie.remove(p), model.remove(&p));
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        // Exact lookups.
        for (&p, &nh) in &model {
            prop_assert_eq!(trie.get(p), Some(&nh));
        }
        // LPM agrees with the linear-scan reference.
        for addr in probes {
            let got = trie.lookup(addr).map(|(p, &nh)| (p, nh));
            prop_assert_eq!(got, reference_lpm(&model, addr));
        }
        // In-order iteration yields each stored pair exactly once.
        let mut seen: Vec<Prefix> = trie.iter().map(|(p, _)| p).collect();
        seen.sort();
        let expect: Vec<Prefix> = model.keys().copied().collect();
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn route_counts_are_consistent(
        pairs in prop::collection::vec((any::<u32>(), 0u8..=12, 0u16..4), 1..60),
    ) {
        let mut trie = Trie::new();
        for &(bits, len, nh) in &pairs {
            trie.insert(Prefix::new(bits, len), NextHop(nh));
        }
        prop_assert_eq!(trie.root().route_count() as usize, trie.len());
        // Spot-check: every stored prefix's node counts at least itself.
        for &(bits, len, _) in &pairs {
            let p = Prefix::new(bits, len);
            let n = trie.node(p).unwrap();
            prop_assert!(n.route_count() >= 1);
            let subtree = trie.iter_subtree(p).count() as u32;
            prop_assert_eq!(n.route_count(), subtree);
        }
    }
}
