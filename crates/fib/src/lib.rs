//! Routing-table substrate for the CLUE reproduction.
//!
//! This crate provides the data model every other crate in the workspace
//! builds on:
//!
//! * [`Prefix`] / [`NextHop`] — IPv4 prefixes and forwarding actions;
//! * [`Trie`] — an arena-based binary trie with longest-prefix match,
//!   in-order iteration, and per-subtree route counters;
//! * [`RouteTable`] / [`Route`] / [`Update`] — FIBs and BGP-like update
//!   messages, with a plain-text interchange format;
//! * [`gen`] — seeded synthetic FIB generation standing in for the RIPE
//!   RIS RIBs used by the paper (see `DESIGN.md` for the substitution
//!   rationale).
//!
//! # Examples
//!
//! ```
//! use clue_fib::{gen::FibGen, NextHop, RouteTable};
//!
//! // Generate a small synthetic FIB and look an address up.
//! let fib: RouteTable = FibGen::new(1).routes(1_000).generate();
//! let trie = fib.to_trie();
//! let route = fib.iter().next().unwrap();
//! let (matched, nh) = trie.lookup(route.prefix.low()).unwrap();
//! assert!(matched.contains(route.prefix) || route.prefix.contains(matched));
//! let _: NextHop = *nh;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gen;
pub mod io;
mod prefix;
mod route;
mod trie;

pub use prefix::{mask, Bit, NextHop, ParsePrefixError, Prefix, MAX_LEN};
pub use route::{ParseRouteError, Route, RouteTable, Update};
pub use trie::{Iter, NodeRef, Trie};
